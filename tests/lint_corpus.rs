//! End-to-end `tesla lint` over real corpora.
//!
//! Two obligations from the lint design (DESIGN.md §12):
//!
//! 1. The healthy corpora — the openssl-like and kernel-like
//!    generators plus `examples/minic/safe.c` — are lint-clean. A
//!    specification linter that cries wolf on idiomatic specs is
//!    worse than no linter.
//! 2. The seeded pathology corpus (`examples/minic/lint_pathologies.c`)
//!    is flagged with each defect reported *exactly once*, under its
//!    stable code, in every output format.

use tesla::automata::Manifest;
use tesla::corpus::{kernel_like, openssl_like, openssl_like_buggy, openssl_like_patched};
use tesla::instrument::{diagnose_lints, lint_manifest, render, LintFinding, OutputFormat};
use tesla::pipeline::Project;

const PATHOLOGIES: &str = include_str!("../examples/minic/lint_pathologies.c");
const SAFE: &str = include_str!("../examples/minic/safe.c");

fn manifest_of_project(p: &Project) -> Manifest {
    let manifests: Vec<Manifest> = p
        .units
        .iter()
        .map(|u| {
            tesla::cc::compile_unit(&u.source, &u.file)
                .unwrap_or_else(|e| panic!("{}: {e}", u.file))
                .manifest
        })
        .collect();
    Manifest::merge(&manifests)
}

fn lint_source(file: &str, src: &str) -> Vec<LintFinding> {
    let m = tesla::cc::compile_unit(src, file)
        .unwrap_or_else(|e| panic!("{file}: {e}"))
        .manifest;
    lint_manifest(&m).expect("lint")
}

#[test]
fn healthy_corpora_are_lint_clean() {
    for (name, p) in [
        ("openssl_like", openssl_like(3)),
        ("openssl_like_patched", openssl_like_patched(3)),
        ("openssl_like_buggy", openssl_like_buggy(3)),
        ("kernel_like", kernel_like(3, 3)),
    ] {
        let findings = lint_manifest(&manifest_of_project(&p)).expect("lint");
        assert!(findings.is_empty(), "{name}: {findings:?}");
    }
    let findings = lint_source("safe.c", SAFE);
    assert!(findings.is_empty(), "safe.c: {findings:?}");
}

#[test]
fn pathology_corpus_flags_each_defect_exactly_once() {
    let findings = lint_source("lint_pathologies.c", PATHOLOGIES);
    let mut codes: Vec<&str> = findings.iter().map(|f| f.code()).collect();
    codes.sort_unstable();
    assert_eq!(
        codes,
        ["TESLA-L001", "TESLA-L002", "TESLA-L003", "TESLA-L004"],
        "{findings:?}"
    );
    // Every finding points back into the pathology file.
    for f in &findings {
        assert_eq!(f.loc().file, "lint_pathologies.c");
        assert!(f.assertion().starts_with("lint_pathologies.c:"), "{f:?}");
    }
    // The subsumption finding is oriented: the flagged assertion is the
    // weaker (the `||` disjunction, later in the file) and the `by`
    // assertion is the stricter earlier one — never self-subsumption.
    let sub = findings
        .iter()
        .find_map(|f| match f {
            LintFinding::Subsumed { assertion, by, .. } => Some((assertion, by)),
            _ => None,
        })
        .expect("a TESLA-L003 finding");
    assert_ne!(sub.0, sub.1);
    // The dead-state finding names at least one mergeable group.
    let dead = findings
        .iter()
        .find_map(|f| match f {
            LintFinding::DeadStates { groups, .. } => Some(groups),
            _ => None,
        })
        .expect("a TESLA-L004 finding");
    assert!(!dead.is_empty());
}

#[test]
fn every_seeded_code_appears_exactly_once_in_each_format() {
    let findings = lint_source("lint_pathologies.c", PATHOLOGIES);
    let diags = diagnose_lints(&findings);
    let text = render(&diags, OutputFormat::Text);
    let json = render(&diags, OutputFormat::Json);
    let sarif = render(&diags, OutputFormat::Sarif);
    for code in ["TESLA-L001", "TESLA-L002", "TESLA-L003", "TESLA-L004"] {
        assert_eq!(text.matches(code).count(), 1, "text: {code}\n{text}");
        let key = format!("\"code\": \"{code}\"");
        assert_eq!(json.matches(&key).count(), 1, "json: {code}\n{json}");
        let rule = format!("\"ruleId\": \"{code}\"");
        assert_eq!(sarif.matches(&rule).count(), 1, "sarif: {code}\n{sarif}");
    }
    // And nothing else was reported.
    assert_eq!(diags.len(), 4);
}
