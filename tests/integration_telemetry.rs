//! End-to-end observability: the telemetry subsystem driven by the
//! three case-study substrates and the mini-C pipeline — metrics
//! registry, flight recorder, and every exporter the `tesla observe`
//! subcommand offers (Prometheus text, JSON, chrome-trace, weighted
//! DOT).

use std::sync::Arc;
use tesla::corpus::openssl_like_patched;
use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem};
use tesla::prelude::*;
use tesla::runtime::telemetry::export;
use tesla::runtime::HookKind;
use tesla::sim_gui::appkit::GuiBugs;
use tesla::sim_gui::{GuiApp, GuiMode};
use tesla::sim_kernel::assertions::{register_sets, AssertionSet};
use tesla::sim_kernel::mac::MacFramework;
use tesla::sim_kernel::{Bugs, Kernel, KernelConfig};
use tesla::sim_ssl::SslWorld;
use tesla::workload::{oltp, xnee};

fn telemetry_engine() -> Arc<Tesla> {
    Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        instance_capacity: 256,
        ..Config::default()
    }))
}

/// Prometheus exposition lines are comments or `name{labels} value`.
fn assert_prometheus_well_formed(text: &str) {
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with('#')
                || line
                    .rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "bad exposition line: {line}"
        );
    }
}

fn assert_balanced_json(text: &str) {
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            text.matches(open).count(),
            text.matches(close).count(),
            "unbalanced {open}{close} in output"
        );
    }
}

#[test]
fn oltp_under_full_telemetry_exports_every_format() {
    let t = telemetry_engine();
    let recorder = Arc::new(FlightRecorder::new(1 << 14));
    t.add_handler(recorder.clone());
    let reg = register_sets(&t, &[AssertionSet::All]).unwrap();
    let k = Arc::new(Kernel::new(
        KernelConfig {
            bugs: Bugs::default(),
            debug_checks: false,
        },
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    oltp::run(
        &k,
        oltp::OltpParams {
            threads: 4,
            transactions: 20,
            socket_ops: 3,
            compute: 50,
        },
    );
    assert!(t.violations().is_empty(), "{:?}", t.violations());

    let m = t.metrics();
    assert!(m.events_total() > 0, "telemetry must see the workload");
    assert!(m.hook_calls(HookKind::FnEntry) > 0);
    // Latency is sampled (one-in-N per thread), calls are exact.
    let lat = m.hook_latency(HookKind::FnEntry);
    assert!(lat.count > 0 && lat.count <= m.hook_calls(HookKind::FnEntry));

    // Prometheus text.
    let snap = m.snapshot();
    let prom = export::prometheus(&snap);
    assert_prometheus_well_formed(&prom);
    assert!(prom.contains(&format!("tesla_events_total {}", m.events_total())));
    assert!(prom.contains("tesla_hook_calls_total{hook=\"fn_entry\"}"));
    assert!(prom.contains("tesla_transitions_total{"));

    // JSON snapshot.
    let json = export::json(&snap);
    assert_balanced_json(&json);
    assert!(json.contains("\"events_total\""));
    assert!(json.contains("\"transitions\""));

    // Flight-recorder event log, JSONL + chrome-trace.
    let events = recorder.snapshot();
    assert!(!events.is_empty());
    assert!(
        events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "snapshot must be sorted"
    );
    assert!(
        recorder.thread_count() >= 4,
        "each oltp worker records into its own ring"
    );
    let jsonl = export::events_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines().take(32) {
        assert_balanced_json(line);
        assert!(line.starts_with("{\"ts_ns\":"), "{line}");
    }
    let trace = export::chrome_trace(&events);
    assert_balanced_json(&trace);
    assert!(trace.starts_with("[\n"));
    assert!(trace.contains("\"ph\":\"i\""));

    // Weighted fig. 9 graphs straight off the live registry.
    let mut weighted = 0;
    for (i, def) in t.class_defs().iter().enumerate() {
        let Some(w) = m.weight_source(i as u32) else {
            continue;
        };
        let dot = tesla::automata::dot::render(&def.automaton, &*w);
        assert!(dot.contains("digraph"));
        if dot.contains("×") {
            weighted += 1;
        }
    }
    assert!(
        weighted > 0,
        "at least one class must render with live edge weights"
    );
}

#[test]
fn pipeline_plumbs_static_elision_into_the_registry() {
    // The patched OpenSSL-shaped client is proved safe, so the static
    // toolchain elides its only assertion site; a run's metrics must
    // carry that build-time fact.
    let mut bs = BuildSystem::new(openssl_like_patched(4), BuildOptions::static_toolchain());
    let art = bs.build().unwrap();
    assert_eq!(art.stats.sites_elided, 1);
    let t = telemetry_engine();
    run_with_tesla(&art, &t, "main", &[7], 10_000_000).unwrap();
    assert_eq!(t.metrics().sites_elided(), 1);
    let prom = export::prometheus(&t.metrics().snapshot());
    assert!(prom.contains("tesla_sites_elided 1"), "{prom}");
}

#[test]
fn ssl_fetch_under_bounded_recording_and_metrics() {
    let t = telemetry_engine();
    let rec = Arc::new(RecordingHandler::bounded(8));
    t.add_handler(rec.clone());
    let w = SslWorld::new(Some(t.clone()));
    w.fetch_url(false, false).unwrap();
    assert!(rec.len() <= 8, "bounded recorder must cap at its capacity");
    let snap = t.metrics().snapshot();
    let c = snap.classes.first().expect("figure 6 class");
    assert!(c.news > 0);
    assert_eq!(c.live, 0, "fetch must finalise everything");
    // The buggy+malicious quadrant: in log-and-continue mode the
    // fetch "succeeds" wrongly, but telemetry still counts the
    // violation the site observed.
    let w = SslWorld::new(Some(t.clone()));
    let _ = w.fetch_url(true, true);
    assert!(t.metrics().violations() > 0);
}

#[test]
fn gui_session_renders_weighted_figure8_graph() {
    let t = telemetry_engine();
    let mut app = GuiApp::new(GuiMode::Tesla(t.clone()), GuiBugs::default());
    xnee::replay(&mut app, &xnee::session(50));
    let m = t.metrics();
    assert_eq!(m.violations(), 0);
    let snap = m.snapshot();
    let c = snap.classes.first().expect("figure 8 class");
    assert!(c.updates > 100, "a 50-event session drives >100 updates");
    let defs = t.class_defs();
    let w = m
        .weight_source(0)
        .expect("weights for the registered class");
    let dot = tesla::automata::dot::render(&defs[0].automaton, &*w);
    assert!(dot.contains("×"), "session traffic must weight the graph");
    assert_eq!(dot.matches('{').count(), dot.matches('}').count());
}
