//! The scenario engine end to end through the umbrella crate: every
//! shipped corpus scenario must reproduce its expected verdict from
//! YAML alone, the canonical renderer must round-trip, and the seeded
//! fuzzer must be a pure function of (corpus, seed, iterations).

use std::path::{Path, PathBuf};
use tesla::scenario::{
    collect_scenario_files, fuzz_corpus, load_scenario_file, parse_scenario, render_scenario,
    run_and_check, run_scenario, FuzzParams, RunnerKind, Scenario, Verdict,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

fn load_all() -> Vec<(PathBuf, Scenario)> {
    let files = collect_scenario_files(&corpus_dir()).expect("corpus dir");
    assert!(files.len() >= 10, "shipped corpus shrank: {} files", files.len());
    files
        .into_iter()
        .map(|f| {
            let sc = load_scenario_file(&f).expect("corpus scenario parses");
            (f, sc)
        })
        .collect()
}

/// The ISSUE acceptance bar: the corpus reproduces each simulator's
/// integration expectations from the YAML alone.
#[test]
fn shipped_corpus_passes_from_yaml_alone() {
    let base = corpus_dir();
    for (file, sc) in load_all() {
        let r = run_and_check(&sc, &base);
        assert!(
            r.ok(),
            "{}: {:?}\nnotes: {:?}",
            file.display(),
            r.failures,
            r.notes
        );
    }
}

/// Every runner kind is exercised by at least one corpus scenario —
/// the corpus is the cross-simulator contract, not an ssl-only smoke.
#[test]
fn corpus_covers_every_runner() {
    let kinds: Vec<RunnerKind> = load_all().into_iter().map(|(_, sc)| sc.runner).collect();
    for want in [
        RunnerKind::Spec,
        RunnerKind::SimSsl,
        RunnerKind::SimKernel,
        RunnerKind::SimGui,
        RunnerKind::Workload,
        RunnerKind::Minic,
    ] {
        assert!(
            kinds.contains(&want),
            "no corpus scenario exercises runner {want:?}"
        );
    }
}

/// render → parse → render is a fixpoint, and the reparsed scenario
/// runs to the same verdict as the original.
#[test]
fn corpus_round_trips_through_canonical_render() {
    let base = corpus_dir();
    for (file, sc) in load_all() {
        let rendered = render_scenario(&sc);
        let back = parse_scenario(&rendered)
            .unwrap_or_else(|e| panic!("{}: rendered form must reparse: {e}", file.display()));
        assert_eq!(
            rendered,
            render_scenario(&back),
            "{}: canonical render is not a fixpoint",
            file.display()
        );
        let a = run_scenario(&sc, &base).expect("original runs");
        let b = run_scenario(&back, &base).expect("reparsed runs");
        assert_eq!(
            a.violations.len(),
            b.violations.len(),
            "{}: reparsed scenario diverged",
            file.display()
        );
    }
}

/// Per-simulator verdict spot checks, pinned against the scenarios
/// the CI corpus job replays: a violation scenario really violates,
/// a clean one really passes.
#[test]
fn expected_verdicts_match_observed_outcomes() {
    let base = corpus_dir();
    for (file, sc) in load_all() {
        let out = run_scenario(&sc, &base)
            .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        match sc.expect.verdict {
            Verdict::Pass => assert!(
                out.violations.is_empty(),
                "{}: expected pass, saw {:?}",
                file.display(),
                out.violations
            ),
            Verdict::Violation => assert!(
                !out.violations.is_empty(),
                "{}: expected a violation, saw none (notes: {:?})",
                file.display(),
                out.notes
            ),
        }
    }
}

/// Determinism at the library level: two fuzz runs over the same
/// seeds agree on attempts, save count, coverage totals, and the
/// rendered bytes of every saved scenario.
#[test]
fn fuzzer_is_a_pure_function_of_corpus_seed_and_iterations() {
    let base = corpus_dir();
    let seeds: Vec<(String, Scenario)> = load_all()
        .into_iter()
        .filter(|(_, sc)| sc.runner == RunnerKind::SimGui)
        .map(|(f, sc)| {
            let stem = f.file_stem().unwrap().to_str().unwrap().to_string();
            (stem, sc)
        })
        .collect();
    assert!(!seeds.is_empty(), "need at least one gui seed scenario");
    let params = FuzzParams { seed: 7, iterations: 30, budget_ms: None };
    let run = |base: &Path| fuzz_corpus(&seeds, base, params);
    let (a, b) = (run(&base), run(&base));
    assert_eq!(a.attempts, b.attempts, "attempt counts diverged");
    assert_eq!(a.baseline, b.baseline, "baseline coverage diverged");
    assert_eq!(a.after, b.after, "post-fuzz coverage diverged");
    assert_eq!(a.saved.len(), b.saved.len(), "save counts diverged");
    for (x, y) in a.saved.iter().zip(&b.saved) {
        assert_eq!(x.name, y.name);
        assert_eq!(
            render_scenario(&x.scenario),
            render_scenario(&y.scenario),
            "saved scenario {} differs between identical runs",
            x.name
        );
    }
}
