//! End-to-end tests for the flow-sensitive static toolchain: the §2
//! OpenSSL case study, model-checked at compile time.
//!
//! * the patched client is **proved safe** and its instrumentation is
//!   elided — the woven program is strictly smaller;
//! * the seeded CVE-2008-5077-shaped bug is a **definite violation**
//!   reported with a concrete counterexample trace, in text, JSON and
//!   SARIF;
//! * everything the checker cannot decide falls back to the dynamic
//!   instrumentation unchanged.

use tesla::automata::SymbolId;
use tesla::corpus::{openssl_like_buggy, openssl_like_patched};
use tesla::instrument::{
    diagnose, diagnose_with_lints, has_denials, render, AssertionReport, CheckVerdict, LintFinding,
    OutputFormat, StaticFinding, TraceStep,
};
use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem, Project};
use tesla::runtime::Tesla;
use tesla::spec::SourceLoc;

#[test]
fn patched_build_elides_and_still_runs() {
    let p = openssl_like_patched(5);
    let mut stat = BuildSystem::new(p.clone(), BuildOptions::static_toolchain());
    let sart = stat.build().unwrap();
    assert_eq!(sart.verdicts.len(), 1);
    assert!(
        sart.verdicts[0].verdict.elidable(),
        "got {:?}",
        sart.verdicts[0].verdict
    );
    assert_eq!(sart.stats.sites_elided, 1);

    // Against the plain TESLA toolchain: elision must remove every
    // hook for the (only) assertion, so the woven program is smaller.
    let mut dyn_ = BuildSystem::new(p, BuildOptions::tesla_toolchain());
    let dart = dyn_.build().unwrap();
    assert!(dart.stats.hooks_inserted > sart.stats.hooks_inserted);
    assert!(dart.stats.linked_insts > sart.stats.linked_insts);

    // Both builds run and agree; neither observes a violation.
    for key in [3, 9, 42] {
        let ts = Tesla::with_defaults();
        let td = Tesla::with_defaults();
        let rs = run_with_tesla(&sart, &ts, "main", &[key], 10_000_000).unwrap();
        let rd = run_with_tesla(&dart, &td, "main", &[key], 10_000_000).unwrap();
        assert_eq!(rs, rd);
        assert!(ts.violations().is_empty());
        assert!(td.violations().is_empty());
    }
}

#[test]
fn buggy_build_reports_definite_violation_with_trace() {
    let mut bs = BuildSystem::new(openssl_like_buggy(5), BuildOptions::static_toolchain());
    let art = bs.build().unwrap();
    assert_eq!(art.verdicts.len(), 1);
    let CheckVerdict::DefiniteViolation { trace } = &art.verdicts[0].verdict else {
        panic!(
            "expected DefiniteViolation, got {:?}",
            art.verdicts[0].verdict
        );
    };
    assert!(trace.iter().any(|s| s.desc.contains("«init»")), "{trace:?}");
    // Nothing is elided on a violating build.
    assert_eq!(art.stats.sites_elided, 0);

    // The diagnostics layer renders the counterexample in all three
    // formats, with the stable code and denial semantics.
    let diags = diagnose(&art.findings, &art.verdicts);
    assert!(has_denials(&diags));
    let text = render(&diags, OutputFormat::Text);
    assert!(text.contains("TESLA-S004"), "{text}");
    assert!(text.contains("counterexample trace:"), "{text}");
    let json = render(&diags, OutputFormat::Json);
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.contains("\"code\": \"TESLA-S004\""), "{json}");
    // The exact SARIF document shape is pinned by the golden test
    // below; here only check the counterexample trace rides along.
    let sarif = render(&diags, OutputFormat::Sarif);
    assert!(sarif.contains("; trace: "), "{sarif}");
}

#[test]
fn sarif_golden_document_for_mixed_program_and_spec_run() {
    // A mixed run: program-level findings/verdicts (S family) plus
    // specification-level lints (L family) rendered as ONE SARIF
    // document, compared byte-for-byte. Any change to the SARIF
    // shape — key order, escaping, rule table, location omission,
    // trace formatting, the shared severity/code sort — must be a
    // deliberate edit to this golden.
    let loc = |file: &str, line: u32| SourceLoc {
        file: file.into(),
        line,
    };
    let findings = [StaticFinding::Unsatisfiable {
        assertion: "ssl.c:9".into(),
        missing_events: vec!["call EVP_VerifyFinal(…)".into()],
    }];
    let reports = [
        AssertionReport {
            class: 0,
            name: "ssl.c:14".into(),
            loc: loc("ssl.c", 14),
            verdict: CheckVerdict::DefiniteViolation {
                trace: vec![
                    TraceStep {
                        sym: SymbolId(0),
                        desc: "«init»".into(),
                    },
                    TraceStep {
                        sym: SymbolId(2),
                        desc: "«assertion-site»".into(),
                    },
                ],
            },
        },
        AssertionReport {
            class: 1,
            name: "ssl.c:21".into(),
            loc: loc("ssl.c", 21),
            verdict: CheckVerdict::Unknown {
                reason: "indirect call".into(),
            },
        },
    ];
    let lints = [
        LintFinding::Vacuous {
            assertion: "spec.c:12".into(),
            loc: loc("spec.c", 12),
        },
        LintFinding::BoundNeverCloses {
            assertion: "spec.c:30".into(),
            loc: loc("spec.c", 30),
            function: "request".into(),
        },
    ];
    let diags = diagnose_with_lints(&findings, &reports, &lints);
    let sarif = render(&diags, OutputFormat::Sarif);
    let expected = concat!(
        "{\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", ",
        "\"version\": \"2.1.0\", \"runs\": [{",
        "\"tool\": {\"driver\": {\"name\": \"tesla-static-check\", ",
        "\"informationUri\": \"https://github.com/tesla-repro/tesla-rs\", ",
        "\"rules\": [",
        "{\"id\": \"TESLA-L001\", \"name\": \"TESLAL001\"}, ",
        "{\"id\": \"TESLA-L005\", \"name\": \"TESLAL005\"}, ",
        "{\"id\": \"TESLA-S003\", \"name\": \"TESLAS003\"}, ",
        "{\"id\": \"TESLA-S004\", \"name\": \"TESLAS004\"}, ",
        "{\"id\": \"TESLA-S006\", \"name\": \"TESLAS006\"}",
        "]}}, \"results\": [",
        // Errors, L before S by code: the bound that never closes…
        "{\"ruleId\": \"TESLA-L005\", \"level\": \"error\", ",
        "\"message\": {\"text\": \"`spec.c:30`: bound can never close: ",
        "start and end are the same event on `request`, ",
        "so no instance lifetime can complete\"}, ",
        "\"locations\": [{\"physicalLocation\": ",
        "{\"artifactLocation\": {\"uri\": \"spec.c\"}, ",
        "\"region\": {\"startLine\": 30}}}]}, ",
        // …the unsatisfiable assertion (no like-named report, so no
        // location attaches and the name-level `…` prefix doubles)…
        "{\"ruleId\": \"TESLA-S003\", \"level\": \"error\", ",
        "\"message\": {\"text\": \"`ssl.c:9`: `ssl.c:9`: unsatisfiable ",
        "— required events [\\\"call EVP_VerifyFinal(…)\\\"] cannot occur ",
        "in this program; every site visit will be a violation\"}}, ",
        // …and the definite violation with its trace inlined.
        "{\"ruleId\": \"TESLA-S004\", \"level\": \"error\", ",
        "\"message\": {\"text\": \"`ssl.c:14`: assertion violated on ",
        "every feasible path; trace: «init» → «assertion-site»\"}, ",
        "\"locations\": [{\"physicalLocation\": ",
        "{\"artifactLocation\": {\"uri\": \"ssl.c\"}, ",
        "\"region\": {\"startLine\": 14}}}]}, ",
        // Warnings.
        "{\"ruleId\": \"TESLA-L001\", \"level\": \"warning\", ",
        "\"message\": {\"text\": \"`spec.c:12`: assertion can never fail: ",
        "every event sequence within the bound satisfies it ",
        "(vacuous specification)\"}, ",
        "\"locations\": [{\"physicalLocation\": ",
        "{\"artifactLocation\": {\"uri\": \"spec.c\"}, ",
        "\"region\": {\"startLine\": 12}}}]}, ",
        // Notes.
        "{\"ruleId\": \"TESLA-S006\", \"level\": \"note\", ",
        "\"message\": {\"text\": \"`ssl.c:21`: undecided statically ",
        "(indirect call); dynamic instrumentation retained\"}, ",
        "\"locations\": [{\"physicalLocation\": ",
        "{\"artifactLocation\": {\"uri\": \"ssl.c\"}, ",
        "\"region\": {\"startLine\": 21}}}]}",
        "]}]}\n",
    );
    assert_eq!(sarif, expected);
}

#[test]
fn undecidable_build_falls_back_to_dynamic_instrumentation() {
    // A data-dependent check is beyond the flow-sensitive abstraction:
    // Unknown verdict, no elision, dynamic enforcement intact.
    let p = Project::from_sources(&[(
        "cond.c",
        "int check(int x) { return 1; }\n\
         int main(int x) {\n\
             if (x) { check(x); }\n\
             TESLA_WITHIN(main, previously(check(ANY(int)) == 1));\n\
             return 0;\n\
         }",
    )]);
    let mut bs = BuildSystem::new(p, BuildOptions::static_toolchain());
    let art = bs.build().unwrap();
    assert_eq!(art.verdicts.len(), 1);
    assert!(
        matches!(art.verdicts[0].verdict, CheckVerdict::Unknown { .. }),
        "got {:?}",
        art.verdicts[0].verdict
    );
    assert_eq!(art.stats.sites_elided, 0);
    assert!(art.stats.hooks_inserted > 0);
    // Dynamic enforcement still works: with x != 0 the check runs and
    // the assertion is satisfied at run time.
    let t = Tesla::with_defaults();
    run_with_tesla(&art, &t, "main", &[7], 10_000_000).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn model_check_off_matches_seed_behaviour() {
    // The plain TESLA toolchain must be bit-for-bit unaffected by the
    // model-checker machinery: no verdicts, no findings, no elision.
    let mut bs = BuildSystem::new(openssl_like_patched(4), BuildOptions::tesla_toolchain());
    let art = bs.build().unwrap();
    assert!(art.verdicts.is_empty());
    assert!(art.findings.is_empty());
    assert_eq!(art.stats.sites_elided, 0);
}
