//! The OpenSSL case study (§3.5.1), end to end, through the umbrella
//! crate: the malicious-server × buggy-libssl matrix, introspection
//! output, and the same scenario rebuilt through the mini-C pipeline.

use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_ssl::{figure6_assertion, FetchError, SslWorld};

#[test]
fn the_four_quadrant_matrix() {
    // (malicious server, buggy libssl) → outcome.
    for (malicious, buggy) in [(false, false), (false, true), (true, false), (true, true)] {
        let engine = Arc::new(Tesla::with_defaults());
        let w = SslWorld::new(Some(engine));
        let r = w.fetch_url(malicious, buggy);
        match (malicious, buggy) {
            (false, _) => assert!(r.is_ok(), "honest server must fetch: {r:?}"),
            (true, false) => assert!(
                matches!(r, Err(FetchError::Ssl(_))),
                "fixed client must reject: {r:?}"
            ),
            (true, true) => assert!(
                matches!(r, Err(FetchError::Tesla(_))),
                "TESLA must catch the conflation: {r:?}"
            ),
        }
    }
}

#[test]
fn figure6_automaton_structure() {
    let a = figure6_assertion();
    let auto = compile(&a).unwrap();
    // previously(x): three states, four symbols (event, site, init,
    // cleanup).
    assert_eq!(auto.n_states, 3);
    assert_eq!(auto.n_symbols(), 4);
    assert_eq!(auto.bound.start_fn, "main");
    // And it renders.
    let dot = tesla::automata::dot::render(&auto, &tesla::automata::dot::Unweighted);
    assert!(dot.contains("EVP_VerifyFinal"));
}

#[test]
fn lifecycle_trace_of_a_successful_fetch() {
    let engine = Arc::new(Tesla::with_defaults());
    let rec = Arc::new(RecordingHandler::new());
    engine.add_handler(rec.clone());
    let w = SslWorld::new(Some(engine));
    w.fetch_url(false, false).unwrap();
    use tesla::runtime::LifecycleEvent as E;
    let evs = rec.events();
    // New (∗) at main entry (lazy: at first event), update on the
    // verify event, update at the site, finalise at main exit.
    assert!(evs.iter().any(|e| matches!(e, E::New { .. })));
    assert!(evs
        .iter()
        .any(|e| matches!(e, E::Finalise { accepted: true, .. })));
    assert!(!evs.iter().any(|e| matches!(e, E::Error { .. })));
}

#[test]
fn the_same_scenario_through_the_minic_pipeline() {
    // The corpus generator's OpenSSL-shaped program embeds the same
    // tri-state logic; drive both outcomes through the full compile →
    // instrument → interpret stack.
    let project = tesla::corpus::openssl_like(5);
    let mut bs = tesla::pipeline::BuildSystem::new(
        project,
        tesla::pipeline::BuildOptions::tesla_toolchain(),
    );
    let art = bs.build().unwrap();
    // key arg == sig arg → EVP returns 1 → satisfied.
    let t = Tesla::with_defaults();
    tesla::pipeline::run_with_tesla(&art, &t, "main", &[9], 10_000_000).unwrap();
    // The corpus main calls EVP(ctx, key, 8, key): always sig == key.
    // Rebuild a failing variant: signature mismatch → EVP returns 0 →
    // the fig. 6 assertion fires at the site.
    let mut bad = bs;
    bad.edit(
        "fetch/main.c",
        "struct evp_ctx { int digest; int err; };\n\
         int EVP_VerifyFinal(struct evp_ctx *ctx, int sig, int len, int key);\n\
         int main(int key) {\n\
             struct evp_ctx *ctx = malloc(sizeof(struct evp_ctx));\n\
             int rc = EVP_VerifyFinal(ctx, key + 1, 8, key);\n\
             TESLA_WITHIN(main, previously(\n\
                 EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));\n\
             return rc;\n\
         }",
    );
    let art = bad.build().unwrap();
    let t = Tesla::with_defaults();
    let err = tesla::pipeline::run_with_tesla(&art, &t, "main", &[9], 10_000_000).unwrap_err();
    assert!(err.contains("TESLA"), "{err}");
}
