//! Differential tests for the three re-instrumentation policies.
//!
//! `Delta` exists purely as a build *optimisation*: for any sequence
//! of edits it must be observationally equivalent to the paper's
//! `Naive` toolchain — identical linked program, manifest,
//! model-checker verdicts, and runtime behaviour — while re-weaving
//! strictly fewer units. These tests drive all three policies through
//! identical randomized edit scripts and compare everything that is
//! observable, then pin the delta-invalidation rule down exactly:
//! an assertion edit re-weaves the units the changed plan slice can
//! touch, and nothing else.

use tesla::pipeline::{
    run_with_tesla, BuildArtifacts, BuildOptions, BuildSystem, Project, ReinstrumentPolicy,
};
use tesla::runtime::Tesla;

/// Deterministic SplitMix64 — the tests must not depend on external
/// PRNG crates or wall-clock seeding.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const N_SUBSYS: usize = 5;

/// The syscall-dispatch unit: defines the assertion bound
/// (`amd64_syscall`) and two MAC entry points assertions can name.
fn kern_src() -> String {
    let mut src = String::from(
        "struct socket { int so_state; };\n\
         int mac_check(int cred, struct socket *so) { return 0; }\n\
         int other_check(int cred, struct socket *so) { return 0; }\n",
    );
    for s in 0..N_SUBSYS {
        src.push_str(&format!(
            "int subsys_{s}_entry(int cred, struct socket *so);\n"
        ));
    }
    src.push_str(
        "int amd64_syscall(int cred, int nr) {\n\
             struct socket *so = malloc(sizeof(struct socket));\n\
             mac_check(cred, so);\n\
             other_check(cred, so);\n",
    );
    for s in 0..N_SUBSYS {
        src.push_str(&format!("    subsys_{s}_entry(cred, so);\n"));
    }
    src.push_str("    return 0;\n}\n");
    src
}

/// One subsystem unit carrying `asserts` TESLA lines. `checker` and
/// `expect` parameterize the assertion so edits can change its
/// content, and `salt` lets a "touch" change the source without
/// changing assertions.
fn subsys_src(s: usize, asserts: usize, checker: &str, expect: i64, salt: u64) -> String {
    let mut src = format!(
        "struct socket {{ int so_state; }};\n\
         int {checker}(int cred, struct socket *so);\n\
         // salt {salt}\n\
         int subsys_{s}_entry(int cred, struct socket *so) {{\n\
             so->so_state = {s};\n"
    );
    for _ in 0..asserts {
        src.push_str(&format!(
            "    TESLA_SYSCALL_PREVIOUSLY({checker}(ANY(int), so) == {expect});\n"
        ));
    }
    src.push_str("    return 0;\n}\n");
    src
}

/// Per-unit edit state for the generator above.
#[derive(Clone, Copy)]
struct UnitState {
    asserts: usize,
    checker: &'static str,
    expect: i64,
    salt: u64,
}

fn project_for(states: &[UnitState]) -> Project {
    let mut sources = vec![("kern/syscall.c".to_string(), kern_src())];
    for (s, st) in states.iter().enumerate() {
        sources.push((
            format!("subsys/unit{s}.c"),
            subsys_src(s, st.asserts, st.checker, st.expect, st.salt),
        ));
    }
    Project {
        units: sources
            .into_iter()
            .map(|(file, source)| tesla::pipeline::SourceUnit { file, source })
            .collect(),
    }
}

fn options_for(policy: ReinstrumentPolicy) -> BuildOptions {
    BuildOptions {
        reinstrument: policy,
        ..BuildOptions::tesla_toolchain()
    }
}

/// Everything observable about a build + run, for cross-policy
/// comparison.
fn observe(art: &BuildArtifacts) -> (Result<i64, String>, Vec<tesla::runtime::Violation>) {
    let t = Tesla::with_defaults();
    let run = run_with_tesla(art, &t, "amd64_syscall", &[7, 3], 1_000_000);
    (run, t.violations())
}

fn assert_equivalent(a: &BuildArtifacts, b: &BuildArtifacts, ctx: &str) {
    assert_eq!(a.program, b.program, "linked programs diverge: {ctx}");
    assert_eq!(a.manifest, b.manifest, "manifests diverge: {ctx}");
    assert_eq!(a.verdicts, b.verdicts, "verdicts diverge: {ctx}");
    assert_eq!(a.findings, b.findings, "findings diverge: {ctx}");
    let (run_a, viol_a) = observe(a);
    let (run_b, viol_b) = observe(b);
    assert_eq!(run_a, run_b, "run results diverge: {ctx}");
    assert_eq!(viol_a, viol_b, "violation traces diverge: {ctx}");
}

/// Drive Naive, Fingerprint, and Delta through one randomized edit
/// script and require observational equivalence after every build.
fn differential_run(seed: u64, steps: usize) {
    let mut rng = Rng(seed);
    let mut states = vec![
        UnitState {
            asserts: 1,
            checker: "mac_check",
            expect: 0,
            salt: 0
        };
        N_SUBSYS
    ];
    let initial = project_for(&states);
    let mut naive = BuildSystem::new(initial.clone(), options_for(ReinstrumentPolicy::Naive));
    let mut fingerprint = BuildSystem::new(
        initial.clone(),
        options_for(ReinstrumentPolicy::Fingerprint),
    );
    let mut delta = BuildSystem::new(initial, options_for(ReinstrumentPolicy::Delta));

    let a = naive.build().unwrap();
    let b = fingerprint.build().unwrap();
    let c = delta.build().unwrap();
    assert_equivalent(&a, &c, "initial naive vs delta");
    assert_equivalent(&b, &c, "initial fingerprint vs delta");

    for step in 0..steps {
        let s = rng.below(N_SUBSYS as u64) as usize;
        let kind = rng.below(5);
        match kind {
            // Touch: source changes, assertions don't.
            0 => states[s].salt = rng.next(),
            // Add an assertion.
            1 => states[s].asserts = (states[s].asserts + 1).min(4),
            // Remove an assertion.
            2 => states[s].asserts = states[s].asserts.saturating_sub(1),
            // Edit assertion content (expected return value).
            3 => states[s].expect = rng.below(3) as i64,
            // Re-point the assertion at the other checker.
            _ => {
                states[s].checker = if states[s].checker == "mac_check" {
                    "other_check"
                } else {
                    "mac_check"
                }
            }
        }
        let file = format!("subsys/unit{s}.c");
        let st = states[s];
        let src = subsys_src(s, st.asserts, st.checker, st.expect, st.salt);
        naive.edit(&file, &src);
        fingerprint.edit(&file, &src);
        delta.edit(&file, &src);

        let a = naive.build().unwrap();
        let b = fingerprint.build().unwrap();
        let c = delta.build().unwrap();
        let ctx = format!("seed {seed} step {step} kind {kind} unit {s}");
        assert_equivalent(&a, &c, &format!("naive vs delta: {ctx}"));
        assert_equivalent(&b, &c, &format!("fingerprint vs delta: {ctx}"));
        // Delta must never weave more than the naive toolchain.
        assert!(
            c.stats.instrumented_units <= a.stats.instrumented_units,
            "delta wove more units than naive: {ctx}"
        );
    }
}

#[test]
fn delta_is_observationally_equivalent_under_random_edits() {
    differential_run(0xA11CE, 12);
    differential_run(0xB0B, 12);
}

/// Elision-verdict changes (model checker on) must also invalidate
/// delta-cached objects: cycle the openssl client through patched /
/// buggy / unchecked shapes and compare against the naive toolchain.
#[test]
fn delta_tracks_elision_verdict_changes() {
    use tesla::corpus::{openssl_like, openssl_like_buggy, openssl_like_patched};

    let client = |p: &Project| {
        p.units
            .iter()
            .find(|u| u.file == "fetch/main.c")
            .unwrap()
            .source
            .clone()
    };
    let base = openssl_like(4);
    let clients = [
        client(&openssl_like_patched(4)),
        client(&openssl_like_buggy(4)),
        client(&openssl_like(4)),
        client(&openssl_like_patched(4)),
    ];

    let static_opts = |policy| BuildOptions {
        reinstrument: policy,
        ..BuildOptions::static_toolchain()
    };
    let mut naive = BuildSystem::new(base.clone(), static_opts(ReinstrumentPolicy::Naive));
    let mut delta = BuildSystem::new(base, static_opts(ReinstrumentPolicy::Delta));
    let a = naive.build().unwrap();
    let c = delta.build().unwrap();
    assert_eq!(a.program, c.program);
    assert_eq!(a.verdicts, c.verdicts);

    for (i, src) in clients.iter().enumerate() {
        naive.edit("fetch/main.c", src);
        delta.edit("fetch/main.c", src);
        let a = naive.build().unwrap();
        let c = delta.build().unwrap();
        assert_eq!(a.program, c.program, "client shape {i}");
        assert_eq!(a.verdicts, c.verdicts, "client shape {i}");
        assert_eq!(a.findings, c.findings, "client shape {i}");
    }
}

/// The regression pinning the invalidation rule: editing one unit's
/// assertion *content* (same event set) re-weaves exactly that unit.
#[test]
fn assertion_edit_invalidates_exactly_the_affected_unit() {
    let mut states = vec![
        UnitState {
            asserts: 1,
            checker: "mac_check",
            expect: 0,
            salt: 0
        };
        N_SUBSYS
    ];
    let mut bs = BuildSystem::new(project_for(&states), BuildOptions::delta_toolchain());
    let first = bs.build().unwrap();
    assert_eq!(first.stats.instrumented_units, N_SUBSYS + 1);

    // `== 0` → `== 1` in unit 1: the plan still instruments the same
    // functions, so only unit 1's own site changed.
    states[1].expect = 1;
    let st = states[1];
    bs.edit(
        "subsys/unit1.c",
        &subsys_src(1, st.asserts, st.checker, st.expect, st.salt),
    );
    let art = bs.build().unwrap();
    assert_eq!(art.stats.compiled_units, 1);
    assert_eq!(
        art.stats.instrumented_units, 1,
        "only the edited unit re-weaves"
    );

    // And the edit is semantically live: mac_check returns 0, the
    // assertion now demands 1, so the run violates.
    let t = Tesla::with_defaults();
    let err = run_with_tesla(&art, &t, "amd64_syscall", &[7, 3], 1_000_000).unwrap_err();
    assert!(err.contains("TESLA"), "{err}");
}

/// Re-pointing an assertion at a function defined elsewhere re-weaves
/// the edited unit *and* the unit whose instrumentation plan slice
/// gained the new callee — and nothing else.
#[test]
fn assertion_retarget_invalidates_the_defining_unit_too() {
    let mut states = vec![
        UnitState {
            asserts: 1,
            checker: "mac_check",
            expect: 0,
            salt: 0
        };
        N_SUBSYS
    ];
    let mut bs = BuildSystem::new(project_for(&states), BuildOptions::delta_toolchain());
    bs.build().unwrap();

    // unit 2's assertion now names `other_check`: the plan gains a
    // callee-side entry for it, which touches kern/syscall.c (defines
    // and calls it). Other subsystem units neither define nor call
    // either checker, so they stay cached.
    states[2].checker = "other_check";
    let st = states[2];
    bs.edit(
        "subsys/unit2.c",
        &subsys_src(2, st.asserts, st.checker, st.expect, st.salt),
    );
    let art = bs.build().unwrap();
    assert_eq!(art.stats.compiled_units, 1);
    assert_eq!(
        art.stats.instrumented_units, 2,
        "edited unit + the unit defining the newly watched function"
    );
}

/// A plain touch of a unit with no assertions under Delta re-weaves
/// only that unit even though the merged `.tesla` text (with its
/// provenance paths) is regenerated — the fingerprint mode's blind
/// spot that per-unit keys fix.
#[test]
fn touch_under_delta_reweaves_one_unit() {
    let states = vec![
        UnitState {
            asserts: 1,
            checker: "mac_check",
            expect: 0,
            salt: 0
        };
        N_SUBSYS
    ];
    let mut bs = BuildSystem::new(project_for(&states), BuildOptions::delta_toolchain());
    bs.build().unwrap();
    bs.touch("kern/syscall.c");
    let art = bs.build().unwrap();
    assert_eq!(art.stats.compiled_units, 1);
    assert_eq!(art.stats.instrumented_units, 1);
}
