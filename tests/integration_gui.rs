//! GNUstep-substrate integration (§3.5.3): the Xnee-like replay
//! across all four fig. 14 instrumentation tiers, trace-driven bug
//! diagnosis, and fig. 8 automaton coverage.

use parking_lot::Mutex;
use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_gui::appkit::GuiBugs;
use tesla::sim_gui::{cursor_imbalance, GuiApp, GuiMode, TraceEvent};
use tesla::workload::xnee;

#[test]
fn replay_is_identical_across_all_tiers() {
    let script = xnee::session(40);
    let render = |mode: GuiMode| {
        let mut app = GuiApp::new(mode, GuiBugs::default());
        xnee::replay(&mut app, &script);
        app.world.framebuffer.clone()
    };
    let release = render(GuiMode::Release);
    assert_eq!(release, render(GuiMode::TracingEnabled));
    assert_eq!(release, render(GuiMode::Interposed));
    assert_eq!(
        release,
        render(GuiMode::Tesla(Arc::new(Tesla::with_defaults())))
    );
}

#[test]
fn figure8_automaton_traces_a_whole_session_without_errors() {
    let counting = Arc::new(CountingHandler::new());
    let engine = Arc::new(Tesla::with_defaults());
    engine.add_handler(counting.clone());
    let mut app = GuiApp::new(GuiMode::Tesla(engine.clone()), GuiBugs::default());
    xnee::replay(&mut app, &xnee::session(50));
    assert_eq!(counting.errors(), 0);
    assert!(counting.updates() > 100);
    // Logical coverage over the automaton's alphabet: which of the
    // ~110 instrumented methods actually ran.
    let covered = counting.covered_symbols(0);
    assert!(covered.len() > 3, "covered symbols: {}", covered.len());
    let defs = engine.class_defs();
    assert!(covered.len() < defs[0].automaton.n_symbols());
}

#[test]
fn trace_diagnosis_of_the_cursor_bug_across_a_session() {
    let trace: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = trace.clone();
    let handler: Arc<dyn Fn(&TraceEvent) + Send + Sync> =
        Arc::new(move |e| sink.lock().push(e.clone()));
    for buggy in [false, true] {
        trace.lock().clear();
        let engine = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::Log,
            ..Config::default()
        }));
        let bugs = GuiBugs {
            duplicate_cursor_push: buggy,
            ..GuiBugs::default()
        };
        let mut app = GuiApp::new(GuiMode::TeslaTracing(engine, handler.clone()), bugs);
        xnee::replay(&mut app, &xnee::session(60));
        let imbalance = cursor_imbalance(&trace.lock());
        if buggy {
            assert!(imbalance > 0, "bug must show in the trace");
        } else {
            assert_eq!(imbalance, 0, "healthy session must balance");
        }
    }
}

#[test]
fn traces_attribute_events_to_classes() {
    // "describing exactly which view class was responsible for
    // calling each back-end method".
    let trace: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = trace.clone();
    let handler: Arc<dyn Fn(&TraceEvent) + Send + Sync> =
        Arc::new(move |e| sink.lock().push(e.clone()));
    let engine = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let mut app = GuiApp::new(GuiMode::TeslaTracing(engine, handler), GuiBugs::default());
    app.run_loop_iteration(&[tesla::sim_gui::appkit::UiEvent::Expose])
        .unwrap();
    let classes: std::collections::HashSet<String> =
        trace.lock().iter().map(|e| e.class.clone()).collect();
    assert!(classes.contains("NSView"));
    assert!(classes.contains("NSCell"));
    assert!(classes.contains("NSGraphicsContext"));
}

#[test]
fn gstate_profile_exposes_save_restore_pairs() {
    // "applications often save and restore the graphics state (a
    // comparatively expensive operation), when the only aspects of
    // the state that are changed in between are the current drawing
    // location and the colour" — the optimisation-opportunity
    // profiling of §3.5.3, from transition counts.
    let counting = Arc::new(CountingHandler::new());
    let engine = Arc::new(Tesla::with_defaults());
    engine.add_handler(counting.clone());
    let mut app = GuiApp::new(GuiMode::Tesla(engine.clone()), GuiBugs::default());
    xnee::replay(&mut app, &xnee::session(25));
    let defs = engine.class_defs();
    let auto = &defs[0].automaton;
    let find = |needle: &str| {
        auto.symbols
            .iter()
            .find(|s| s.kind.to_string().contains(needle))
            .map(|s| counting.symbol_count(0, s.id))
            .unwrap_or(0)
    };
    let saves = find("saveGraphicsState");
    let restores = find("restoreGraphicsState");
    let colors = find("setColor:");
    assert!(saves > 0);
    assert_eq!(saves, restores, "every save paired with a restore");
    assert!(
        colors >= saves,
        "each save/restore pair only changes colour/position"
    );
}
