//! Property-based integration tests of libtesla semantics: random
//! event traces driven through independently-configured engines must
//! agree (naive vs lazy initialisation), and runtime verdicts must
//! match the offline symbolic simulation of the same automaton.

use proptest::prelude::*;
use std::sync::Arc;
use tesla::prelude::*;
use tesla_automata::automaton::Verdict;

/// A small trace alphabet over the fig. 9 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    EnterSyscall,
    ExitSyscall,
    Check { so: u8, ret: i8 },
    Site { so: u8 },
    Unrelated,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::EnterSyscall),
        Just(Op::ExitSyscall),
        (0u8..3, prop_oneof![Just(0i8), Just(-1i8)]).prop_map(|(so, ret)| Op::Check { so, ret }),
        (0u8..3).prop_map(|so| Op::Site { so }),
        Just(Op::Unrelated),
    ]
}

fn engine(init_mode: InitMode) -> (Arc<Tesla>, ClassId) {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        init_mode,
        instance_capacity: 64,
        ..Config::default()
    }));
    let a = AssertionBuilder::syscall()
        .named("prop")
        .previously(call("check").any_ptr().arg_var("so").returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    (t, id)
}

fn drive(t: &Tesla, id: ClassId, trace: &[Op]) -> usize {
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("check");
    let other = t.intern_fn("unrelated_fn");
    for op in trace {
        match op {
            Op::EnterSyscall => t.fn_entry(syscall, &[]).unwrap(),
            Op::ExitSyscall => t.fn_exit(syscall, &[], Value(0)).unwrap(),
            Op::Check { so, ret } => {
                let args = [Value(1), Value(u64::from(*so))];
                t.fn_entry(check, &args).unwrap();
                t.fn_exit(check, &args, Value::from_i64(i64::from(*ret)))
                    .unwrap();
            }
            Op::Site { so } => {
                t.assertion_site(id, &[Value(u64::from(*so))]).unwrap();
            }
            Op::Unrelated => {
                t.fn_entry(other, &[Value(9)]).unwrap();
                t.fn_exit(other, &[Value(9)], Value(0)).unwrap();
            }
        }
    }
    // Balance any open bound so cleanup verdicts land.
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    let n = t.violations().len();
    tesla::runtime::engine::reset_thread_state();
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Naive (eager per-bound init) and lazy (first-event init) modes
    /// are observationally equivalent on arbitrary traces.
    #[test]
    fn naive_and_lazy_are_equivalent(trace in proptest::collection::vec(op_strategy(), 0..40)) {
        let (tn, idn) = engine(InitMode::Naive);
        let (tl, idl) = engine(InitMode::Lazy);
        let vn = drive(&tn, idn, &trace);
        let vl = drive(&tl, idl, &trace);
        prop_assert_eq!(vn, vl, "trace: {:?}", trace);
    }

    /// The runtime agrees with an instance-semantics oracle for
    /// single-binding traces: the `(∗)` instance persists at the
    /// start state (it can re-arm after a site passes), in-place
    /// updates replace the clone's state set, and clone-dedup merges.
    #[test]
    fn runtime_matches_instance_oracle(
        body in proptest::collection::vec(0u8..3, 0..12),
    ) {
        // body entries: 0 = successful check, 1 = site, 2 = unrelated.
        let (t, id) = engine(InitMode::Lazy);
        let a = AssertionBuilder::syscall()
            .named("prop")
            .previously(call("check").any_ptr().arg_var("so").returns(0))
            .build()
            .unwrap();
        let auto = compile(&a).unwrap();
        let check_sym = auto
            .symbols
            .iter()
            .find(|s| s.kind.to_string().contains("check"))
            .unwrap()
            .id;

        // Oracle: (∗) fixed at the start set; one merged clone set.
        let star = auto.initial_states();
        let mut clone: Option<tesla::automata::StateSet> = None;
        let mut oracle_violations = 0usize;
        let mut ops = vec![Op::EnterSyscall];
        for b in &body {
            let sym = match b {
                0 => {
                    ops.push(Op::Check { so: 1, ret: 0 });
                    check_sym
                }
                1 => {
                    ops.push(Op::Site { so: 1 });
                    auto.site_sym
                }
                _ => {
                    ops.push(Op::Unrelated);
                    continue;
                }
            };
            // The clone (if any) matches exactly: in-place update.
            let mut matched = false;
            if let Some(s) = clone {
                let next = auto.step(&s, sym, |_| true);
                if !next.is_empty() {
                    clone = Some(next);
                    matched = true;
                }
            }
            // The (∗) instance specialises: clone-with-dedup-merge.
            let spawned = auto.step(&star, sym, |_| true);
            if !spawned.is_empty() {
                matched = true;
                clone = Some(match clone {
                    None => spawned,
                    Some(mut s) => {
                        s.union_with(&spawned);
                        s
                    }
                });
            }
            if sym == auto.site_sym && !matched {
                oracle_violations += 1;
            }
        }
        // Cleanup: any live instance not cleanup-safe is a violation.
        if let Some(s) = clone {
            if !auto.finalise_ok(&s) {
                oracle_violations += 1;
            }
        }
        ops.push(Op::ExitSyscall);

        let violations = drive(&t, id, &ops);
        prop_assert_eq!(violations, oracle_violations, "body {:?}", body);
    }

    /// For at-most-one-site traces the simpler whole-word symbolic
    /// simulation is also a valid oracle.
    #[test]
    fn runtime_matches_symbolic_simulation_single_site(
        pre in proptest::collection::vec(0u8..2, 0..6),
        site: bool,
        post in proptest::collection::vec(0u8..2, 0..6),
    ) {
        // 0 = successful check, 1 = unrelated; at most one site.
        let (t, id) = engine(InitMode::Lazy);
        let a = AssertionBuilder::syscall()
            .named("prop")
            .previously(call("check").any_ptr().arg_var("so").returns(0))
            .build()
            .unwrap();
        let auto = compile(&a).unwrap();
        let check_sym = auto
            .symbols
            .iter()
            .find(|s| s.kind.to_string().contains("check"))
            .unwrap()
            .id;
        let mut word = Vec::new();
        let mut ops = vec![Op::EnterSyscall];
        let mut push = |b: &u8, word: &mut Vec<_>, ops: &mut Vec<_>| {
            if *b == 0 {
                word.push(check_sym);
                ops.push(Op::Check { so: 1, ret: 0 });
            } else {
                ops.push(Op::Unrelated);
            }
        };
        for b in &pre {
            push(b, &mut word, &mut ops);
        }
        if site {
            word.push(auto.site_sym);
            ops.push(Op::Site { so: 1 });
        }
        for b in &post {
            push(b, &mut word, &mut ops);
        }
        word.push(auto.cleanup_sym);
        ops.push(Op::ExitSyscall);

        let verdict = auto.simulate(&word);
        let violations = drive(&t, id, &ops);
        match verdict {
            Verdict::Accepted => prop_assert_eq!(violations, 0, "word {:?}", word),
            _ => prop_assert!(violations > 0, "word {:?} verdict {:?}", word, verdict),
        }
    }
}

#[test]
fn capacity_sweep_reports_overflows_proportionally() {
    for capacity in [2usize, 4, 8, 32] {
        let t = Tesla::new(Config {
            fail_mode: FailMode::Log,
            init_mode: InitMode::Lazy,
            instance_capacity: capacity,
            ..Config::default()
        });
        let counting = Arc::new(CountingHandler::new());
        t.add_handler(counting.clone());
        let a = AssertionBuilder::syscall()
            .named("cap")
            .previously(call("check").arg_var("x").returns(0))
            .build()
            .unwrap();
        t.register(compile(&a).unwrap()).unwrap();
        let syscall = t.intern_fn("amd64_syscall");
        let check = t.intern_fn("check");
        t.fn_entry(syscall, &[]).unwrap();
        let distinct = 20u64;
        for x in 0..distinct {
            let args = [Value(x)];
            t.fn_entry(check, &args).unwrap();
            t.fn_exit(check, &args, Value(0)).unwrap();
        }
        t.fn_exit(syscall, &[], Value(0)).unwrap();
        // (∗) occupies one slot; the rest hold clones; the remainder
        // of the 20 distinct bindings overflow — and are *reported*.
        let expected_overflow = distinct.saturating_sub(capacity as u64 - 1);
        assert_eq!(
            counting.overflows(),
            expected_overflow,
            "capacity {capacity}"
        );
        tesla::runtime::engine::reset_thread_state();
    }
}

#[test]
fn global_context_under_contention_stays_consistent() {
    // 8 threads × 50 items need a clone slot each within one bound.
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 1024,
        ..Config::default()
    }));
    let a = AssertionBuilder::bounded(
        tesla::spec::StaticEvent::Call("begin".into()),
        tesla::spec::StaticEvent::ReturnFrom("end".into()),
    )
    .global()
    .named("contended")
    .previously(call("produce").arg_var("item").returns(0))
    .build()
    .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let begin = t.intern_fn("begin");
    let end = t.intern_fn("end");
    let produce = t.intern_fn("produce");
    t.fn_entry(begin, &[]).unwrap();
    // 8 threads produce disjoint items then assert on them.
    let mut handles = Vec::new();
    for thread in 0..8u64 {
        let t = t.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let item = thread * 1000 + i;
                let args = [Value(item)];
                t.fn_entry(produce, &args).unwrap();
                t.fn_exit(produce, &args, Value(0)).unwrap();
                t.assertion_site(id, &[Value(item)]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    t.fn_exit(end, &[], Value(0)).unwrap();
    // Every site found its (cloned) instance; no violations.
    assert!(t.violations().is_empty(), "{:?}", t.violations());
}
