//! Differential soundness of the static model checker.
//!
//! The elision contract: when the checker says `ProvedSafe`, the
//! fully-instrumented program must never observe a runtime violation
//! of that assertion — under *any* workload. These property tests
//! drive randomized inputs through the IR interpreter against the
//! un-elided (oracle) build and check that the oracle agrees with
//! the verdict, and that the elided build computes the same results.

use proptest::prelude::*;
use tesla::corpus::{kernel_like, openssl_like_patched};
use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem};
use tesla::runtime::Tesla;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn proved_safe_ssl_never_violates_under_random_keys(
        files in 2usize..5,
        keys in proptest::collection::vec(-4i64..50, 1..5),
    ) {
        let p = openssl_like_patched(files);
        let mut sbs = BuildSystem::new(p.clone(), BuildOptions::static_toolchain());
        let sart = sbs.build().unwrap();
        // The patched corpus is proved safe at every size.
        for v in &sart.verdicts {
            prop_assert!(v.verdict.elidable(), "size {files}: {:?}", v.verdict);
        }
        // Oracle: the same program, fully instrumented.
        let mut dbs = BuildSystem::new(p, BuildOptions::tesla_toolchain());
        let dart = dbs.build().unwrap();
        for &key in &keys {
            let td = Tesla::with_defaults();
            let rd = run_with_tesla(&dart, &td, "main", &[key], 10_000_000);
            // Soundness: a proved-safe assertion never fires.
            prop_assert!(rd.is_ok(), "proved-safe program violated at runtime: {rd:?}");
            prop_assert!(td.violations().is_empty(), "{:?}", td.violations());
            // Differential: the elided build computes the same value.
            let ts = Tesla::with_defaults();
            let rs = run_with_tesla(&sart, &ts, "main", &[key], 10_000_000);
            prop_assert_eq!(rd, rs);
            prop_assert!(ts.violations().is_empty());
        }
    }

    #[test]
    fn proved_safe_kernel_assertions_never_violate(
        files in 2usize..5,
        creds in proptest::collection::vec((0i64..8, 0i64..8), 1..5),
    ) {
        let p = kernel_like(files, 3);
        let mut sbs = BuildSystem::new(p.clone(), BuildOptions::static_toolchain());
        let sart = sbs.build().unwrap();
        let proved: Vec<String> = sart
            .verdicts
            .iter()
            .filter(|v| v.verdict.elidable())
            .map(|v| v.name.clone())
            .collect();
        let mut dbs = BuildSystem::new(p, BuildOptions::tesla_toolchain());
        let dart = dbs.build().unwrap();
        for &(cred, nr) in &creds {
            let td = Tesla::with_defaults();
            let rd = run_with_tesla(&dart, &td, "amd64_syscall", &[cred, nr], 10_000_000);
            // Whatever happens dynamically, no *proved-safe* class may
            // be among the violations.
            for v in td.violations() {
                prop_assert!(
                    !proved.contains(&v.assertion),
                    "proved-safe assertion `{}` violated: {v:?}",
                    v.assertion
                );
            }
            // This corpus is in fact violation-free end to end.
            prop_assert!(rd.is_ok(), "{rd:?}");
            let ts = Tesla::with_defaults();
            let rs = run_with_tesla(&sart, &ts, "amd64_syscall", &[cred, nr], 10_000_000);
            prop_assert_eq!(rd, rs);
        }
    }
}
