//! Cross-crate integration: the full TESLA toolchain — mini-C source
//! with `TESLA_*` macros → analyser → `.tesla` manifests → merged
//! instrumentation plan → woven TIR → interpreter + libtesla — on
//! multi-unit programs, including the §4.2 instrument-before-optimise
//! ordering requirement.

use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem, Project};
use tesla_ir::opt::{optimise, InlineOptions};
use tesla_runtime::Tesla;

/// A three-unit program shaped like the paper's MAC scenario: the
/// syscall layer, the socket layer with the assertion, and a check
/// function — events and assertions spread across units.
fn mac_project(do_check: bool) -> Project {
    let check_call = if do_check {
        "mac_socket_check_poll(cred, so);"
    } else {
        ""
    };
    Project::from_sources(&[
        (
            "mac.c",
            "struct socket { int so_state; };\n\
             int mac_socket_check_poll(int cred, struct socket *so) { return 0; }",
        ),
        (
            "uipc_socket.c",
            "struct socket { int so_state; };\n\
             int sopoll_generic(int cred, struct socket *so) {\n\
                 TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(int), so) == 0);\n\
                 so->so_state = 1;\n\
                 return 0;\n\
             }",
        ),
        (
            "syscall.c",
            &format!(
                "struct socket {{ int so_state; }};\n\
                 int mac_socket_check_poll(int cred, struct socket *so);\n\
                 int sopoll_generic(int cred, struct socket *so);\n\
                 int amd64_syscall(int cred) {{\n\
                     struct socket *so = malloc(sizeof(struct socket));\n\
                     {check_call}\n\
                     return sopoll_generic(cred, so);\n\
                 }}"
            ),
        ),
    ])
}

#[test]
fn checked_program_passes_unchecked_fails() {
    for (do_check, ok) in [(true, true), (false, false)] {
        let mut bs = BuildSystem::new(mac_project(do_check), BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        let t = Tesla::with_defaults();
        let r = run_with_tesla(&art, &t, "amd64_syscall", &[7], 1_000_000);
        assert_eq!(r.is_ok(), ok, "do_check={do_check}: {r:?}");
        if !ok {
            assert!(r.unwrap_err().contains("uipc_socket.c"));
        }
    }
}

#[test]
fn default_toolchain_ignores_assertions_entirely() {
    // The same buggy program, built without TESLA: runs fine (the
    // vulnerability ships silently).
    let mut bs = BuildSystem::new(mac_project(false), BuildOptions::default_toolchain());
    let art = bs.build().unwrap();
    let mut i = tesla_ir::Interp::new(&art.program, 1_000_000);
    assert_eq!(
        i.run_named("amd64_syscall", &[7], &mut tesla_ir::NullSink)
            .unwrap(),
        0
    );
}

#[test]
fn instrument_then_optimise_keeps_events_optimise_first_loses_them() {
    // §4.2: "Instrumentation is not robust in the presence of
    // function inlining ... so we run the TESLA instrumenter before
    // optimisation." Demonstrate both orders on a unit whose check
    // function is small enough to inline.
    let out = tesla_cc::compile_unit(
        "int check(int x) { return 0; }\n\
         int main(int x) {\n\
             check(x);\n\
             TESLA_WITHIN(main, previously(check(x) == 0));\n\
             return 0;\n\
         }",
        "order.c",
    )
    .unwrap();
    let manifest = tesla_automata::Manifest::merge(&[out.manifest.clone()]);

    // optimise-then-instrument: inlining erases the check call before
    // hooks exist; the woven program misses the event and the
    // assertion fires spuriously.
    let mut wrong = out.module.clone();
    optimise(&mut wrong, &InlineOptions::default());
    tesla_instrument::instrument(&mut wrong, &manifest).unwrap();
    let t = Tesla::with_defaults();
    tesla_instrument::register_manifest(&t, &manifest).unwrap();
    let mut sink = tesla_instrument::RuntimeSink::new(&t);
    let mut i = tesla_ir::Interp::new(&wrong, 1_000_000);
    let r = i.run_named("main", &[3], &mut sink);
    assert!(
        r.is_err(),
        "optimise-first should lose the check event and violate"
    );

    // instrument-then-optimise (the pipeline's order): all events
    // observed, assertion satisfied — and the instrumented callee was
    // protected from inlining.
    let mut right = out.module;
    tesla_instrument::instrument(&mut right, &manifest).unwrap();
    optimise(&mut right, &InlineOptions::default());
    let t = Tesla::with_defaults();
    tesla_instrument::register_manifest(&t, &manifest).unwrap();
    let mut sink = tesla_instrument::RuntimeSink::new(&t);
    let mut i = tesla_ir::Interp::new(&right, 1_000_000);
    i.run_named("main", &[3], &mut sink).unwrap();
}

#[test]
fn manifests_link_across_units_like_tesla_files() {
    // The .tesla interchange: write per-unit manifests to text, merge
    // the parsed forms, derive the program-wide instrumentation plan.
    let project = mac_project(true);
    let mut outs = Vec::new();
    for u in &project.units {
        outs.push(tesla_cc::compile_unit(&u.source, &u.file).unwrap());
    }
    let texts: Vec<String> = outs.iter().map(|o| o.manifest.to_tesla()).collect();
    let parsed: Vec<tesla_automata::Manifest> = texts
        .iter()
        .map(|t| tesla_automata::Manifest::from_tesla(t).unwrap())
        .collect();
    let merged = tesla_automata::Manifest::merge(&parsed);
    assert_eq!(merged.entries.len(), 1);
    let plan = merged.instrumentation_plan().unwrap();
    assert!(plan.contains_key("mac_socket_check_poll"));
    assert!(plan.contains_key("amd64_syscall"));
}

#[test]
fn figure9_dot_graph_renders_with_runtime_weights() {
    use std::sync::Arc;
    use tesla_runtime::CountingHandler;
    let mut bs = BuildSystem::new(mac_project(true), BuildOptions::tesla_toolchain());
    let art = bs.build().unwrap();
    let t = Tesla::with_defaults();
    let counting = Arc::new(CountingHandler::new());
    t.add_handler(counting.clone());
    for _ in 0..5 {
        run_with_tesla(&art, &t, "amd64_syscall", &[7], 1_000_000).unwrap();
    }
    let defs = t.class_defs();
    let auto = &defs[0].automaton;
    let dfa = tesla_automata::Dfa::from_automaton(auto);
    let weigher = |from: u32, sym: u32| {
        counting.transition_count(0, dfa.states[from as usize], tesla_automata::SymbolId(sym))
    };
    let dot = tesla_automata::dot::render(auto, &weigher);
    assert!(dot.contains("mac_socket_check_poll"));
    assert!(dot.contains("×)"), "weights rendered: {dot}");
}

#[test]
fn incremental_rebuild_shape_default_vs_tesla() {
    // The fig. 10 asymmetry as a correctness property: after touching
    // one of N files, the default toolchain recompiles 1 unit and
    // instruments 0; the TESLA toolchain recompiles 1 but
    // re-instruments all N.
    let project = tesla::corpus::openssl_like(10);
    let mut default_bs = BuildSystem::new(project.clone(), BuildOptions::default_toolchain());
    let mut tesla_bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    default_bs.build().unwrap();
    tesla_bs.build().unwrap();
    default_bs.touch("ssl/layer3.c");
    tesla_bs.touch("ssl/layer3.c");
    let d = default_bs.build().unwrap();
    let t = tesla_bs.build().unwrap();
    assert_eq!(d.stats.compiled_units, 1);
    assert_eq!(d.stats.instrumented_units, 0);
    assert_eq!(t.stats.compiled_units, 1);
    assert_eq!(t.stats.instrumented_units, 10);
}
