//! Kernel-substrate integration through the umbrella crate: workload
//! runs across the fig. 11 configurations, naive/lazy equivalence on
//! real syscall traffic, and debug-aid coexistence.

use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_kernel::assertions::{register_sets, AssertionSet};
use tesla::sim_kernel::mac::MacFramework;
use tesla::sim_kernel::{Bugs, Kernel, KernelConfig};
use tesla::workload::{buildload, lmbench, oltp};

fn kernel(sets: &[AssertionSet], init_mode: InitMode, debug: bool) -> (Arc<Kernel>, Arc<Tesla>) {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::FailStop,
        init_mode,
        instance_capacity: 64,
        ..Config::default()
    }));
    let reg = register_sets(&t, sets).unwrap();
    let k = Arc::new(Kernel::new(
        KernelConfig {
            bugs: Bugs::default(),
            debug_checks: debug,
        },
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    (k, t)
}

#[test]
fn every_fig11_configuration_runs_the_microbenchmark_clean() {
    let configs: Vec<(&str, Vec<AssertionSet>)> = vec![
        ("Infrastructure", vec![AssertionSet::Infra]),
        ("MP", vec![AssertionSet::MP]),
        ("MS", vec![AssertionSet::MS]),
        ("MF", vec![AssertionSet::MF]),
        ("M", vec![AssertionSet::M]),
        ("All", vec![AssertionSet::All]),
    ];
    for (name, sets) in configs {
        let (k, t) = kernel(&sets, InitMode::Lazy, false);
        lmbench::setup(&k);
        lmbench::open_close_loop(&k, k.init_pid(), 100).unwrap_or_else(|e| panic!("{name}: {e}"));
        lmbench::poll_loop(&k, k.init_pid(), 100).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(t.violations().is_empty(), "{name}: {:?}", t.violations());
    }
}

#[test]
fn naive_and_lazy_init_agree_on_kernel_traffic() {
    for init_mode in [InitMode::Naive, InitMode::Lazy] {
        let (k, t) = kernel(&[AssertionSet::All], init_mode, false);
        lmbench::setup(&k);
        lmbench::open_close_loop(&k, k.init_pid(), 50).unwrap();
        lmbench::read_loop(&k, k.init_pid(), 50).unwrap();
        lmbench::poll_loop(&k, k.init_pid(), 50).unwrap();
        buildload::run(
            &k,
            buildload::BuildParams {
                files: 5,
                compute: 5,
            },
        );
        assert!(
            t.violations().is_empty(),
            "{init_mode:?}: {:?}",
            t.violations()
        );
    }
}

#[test]
fn debug_aids_and_tesla_coexist() {
    // "All (Debug)": WITNESS/INVARIANTS-style sweeps plus all TESLA
    // assertions.
    let (k, t) = kernel(&[AssertionSet::All], InitMode::Lazy, true);
    lmbench::setup(&k);
    lmbench::open_close_loop(&k, k.init_pid(), 50).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn oltp_under_all_assertions_multithreaded() {
    let (k, t) = kernel(&[AssertionSet::All], InitMode::Lazy, false);
    oltp::run(
        &k,
        oltp::OltpParams {
            threads: 4,
            transactions: 25,
            socket_ops: 3,
            compute: 600,
        },
    );
    assert!(t.violations().is_empty(), "{:?}", t.violations());
}

#[test]
fn buggy_kernel_under_oltp_is_caught_in_log_mode() {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let reg = register_sets(&t, &[AssertionSet::MS]).unwrap();
    let k = Arc::new(Kernel::new(
        KernelConfig {
            bugs: Bugs {
                kqueue_skips_mac_poll: true,
                ..Bugs::default()
            },
            debug_checks: false,
        },
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    // The OLTP workload doesn't use kqueue, so it stays clean...
    oltp::run(
        &k,
        oltp::OltpParams {
            threads: 2,
            transactions: 10,
            socket_ops: 2,
            compute: 600,
        },
    );
    assert!(t.violations().is_empty());
    // ...until a kevent-based poller comes along.
    let init = k.init_pid();
    let (cli, _) = k.socketpair(init).unwrap();
    k.sys_kevent(init, cli).unwrap(); // Log mode: records, continues
    assert_eq!(t.violations().len(), 1);
    assert_eq!(t.violations()[0].assertion, "socket/poll");
}

#[test]
fn instance_counts_scale_with_observed_objects() {
    // Clone-per-binding in vivo: each distinct socket polled within
    // one syscall creates its own automaton instance.
    let (k, t) = kernel(&[AssertionSet::MS], InitMode::Lazy, false);
    let init = k.init_pid();
    let mut fds = Vec::new();
    for _ in 0..5 {
        fds.push(k.socketpair(init).unwrap().0);
    }
    k.sys_select(init, &fds).unwrap();
    assert!(t.violations().is_empty());
    let _ = t.coverage();
}

#[test]
fn coverage_counts_accumulate_across_workloads() {
    let (k, t) = kernel(&[AssertionSet::All], InitMode::Lazy, false);
    lmbench::setup(&k);
    lmbench::open_close_loop(&k, k.init_pid(), 10).unwrap();
    let hits_after_open: u64 = t
        .coverage()
        .iter()
        .filter(|(n, _, _)| n == "vnode/open")
        .map(|(_, h, _)| *h)
        .sum();
    assert_eq!(hits_after_open, 10);
    lmbench::poll_loop(&k, k.init_pid(), 7).unwrap();
    let poll_hits: u64 = t
        .coverage()
        .iter()
        .filter(|(n, _, _)| n == "socket/poll")
        .map(|(_, h, _)| *h)
        .sum();
    assert_eq!(poll_hits, 7);
}
