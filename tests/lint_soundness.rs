//! Soundness of the lint-layer automaton algebra.
//!
//! The lints in `tesla-instrument` stand on three claims about the
//! analysis module of `tesla-automata`:
//!
//! 1. The complete-DFA *closure* of an assertion agrees with the
//!    symbolic simulator ([`Automaton::simulate`]) on every
//!    single-site word — the closure is a faithful compilation of the
//!    run-time word model, not a parallel reimplementation that could
//!    drift.
//! 2. Hopcroft minimisation and complementation preserve (resp.
//!    invert) the language exactly.
//! 3. The verdict enums the lints consume — vacuity, contradiction,
//!    language comparison — agree with brute-force word sampling and
//!    produce checkable witnesses.
//!
//! These property tests drive randomly generated assertion
//! expressions (over `||`, `^`, `-->`, `optional`) and random words
//! through both sides of each claim.

use proptest::prelude::*;
use tesla::automata::automaton::Verdict;
use tesla::automata::{
    body_alphabet, compare_languages, compile, union_alphabet, Automaton, Closure, LanguageRelation,
};
use tesla::spec::{call, AssertionBuilder, ExprBuilder};

/// Deterministically build an expression from a byte seed: a tiny
/// recursive-descent over the bytes, so proptest can shrink the seed
/// and the expression shrinks with it.
fn expr_from(seed: &[u8], pos: &mut usize, depth: u32) -> ExprBuilder {
    let b = seed.get(*pos).copied().unwrap_or(0);
    *pos += 1;
    let leaf = |b: u8| {
        let names = ["alpha", "beta", "gamma"];
        let name = names[(b as usize / 5) % names.len()];
        let ret = i64::from(b / 15 % 2);
        ExprBuilder::from(call(name).any("int").returns(ret))
    };
    if depth == 0 {
        return leaf(b);
    }
    match b % 5 {
        0 => leaf(b),
        1 => expr_from(seed, pos, depth - 1).or(expr_from(seed, pos, depth - 1)),
        2 => expr_from(seed, pos, depth - 1).xor(expr_from(seed, pos, depth - 1)),
        3 => expr_from(seed, pos, depth - 1).then(expr_from(seed, pos, depth - 1)),
        _ => expr_from(seed, pos, depth - 1).optional(),
    }
}

fn automaton_from(seed: &[u8]) -> Automaton {
    let mut pos = 0;
    let expr = expr_from(seed, &mut pos, 2);
    let a = AssertionBuilder::within("f")
        .previously(expr)
        .build()
        .expect("generated assertion builds");
    compile(&a).expect("generated assertion compiles")
}

/// Turn raw samples into a word over the closure's columns with the
/// site column appearing exactly once (the single-activation word
/// model both the closure and the simulator implement).
fn single_site_word(closure: &Closure<'_>, raw: &[usize], site_at: usize) -> Vec<usize> {
    let n = closure.alphabet.len();
    let mut word: Vec<usize> = raw
        .iter()
        .map(|&r| {
            let c = r % n;
            if c == closure.site_col {
                (c + 1) % n
            } else {
                c
            }
        })
        .collect();
    word.insert(site_at % (word.len() + 1), closure.site_col);
    word
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claim 1: closure DFA ⟺ symbolic simulation, word by word.
    #[test]
    fn closure_agrees_with_symbolic_simulation(
        seed in proptest::collection::vec(any::<u8>(), 1..12),
        words in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 0..8), 0usize..8),
            1..24,
        ),
    ) {
        let a = automaton_from(&seed);
        let closure = Closure::build(&a, &body_alphabet(&a));
        for (raw, site_at) in &words {
            let word = single_site_word(&closure, raw, *site_at);
            let dfa_pass = closure.dfa.accepts(&word);
            let sim = a.simulate(&closure.project(&word));
            prop_assert_eq!(
                dfa_pass,
                sim == Verdict::Accepted,
                "word {:?} projected {:?}: closure {} vs simulate {:?}",
                word, closure.project(&word), dfa_pass, sim
            );
        }
    }

    /// Claim 2: minimisation preserves and complement inverts the
    /// language, on random words and by construction.
    #[test]
    fn minimise_and_complement_preserve_language(
        seed in proptest::collection::vec(any::<u8>(), 1..12),
        words in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 0..8), 0usize..8),
            1..24,
        ),
    ) {
        let a = automaton_from(&seed);
        let closure = Closure::build(&a, &body_alphabet(&a));
        let (min, map) = closure.dfa.minimise();
        prop_assert!(min.n_states() <= closure.dfa.n_states());
        // Every reachable original state has an image in the minimum.
        for (i, reach) in closure.dfa.reachable().iter().enumerate() {
            prop_assert_eq!(*reach, map[i] != u32::MAX);
        }
        let comp = closure.dfa.complement();
        for (raw, site_at) in &words {
            let word = single_site_word(&closure, raw, *site_at);
            prop_assert_eq!(min.accepts(&word), closure.dfa.accepts(&word));
            prop_assert_eq!(comp.accepts(&word), !closure.dfa.accepts(&word));
        }
        // Minimising twice is a fixed point (already minimal).
        let (min2, _) = min.minimise();
        prop_assert_eq!(min2.n_states(), min.n_states());
    }

    /// Claim 3a: the vacuity and contradiction verdicts agree with
    /// word sampling and their witnesses check out.
    #[test]
    fn vacuity_and_contradiction_agree_with_sampling(
        seed in proptest::collection::vec(any::<u8>(), 1..12),
        words in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 0..8), 0usize..8),
            1..24,
        ),
    ) {
        let a = automaton_from(&seed);
        let closure = Closure::build(&a, &body_alphabet(&a));
        let acceptance = closure.acceptance_dfa();
        if closure.vacuous() {
            prop_assert!(closure.failure_witness().is_none());
            for (raw, site_at) in &words {
                let word = single_site_word(&closure, raw, *site_at);
                prop_assert!(closure.dfa.accepts(&word), "vacuous yet {word:?} fails");
            }
        } else {
            let w = closure.failure_witness().expect("non-vacuous has a witness");
            prop_assert!(!closure.dfa.accepts(&w), "witness {w:?} does not fail");
        }
        if closure.contradictory() {
            prop_assert!(closure.acceptance_witness().is_none());
            for (raw, site_at) in &words {
                let word = single_site_word(&closure, raw, *site_at);
                prop_assert!(!acceptance.accepts(&word), "contradictory yet {word:?} completes");
            }
        } else {
            let w = closure.acceptance_witness().expect("witness");
            prop_assert!(acceptance.accepts(&w), "witness {w:?} does not complete");
        }
    }

    /// Claim 3b: language comparison agrees with word sampling, and
    /// strictness is backed by a concrete separating word.
    #[test]
    fn language_comparison_agrees_with_sampling(
        seed_a in proptest::collection::vec(any::<u8>(), 1..12),
        seed_b in proptest::collection::vec(any::<u8>(), 1..12),
        words in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 0..8), 0usize..8),
            1..24,
        ),
    ) {
        let a = automaton_from(&seed_a);
        let b = automaton_from(&seed_b);
        let Some(rel) = compare_languages(&a, &b) else {
            // Only possible when the bodies share no event kind; our
            // generator draws from one function pool, so the bodies
            // must be disjoint subsets of it.
            let ba = body_alphabet(&a);
            let bb = body_alphabet(&b);
            prop_assert!(
                !ba.iter().any(|k| !matches!(k, tesla::automata::SymbolKind::Site)
                    && bb.contains(k))
            );
            return Ok(());
        };
        let alphabet = union_alphabet(&a, &b);
        let ca = Closure::build(&a, &alphabet);
        let cb = Closure::build(&b, &alphabet);
        for (raw, site_at) in &words {
            let word = single_site_word(&ca, raw, *site_at);
            let (ia, ib) = (ca.dfa.accepts(&word), cb.dfa.accepts(&word));
            match rel {
                LanguageRelation::Equal => prop_assert_eq!(ia, ib, "{word:?}"),
                LanguageRelation::FirstWeaker => prop_assert!(ia || !ib, "{word:?}"),
                LanguageRelation::SecondWeaker => prop_assert!(ib || !ia, "{word:?}"),
                LanguageRelation::Incomparable => {}
            }
        }
        // Strict relations must produce a checkable separating word.
        match rel {
            LanguageRelation::FirstWeaker => {
                let w = cb.dfa.inclusion_counterexample(&ca.dfa).expect("separator");
                prop_assert!(ca.dfa.accepts(&w) && !cb.dfa.accepts(&w));
            }
            LanguageRelation::SecondWeaker => {
                let w = ca.dfa.inclusion_counterexample(&cb.dfa).expect("separator");
                prop_assert!(cb.dfa.accepts(&w) && !ca.dfa.accepts(&w));
            }
            LanguageRelation::Incomparable => {
                let w1 = cb.dfa.inclusion_counterexample(&ca.dfa).expect("separator");
                let w2 = ca.dfa.inclusion_counterexample(&cb.dfa).expect("separator");
                prop_assert!(ca.dfa.accepts(&w1) && !cb.dfa.accepts(&w1));
                prop_assert!(cb.dfa.accepts(&w2) && !ca.dfa.accepts(&w2));
            }
            LanguageRelation::Equal => {
                prop_assert!(ca.dfa.includes(&cb.dfa) && cb.dfa.includes(&ca.dfa));
            }
        }
    }
}
