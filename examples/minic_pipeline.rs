//! The complete compiler workflow (§4): mini-C with `TESLA_*` macros
//! → analyser → per-unit `.tesla` manifests → merge → instrumenter →
//! linked TIR → interpreter with libtesla attached — including an
//! incremental rebuild showing the fig. 10 one-to-many problem.
//!
//! ```sh
//! cargo run --example minic_pipeline
//! ```

use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem, Project};
use tesla::prelude::*;

const MAC_C: &str = "struct socket { int so_state; };\n\
int mac_socket_check_poll(int cred, struct socket *so) {\n\
    if (cred < 0) { return 13; }\n\
    return 0;\n\
}\n";

const SOCKET_C: &str = "struct socket { int so_state; };\n\
int sopoll_generic(int cred, struct socket *so) {\n\
    /* Here, we expect that an access-control check has already\n\
     * been done (fig. 3) — now as a checked TESLA assertion: */\n\
    TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(int), so) == 0);\n\
    so->so_state = 1;\n\
    return 0;\n\
}\n";

fn syscall_c(checked: bool) -> String {
    let check = if checked {
        "mac_socket_check_poll(cred, so);"
    } else {
        "/* forgot! */"
    };
    format!(
        "struct socket {{ int so_state; }};\n\
         int mac_socket_check_poll(int cred, struct socket *so);\n\
         int sopoll_generic(int cred, struct socket *so);\n\
         int amd64_syscall(int cred) {{\n\
             struct socket *so = malloc(sizeof(struct socket));\n\
             {check}\n\
             return sopoll_generic(cred, so);\n\
         }}\n"
    )
}

fn main() {
    // --- Build the correct program ---------------------------------
    let project = Project::from_sources(&[
        ("kern/mac.c", MAC_C),
        ("kern/uipc_socket.c", SOCKET_C),
        ("kern/syscall.c", &syscall_c(true)),
    ]);
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    let art = bs.build().expect("builds");
    println!(
        "full TESLA build: {} units compiled, {} instrumented, {} hooks, {} TIR insts",
        art.stats.compiled_units,
        art.stats.instrumented_units,
        art.stats.hooks_inserted,
        art.stats.linked_insts
    );
    println!(
        "merged manifest ({} assertion):",
        art.manifest.entries.len()
    );
    println!("{}", art.manifest.to_tesla());

    let engine = Tesla::with_defaults();
    let rc = run_with_tesla(&art, &engine, "amd64_syscall", &[7], 1_000_000)
        .expect("checked program satisfies the assertion");
    println!("checked syscall ran, returned {rc}\n");

    // --- Incremental rebuild: the fig. 10 asymmetry ----------------
    bs.touch("kern/mac.c");
    let inc = bs.build().expect("incremental");
    println!(
        "incremental (touched 1 file): {} recompiled, {} RE-instrumented — \
         \"after modifying any one source file, instrumentation must be \
         performed again, potentially on many files\"",
        inc.stats.compiled_units, inc.stats.instrumented_units
    );

    // --- Introduce the missing-check bug and watch it fail-stop ----
    bs.edit("kern/syscall.c", &syscall_c(false));
    let buggy = bs.build().expect("buggy build still compiles");
    let engine = Tesla::with_defaults();
    let err = run_with_tesla(&buggy, &engine, "amd64_syscall", &[7], 1_000_000)
        .expect_err("the missing check must be caught");
    println!("\nbuggy syscall fail-stopped:\n  {err}");
}
