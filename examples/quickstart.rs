//! Quickstart: describe a temporal property, compile it to an
//! automaton, drive events through libtesla, and inspect the state
//! graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use tesla::prelude::*;

fn main() {
    // 1. Describe (§3): "within a call to `handle_request`, a prior
    //    call to `authorise(user, resource)` must have returned 0."
    //    Identical assertions can be written in C-like surface syntax
    //    or with the typed builder; show both agree.
    let parsed =
        parse_assertion("TESLA_WITHIN(handle_request, previously(authorise(user, resource) == 0))")
            .expect("parses");
    let built = AssertionBuilder::within("handle_request")
        .previously(
            call("authorise")
                .arg_var("user")
                .arg_var("resource")
                .returns(0),
        )
        .build()
        .expect("builds");
    assert_eq!(parsed.expr, built.expr);
    println!("assertion: {built}");

    // 2. Compile to a finite-state automaton (§4.1) and register with
    //    libtesla (§4.4).
    let automaton = compile(&built).expect("compiles");
    println!(
        "automaton: {} states, {} symbols, bounded by {}",
        automaton.n_states,
        automaton.n_symbols(),
        automaton.bound.start_fn
    );
    let engine = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let rec = Arc::new(RecordingHandler::new());
    engine.add_handler(rec.clone());
    let class = engine.register(automaton).expect("registers");

    // 3. Drive events — in a real deployment the instrumenter weaves
    //    these hooks into your program (§4.2).
    let handle_request = engine.intern_fn("handle_request");
    let authorise = engine.intern_fn("authorise");

    // A compliant request: authorise(7, 42) == 0, then the site.
    engine.fn_entry(handle_request, &[]).unwrap();
    engine.fn_entry(authorise, &[Value(7), Value(42)]).unwrap();
    engine
        .fn_exit(authorise, &[Value(7), Value(42)], Value(0))
        .unwrap();
    engine
        .assertion_site(class, &[Value(7), Value(42)])
        .unwrap();
    engine.fn_exit(handle_request, &[], Value(0)).unwrap();
    println!("compliant request: OK ({} lifecycle events)", rec.len());

    // A non-compliant request: the authorisation was for a *different*
    // resource — pointer-precise binding catches it.
    engine.fn_entry(handle_request, &[]).unwrap();
    engine.fn_entry(authorise, &[Value(7), Value(41)]).unwrap();
    engine
        .fn_exit(authorise, &[Value(7), Value(41)], Value(0))
        .unwrap();
    engine
        .assertion_site(class, &[Value(7), Value(42)])
        .unwrap();
    engine.fn_exit(handle_request, &[], Value(0)).unwrap();

    for v in engine.violations() {
        println!("caught: {v}");
    }
    assert_eq!(engine.violations().len(), 1);

    // 4. Introspect: render the automaton as Graphviz (fig. 9).
    let defs = engine.class_defs();
    let dot = tesla::automata::dot::render(&defs[0].automaton, &tesla::automata::dot::Unweighted);
    println!("\n{dot}");
}
