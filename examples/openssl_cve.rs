//! The OpenSSL case study (§2.1, §3.5.1): a malicious TLS server
//! forges an ASN.1 tag inside a DSA signature; a buggy libssl
//! conflates `EVP_VerifyFinal`'s exceptional `-1` with success; the
//! fig. 6 assertion written in *libfetch* catches the conflation at
//! run time.
//!
//! ```sh
//! cargo run --example openssl_cve
//! ```

use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_ssl::{figure6_assertion, FetchError, SslWorld};

fn main() {
    println!("figure 6 assertion:\n  {}\n", figure6_assertion());

    let scenarios = [
        ("honest server,   fixed libssl", false, false),
        ("honest server,   buggy libssl", false, true),
        ("malicious server, fixed libssl", true, false),
        ("malicious server, buggy libssl", true, true),
    ];

    println!("without TESLA:");
    for (name, malicious, buggy) in scenarios {
        let world = SslWorld::new(None);
        let outcome = match world.fetch_url(malicious, buggy) {
            Ok(doc) => format!("fetched {} bytes", doc.len()),
            Err(e) => format!("refused: {e}"),
        };
        println!("  {name}: {outcome}");
    }
    println!(
        "  → the (malicious, buggy) quadrant silently serves the document:\n\
         \x20   that is the vulnerability.\n"
    );

    println!("with TESLA (fig. 6 woven between libssl and libcrypto):");
    for (name, malicious, buggy) in scenarios {
        let engine = Arc::new(Tesla::with_defaults());
        let world = SslWorld::new(Some(engine));
        let outcome = match world.fetch_url(malicious, buggy) {
            Ok(doc) => format!("fetched {} bytes", doc.len()),
            Err(FetchError::Ssl(e)) => format!("TLS refused: {e}"),
            Err(FetchError::Tesla(v)) => format!("TESLA caught it: {v}"),
        };
        println!("  {name}: {outcome}");
    }

    // The same scenario through the full mini-C pipeline: recompile
    // the client and its dependencies with the TESLA toolchain.
    println!("\nvia the mini-C toolchain (corpus-shaped OpenSSL stack):");
    let project = tesla::corpus::openssl_like(6);
    let mut bs = tesla::pipeline::BuildSystem::new(
        project,
        tesla::pipeline::BuildOptions::tesla_toolchain(),
    );
    let art = bs.build().expect("builds");
    println!(
        "  built {} units, {} hooks woven, {} TIR instructions",
        bs_stats(&art).0,
        bs_stats(&art).1,
        art.stats.linked_insts
    );
    let engine = Tesla::with_defaults();
    let rc = tesla::pipeline::run_with_tesla(&art, &engine, "main", &[9], 10_000_000)
        .expect("verified run succeeds");
    println!("  instrumented program ran, returned {rc}, 0 violations");
}

fn bs_stats(a: &tesla::pipeline::BuildArtifacts) -> (usize, usize) {
    (a.stats.instrumented_units, a.stats.hooks_inserted)
}
