//! The FreeBSD MAC case study (§3.5.2): boot the simulated kernel
//! with all 96 assertions, run a regression-suite workload, surface
//! the three seeded security bugs, and print the coverage analysis
//! (26 of 37 inter-process assertions unexercised).
//!
//! ```sh
//! cargo run --example mac_audit
//! ```

use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_kernel::assertions::{register_sets, AssertionSet};
use tesla::sim_kernel::mac::MacFramework;
use tesla::sim_kernel::proc::ProcfsOp;
use tesla::sim_kernel::types::oflags;
use tesla::sim_kernel::{Bugs, Kernel, KernelConfig};
use tesla::workload::lmbench;

fn buggy_kernel() -> (Arc<Kernel>, Arc<Tesla>) {
    let tesla = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let reg = register_sets(&tesla, &[AssertionSet::All]).expect("assertions register");
    println!("registered assertion sets (table 1):");
    for (set, n) in &reg.counts {
        println!("  {set:>6}: {n}");
    }
    println!("  total: {}\n", reg.total);
    let bugs = Bugs {
        kqueue_skips_mac_poll: true,
        poll_passes_file_cred: true,
        setuid_skips_sugid: true,
    };
    let k = Arc::new(Kernel::new(
        KernelConfig {
            bugs,
            debug_checks: false,
        },
        MacFramework::new(),
        Some((tesla.clone(), reg.sites)),
    ));
    (k, tesla)
}

fn main() {
    let (k, tesla) = buggy_kernel();
    let init = k.init_pid();
    lmbench::setup(&k);

    // Ordinary traffic: files, sockets, processes.
    lmbench::open_close_loop(&k, init, 25).unwrap();
    lmbench::read_loop(&k, init, 25).unwrap();
    let (cli, _srv) = k.socketpair(init).unwrap();
    k.sys_poll(init, cli).unwrap();
    k.sys_select(init, &[cli]).unwrap();

    // Bug 1: the kqueue path misses mac_socket_check_poll.
    k.sys_kevent(init, cli).unwrap();

    // Bug 2: a forked child polls an inherited descriptor; the buggy
    // select path authorises with the cached file_cred.
    let child = k.sys_fork(init).unwrap();
    k.sys_select(child, &[cli]).unwrap();

    // Bug 3: setuid forgets to set P_SUGID.
    k.sys_setuid(init, 0).unwrap();

    println!("violations detected while running:");
    for v in tesla.violations() {
        println!("  [{:?}] {} — {}", v.kind, v.assertion, v.detail);
    }
    assert!(tesla.violations().len() >= 3);

    // Inter-process test-suite slice (the 11 classic operations).
    let t2 = k.sys_fork(init).unwrap();
    k.sys_kill(init, t2, 15).unwrap();
    k.sys_killpg(init, 1, 10).unwrap();
    k.sys_ptrace_attach(init, t2).unwrap();
    k.sys_getpriority(init, t2).unwrap();
    k.sys_setpriority(init, t2, 5).unwrap();
    k.sys_ktrace(init, t2).unwrap();
    k.sys_getpgid(init, t2).unwrap();
    k.sys_setpgid(init, t2, 9).unwrap();
    k.sys_reap_acquire(init, t2).unwrap();
    k.sys_cred_visible(init, t2).unwrap();
    k.sys_wait(init, {
        k.sys_exit(t2, 0).unwrap();
        t2
    })
    .unwrap();

    // Coverage analysis (§3.5.2): which P assertions did the suite
    // exercise?
    let cov = tesla.coverage();
    let p_assertions: Vec<_> = cov
        .iter()
        .filter(|(n, _, _)| {
            n.starts_with("ip/")
                || n.starts_with("procfs/")
                || n.starts_with("cpuset/")
                || n.starts_with("rt/")
        })
        .collect();
    let unexercised: Vec<&str> = p_assertions
        .iter()
        .filter(|(_, hits, _)| *hits == 0)
        .map(|(n, _, _)| n.as_str())
        .collect();
    println!(
        "\ncoverage: {} of {} inter-process assertions unexercised by the test suite:",
        unexercised.len(),
        p_assertions.len()
    );
    println!(
        "  procfs: {}  cpuset: {}  posix-rt: {}",
        unexercised
            .iter()
            .filter(|n| n.starts_with("procfs/"))
            .count(),
        unexercised
            .iter()
            .filter(|n| n.starts_with("cpuset/"))
            .count(),
        unexercised.iter().filter(|n| n.starts_with("rt/")).count(),
    );

    // TESLA helping improve coverage: extend the suite.
    for op in ProcfsOp::ALL {
        let tgt = k.sys_fork(init).unwrap();
        k.sys_procfs(init, tgt, op).unwrap();
    }
    let tgt = k.sys_fork(init).unwrap();
    k.sys_cpuset_get(init, tgt).unwrap();
    k.sys_cpuset_set(init, tgt, 3).unwrap();
    k.sys_rtprio_get(init, tgt).unwrap();
    k.sys_rtprio_set(init, tgt, 1).unwrap();
    k.sys_sched_getparam(init, tgt).unwrap();
    k.sys_sched_setparam(init, tgt, 1).unwrap();
    k.sys_sched_setscheduler(init, tgt, 1).unwrap();
    let still_unexercised = tesla
        .coverage()
        .iter()
        .filter(|(n, hits, _)| {
            (n.starts_with("ip/")
                || n.starts_with("procfs/")
                || n.starts_with("cpuset/")
                || n.starts_with("rt/"))
                && *hits == 0
        })
        .count();
    println!("after extending the suite: {still_unexercised} unexercised");

    // A file open via exec and kld paths, to show the fig. 7
    // disjunction at work.
    k.mkdir_p("/boot", 0).unwrap();
    k.mkfile("/boot/mod.ko", b"\x7fELF", 0, true).unwrap();
    k.sys_exec(init, "/boot/mod.ko").unwrap();
    k.sys_kldload(init, "/boot/mod.ko").unwrap();
    let fd = k.sys_open(init, "/boot/mod.ko", oflags::O_RDONLY).unwrap();
    k.sys_close(init, fd).unwrap();
    println!("\nfig. 7 open paths (open/exec/kldload) all authorised distinctly: OK");
}
