int EVP_VerifyFinal(int ctx, int sig, int len, int key) {
    if (len < 4) { return -1; }
    if (sig == key) { return 1; }
    return 0;
}
int ssl_main(int sig, int key) {
    int ctx = 77;
    int rc = EVP_VerifyFinal(ctx, sig, 8, key);
    if (rc != 1) { return -1; }
    TESLA_WITHIN(ssl_main, previously(
        EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));
    return rc;
}
