int EVP_VerifyFinal(int ctx, int sig, int len, int key) {
    if (sig == key) { return 1; }
    return 0;
}
int ssl_main(int sig, int key) {
    int page = 7;
    TESLA_WITHIN(ssl_main, previously(
        EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));
    return page;
}
