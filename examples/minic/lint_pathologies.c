/* Seeded specification defects for `tesla lint` — one per lint code.
 * Each assertion below is well-formed (it parses, compiles to an
 * automaton, and the program builds and runs) but says something no
 * execution could ever falsify, satisfy, or need:
 *
 *   lint_vacuous      TESLA-L001  optional(...) body accepts everything
 *   lint_contradictory TESLA-L002 body waits for the bound's own exit
 *   lint_sub (2nd)    TESLA-L003  weaker disjunct of the 1st assertion
 *   lint_deadstate    TESLA-L004  xor branches duplicate DFA structure
 *
 * The lint corpus test and the CI lint-smoke job assert each defect is
 * flagged exactly once with its stable code.
 */

int lint_log(int msg) { return 0; }
int lint_verify(int tok) { return 0; }
int lint_audit(int tok) { return 0; }
int lint_push(int v) { return 1; }
int lint_pop(int v) { return 1; }

/* L001: the optional(...) wrapper means the empty event sequence
 * already satisfies the body — the assertion can never fail. */
int lint_vacuous(int x) {
    lint_log(x);
    TESLA_WITHIN(lint_vacuous, previously(optional(lint_log(ANY(int)) == 0)));
    return 0;
}

/* L002: the body event is the exit of lint_contradictory itself, but
 * the bound is one activation of lint_contradictory — within a single
 * (non-recursive) activation that exit can never precede the site, so
 * the assertion can never pass. */
int lint_contradictory(int x) {
    TESLA_WITHIN(lint_contradictory, previously(lint_contradictory(ANY(int)) == 0));
    return 0;
}

/* L003: the second assertion's language strictly contains the first's
 * (same bound, same context) — whenever the strict form holds, the
 * disjunction holds too, so the weaker assertion is dead weight. */
int lint_sub(int tok) {
    int rc = lint_verify(tok);
    lint_audit(tok);
    TESLA_WITHIN(lint_sub, previously(lint_verify(ANY(int)) == 0));
    TESLA_WITHIN(lint_sub, previously(
        lint_verify(ANY(int)) == 0 || lint_audit(ANY(int)) == 0));
    return rc;
}

/* L004: the two xor branches lower to structurally duplicated DFA
 * states that minimisation would merge — redundant automaton
 * structure (harmless at run time, wasteful and usually a spec
 * copy-paste smell). */
int lint_deadstate(int v) {
    lint_push(v);
    TESLA_WITHIN(lint_deadstate, previously(
        lint_push(ANY(int)) == 1 ^ lint_pop(ANY(int)) == 1));
    return 0;
}

int main(int x) {
    lint_vacuous(x);
    lint_contradictory(x);
    lint_sub(x);
    lint_deadstate(x);
    return 0;
}
