//! The GNUstep case study (§2.3, §3.5.3): instrument ~110 methods via
//! message-send interposition (fig. 8), replay a user session, and
//! diagnose both UI bugs from the traces.
//!
//! ```sh
//! cargo run --example gui_trace
//! ```

use parking_lot::Mutex;
use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_gui::appkit::GuiBugs;
use tesla::sim_gui::{cursor_imbalance, figure8_assertion, GuiApp, GuiMode, TraceEvent};
use tesla::workload::xnee;

fn main() {
    // The fig. 8 tracing assertion over a small selector list, for
    // display; the app registers it over the full ~110-method list.
    let preview = figure8_assertion(&["push".into(), "pop".into(), "drawWithFrame:inView:".into()]);
    println!("figure 8 (abridged):\n  {preview}\n");

    let trace: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = trace.clone();
    let handler: Arc<dyn Fn(&TraceEvent) + Send + Sync> =
        Arc::new(move |e| sink.lock().push(e.clone()));

    // --- Bug 1: cursor push/pop imbalance --------------------------
    let engine = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let bugs = GuiBugs {
        duplicate_cursor_push: true,
        ..GuiBugs::default()
    };
    let mut app = GuiApp::new(GuiMode::TeslaTracing(engine.clone(), handler.clone()), bugs);
    let script = xnee::session(60);
    xnee::replay(&mut app, &script);

    let t = trace.lock().clone();
    let pushes = t.iter().filter(|e| e.entry && e.selector == "push").count();
    let pops = t.iter().filter(|e| e.entry && e.selector == "pop").count();
    println!("cursor bug session: {} trace events", t.len());
    println!("  [NSCursor push] × {pushes}");
    println!("  [NSCursor pop]  × {pops}");
    println!(
        "  imbalance: {} (cursor stack residue: {:?})",
        cursor_imbalance(&t),
        app.world.cursor_stack
    );
    println!(
        "  → mouse-entered events not paired with mouse-exited: the same\n\
         \x20   cursor was pushed multiple times and one pop cannot restore it.\n"
    );

    // First few push/pop events with class attribution, like the
    // paper's stack-trace logging.
    println!("  trace excerpt:");
    for e in t
        .iter()
        .filter(|e| {
            e.entry
                && matches!(
                    e.selector.as_str(),
                    "push" | "pop" | "mouseEntered:" | "mouseExited:"
                )
        })
        .take(8)
    {
        println!(
            "    [{} {}] (receiver #{})",
            e.class, e.selector, e.receiver
        );
    }

    // --- Bug 2: non-LIFO gstate restore ----------------------------
    trace.lock().clear();
    let bugs = GuiBugs {
        backend_lifo_only: true,
        ..GuiBugs::default()
    };
    let mut buggy = GuiApp::new(GuiMode::TeslaTracing(engine, handler), bugs);
    let got = buggy.world.draw_non_lifo_scene().unwrap();
    let mut good = GuiApp::new(GuiMode::Release, GuiBugs::default());
    let want = good.world.draw_non_lifo_scene().unwrap();
    println!("\nnon-LIFO gstate bug:");
    println!("  expected stroke colours: {want:06x?}");
    println!("  new backend drew:        {got:06x?}");
    let sets: Vec<TraceEvent> = trace
        .lock()
        .iter()
        .filter(|e| e.entry && (e.selector == "defineGState" || e.selector == "setGState:"))
        .cloned()
        .collect();
    println!("  gstate call sequence from the trace:");
    for e in &sets {
        println!("    [{} {}]", e.class, e.selector);
    }
    println!(
        "  → define, define, set, set, set: a non-LIFO restore sequence —\n\
         \x20   \"something obvious in traces of even simple application\"."
    );

    // --- Healthy app: everything balances ---------------------------
    let engine = Arc::new(Tesla::with_defaults());
    let counting = Arc::new(CountingHandler::new());
    engine.add_handler(counting.clone());
    let mut clean = GuiApp::new(GuiMode::Tesla(engine.clone()), GuiBugs::default());
    xnee::replay(&mut clean, &xnee::session(60));
    let defs = engine.class_defs();
    println!(
        "\nhealthy session: {} automaton updates across {} instrumented selectors, 0 errors",
        counting.updates(),
        defs[0].automaton.n_symbols() - 3,
    );
    assert_eq!(counting.errors(), 0);
}
