//! A positioned, indentation-scoped YAML-subset parser for scenario
//! files.
//!
//! The workspace deliberately carries no YAML dependency, and the
//! scenario format needs only a small, regular subset: nested maps,
//! lists of scalars or maps, inline `[a, b]` lists, quoted strings
//! and `#` comments. What it *does* need — and what a full YAML
//! library would not give us — is the ingress error contract:
//! every diagnostic carries the 1-based line number and the byte
//! offset of the offending line, rendered exactly like
//! [`tesla_runtime::IngressError::Malformed`]'s
//! `malformed trace line {line} (byte offset {offset}): {detail}`,
//! so `tesla scenario` and `tesla replay` speak one language about
//! broken inputs.
//!
//! Strictness rules (mirroring the trace/fault-spec philosophy that a
//! half-applied input is worse than a rejected one): tabs in
//! indentation, duplicate map keys, dangling values, unterminated
//! quotes and stray indentation are all hard errors.

use std::fmt;

/// A source position: 1-based line, byte offset of the line start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u64,
    /// Byte offset of the start of that line within the document.
    pub offset: u64,
}

/// A positioned scenario-parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// Where.
    pub pos: Pos,
    /// What.
    pub detail: String,
}

impl YamlError {
    pub(crate) fn new(pos: Pos, detail: impl Into<String>) -> YamlError {
        YamlError {
            pos,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed scenario line {} (byte offset {}): {}",
            self.pos.line, self.pos.offset, self.detail
        )
    }
}

impl std::error::Error for YamlError {}

/// A parsed node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A scalar; `quoted` distinguishes `"5"` (always a string) from
    /// `5` (which schema layers may type as an integer).
    Scalar {
        /// The text, unescaped.
        text: String,
        /// Whether the source was quoted.
        quoted: bool,
    },
    /// A list (block `- item` form or inline `[a, b]`).
    List(Vec<Spanned>),
    /// A map in written order.
    Map(Vec<(String, Spanned)>),
}

/// A node plus the position it started at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The node.
    pub node: Node,
    /// Where it started.
    pub pos: Pos,
}

impl Spanned {
    /// The scalar text, if this is a scalar.
    pub fn scalar(&self) -> Option<(&str, bool)> {
        match &self.node {
            Node::Scalar { text, quoted } => Some((text, *quoted)),
            _ => None,
        }
    }

    /// The entries, if this is a map.
    pub fn map(&self) -> Option<&[(String, Spanned)]> {
        match &self.node {
            Node::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items, if this is a list.
    pub fn list(&self) -> Option<&[Spanned]> {
        match &self.node {
            Node::List(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a map key.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One significant source line.
#[derive(Debug, Clone)]
struct Line<'a> {
    indent: usize,
    rest: &'a str,
    pos: Pos,
}

/// Strip a trailing comment: `#` outside quotes, preceded by
/// whitespace (or at content start). Returns the retained prefix.
fn strip_comment(s: &str) -> &str {
    let mut quote: Option<char> = None;
    let mut prev_ws = true;
    for (i, c) in s.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '#' if prev_ws => return &s[..i],
                _ => {}
            },
        }
        prev_ws = c.is_whitespace();
    }
    s
}

/// Split the document into significant lines with positions.
fn lines(src: &str) -> Result<Vec<Line<'_>>, YamlError> {
    let mut out = Vec::new();
    let mut offset = 0u64;
    for (idx, raw) in src.split('\n').enumerate() {
        let pos = Pos {
            line: idx as u64 + 1,
            offset,
        };
        // +1 for the newline; the final fragment has none but its
        // offset is never used past end-of-input.
        let advance = raw.len() as u64 + 1;
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        let content = strip_comment(line);
        let trimmed = content.trim_end();
        if !trimmed.trim_start().is_empty() {
            let indent_text = &trimmed[..trimmed.len() - trimmed.trim_start().len()];
            if indent_text.contains('\t') {
                return Err(YamlError::new(pos, "tab in indentation (use spaces)"));
            }
            out.push(Line {
                indent: indent_text.len(),
                rest: trimmed.trim_start(),
                pos,
            });
        }
        offset += advance;
    }
    Ok(out)
}

fn is_dash_item(rest: &str) -> bool {
    rest == "-" || rest.starts_with("- ")
}

/// Find the first `:` that terminates a key (outside quotes) and is
/// followed by a space or end-of-line.
fn find_key_colon(s: &str) -> Option<usize> {
    let mut quote: Option<char> = None;
    for (i, c) in s.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                ':' => {
                    let after = &s[i + 1..];
                    if after.is_empty() || after.starts_with(' ') {
                        return Some(i);
                    }
                }
                _ => {}
            },
        }
    }
    None
}

/// Unquote and unescape one scalar token.
fn scalar_token(tok: &str, pos: Pos) -> Result<Node, YamlError> {
    let tok = tok.trim();
    if let Some(body) = tok
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .filter(|_| tok.len() >= 2)
    {
        let mut text = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('\\') => text.push('\\'),
                    Some('"') => text.push('"'),
                    other => {
                        return Err(YamlError::new(
                            pos,
                            format!(
                                "unknown escape `\\{}` in quoted string",
                                other.map(String::from).unwrap_or_default()
                            ),
                        ))
                    }
                }
            } else {
                text.push(c);
            }
        }
        return Ok(Node::Scalar { text, quoted: true });
    }
    if let Some(body) = tok
        .strip_prefix('\'')
        .and_then(|t| t.strip_suffix('\''))
        .filter(|_| tok.len() >= 2)
    {
        return Ok(Node::Scalar {
            text: body.to_string(),
            quoted: true,
        });
    }
    if tok.starts_with('"') || tok.starts_with('\'') {
        return Err(YamlError::new(pos, format!("unterminated quote in `{tok}`")));
    }
    Ok(Node::Scalar {
        text: tok.to_string(),
        quoted: false,
    })
}

/// Split an inline list body on top-level commas.
fn split_inline(body: &str, pos: Pos) -> Result<Vec<&str>, YamlError> {
    let mut items = Vec::new();
    let mut quote: Option<char> = None;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '[' | ']' | '{' | '}' => {
                    return Err(YamlError::new(pos, "nested inline collections unsupported"))
                }
                ',' => {
                    items.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            },
        }
    }
    if quote.is_some() {
        return Err(YamlError::new(pos, "unterminated quote in inline list"));
    }
    items.push(&body[start..]);
    Ok(items)
}

/// Parse an inline value: `[a, b]` list or a scalar.
fn inline_value(text: &str, pos: Pos) -> Result<Node, YamlError> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| YamlError::new(pos, "unterminated inline list (missing `]`)"))?;
        if body.trim().is_empty() {
            return Ok(Node::List(Vec::new()));
        }
        let mut items = Vec::new();
        for part in split_inline(body, pos)? {
            if part.trim().is_empty() {
                return Err(YamlError::new(pos, "empty element in inline list"));
            }
            items.push(Spanned {
                node: scalar_token(part, pos)?,
                pos,
            });
        }
        return Ok(Node::List(items));
    }
    if text.starts_with('{') {
        return Err(YamlError::new(pos, "inline maps unsupported (use a block)"));
    }
    scalar_token(text, pos)
}

struct Parser<'a> {
    lines: Vec<Line<'a>>,
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Line<'a>> {
        self.lines.get(self.i)
    }

    /// Parse the block starting at the current line, which sits at
    /// `indent`.
    fn block(&mut self, indent: usize) -> Result<Spanned, YamlError> {
        let first = self.peek().expect("block called at a line").clone();
        if is_dash_item(first.rest) {
            self.list(indent)
        } else {
            let line = self.advance();
            self.map_from(line, indent)
        }
    }

    fn advance(&mut self) -> Line<'a> {
        let l = self.lines[self.i].clone();
        self.i += 1;
        l
    }

    fn list(&mut self, indent: usize) -> Result<Spanned, YamlError> {
        let pos = self.peek().expect("list called at a line").pos;
        let mut items = Vec::new();
        while let Some(l) = self.peek() {
            if l.indent < indent {
                break;
            }
            if l.indent > indent {
                return Err(YamlError::new(l.pos, "unexpected indentation"));
            }
            if !is_dash_item(l.rest) {
                break;
            }
            let l = self.advance();
            let content = l.rest[1..].trim_start();
            let content_col = l.indent + (l.rest.len() - l.rest[1..].trim_start().len());
            if content.is_empty() {
                // `-` alone: nested block on the following lines.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        items.push(self.block(child_indent)?);
                    }
                    _ => {
                        return Err(YamlError::new(l.pos, "list item `-` has no value"));
                    }
                }
            } else if find_key_colon(content).is_some() {
                // `- key: ...`: an inline map whose first entry sits
                // at the content column.
                let virt = Line {
                    indent: content_col,
                    rest: content,
                    pos: l.pos,
                };
                items.push(self.map_from(virt, content_col)?);
            } else {
                items.push(Spanned {
                    node: inline_value(content, l.pos)?,
                    pos: l.pos,
                });
            }
        }
        Ok(Spanned {
            node: Node::List(items),
            pos,
        })
    }

    /// Parse a map whose first entry line is `first` (already
    /// consumed), continuing with further entries at `indent`.
    fn map_from(&mut self, first: Line<'a>, indent: usize) -> Result<Spanned, YamlError> {
        let pos = first.pos;
        let mut entries: Vec<(String, Spanned)> = Vec::new();
        let mut line = Some(first);
        loop {
            let l = match line.take() {
                Some(l) => l,
                None => match self.peek() {
                    Some(next) if next.indent == indent && !is_dash_item(next.rest) => {
                        self.advance()
                    }
                    Some(next) if next.indent > indent => {
                        return Err(YamlError::new(next.pos, "unexpected indentation"));
                    }
                    _ => break,
                },
            };
            let (key, value) = self.entry(&l, indent)?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(YamlError::new(l.pos, format!("duplicate key `{key}`")));
            }
            entries.push((key, value));
        }
        Ok(Spanned {
            node: Node::Map(entries),
            pos,
        })
    }

    fn entry(&mut self, l: &Line<'a>, indent: usize) -> Result<(String, Spanned), YamlError> {
        let colon = find_key_colon(l.rest).ok_or_else(|| {
            YamlError::new(l.pos, format!("expected `key: value`, got `{}`", l.rest))
        })?;
        let key_text = l.rest[..colon].trim();
        let key = match scalar_token(key_text, l.pos)? {
            Node::Scalar { text, .. } => text,
            _ => unreachable!("scalar_token returns scalars"),
        };
        if key.is_empty() {
            return Err(YamlError::new(l.pos, "empty map key"));
        }
        let after = l.rest[colon + 1..].trim();
        if after.is_empty() {
            // Block value (or an empty scalar when nothing is nested).
            match self.peek() {
                Some(next) if next.indent > indent => {
                    let child_indent = next.indent;
                    Ok((key, self.block(child_indent)?))
                }
                _ => Ok((
                    key,
                    Spanned {
                        node: Node::Scalar {
                            text: String::new(),
                            quoted: false,
                        },
                        pos: l.pos,
                    },
                )),
            }
        } else {
            Ok((
                key,
                Spanned {
                    node: inline_value(after, l.pos)?,
                    pos: l.pos,
                },
            ))
        }
    }
}

/// Parse a scenario document into its top-level map.
///
/// # Errors
///
/// A positioned [`YamlError`] on the first malformed construct; an
/// empty document is an error (a scenario file must at least carry
/// its version header).
pub fn parse(src: &str) -> Result<Spanned, YamlError> {
    let lines = lines(src)?;
    if lines.is_empty() {
        return Err(YamlError::new(
            Pos { line: 1, offset: 0 },
            "empty scenario document",
        ));
    }
    if lines[0].indent != 0 {
        return Err(YamlError::new(lines[0].pos, "unexpected indentation"));
    }
    let mut p = Parser { lines, i: 0 };
    let doc = p.block(0)?;
    if let Some(extra) = p.peek() {
        return Err(YamlError::new(
            extra.pos,
            format!("trailing content `{}`", extra.rest),
        ));
    }
    if doc.map().is_none() {
        return Err(YamlError::new(doc.pos, "top level must be a map"));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(s: &Spanned) -> &str {
        s.scalar().expect("scalar").0
    }

    #[test]
    fn parses_nested_maps_lists_and_inline() {
        let doc = parse(
            "tesla_scenario: 1\n\
             name: demo   # a comment\n\
             config:\n\
             \x20 sets: [ms, mf]\n\
             \x20 deep: true\n\
             timeline:\n\
             \x20 - op: open\n\
             \x20   path: \"/a b\"\n\
             \x20 - op: close\n\
             expect:\n\
             \x20 verdict: pass\n",
        )
        .unwrap();
        assert_eq!(scalar(doc.get("tesla_scenario").unwrap()), "1");
        assert_eq!(scalar(doc.get("name").unwrap()), "demo");
        let config = doc.get("config").unwrap();
        let sets = config.get("sets").unwrap().list().unwrap();
        assert_eq!(scalar(&sets[0]), "ms");
        assert_eq!(scalar(&sets[1]), "mf");
        let tl = doc.get("timeline").unwrap().list().unwrap();
        assert_eq!(tl.len(), 2);
        assert_eq!(scalar(tl[0].get("op").unwrap()), "open");
        let (path, quoted) = tl[0].get("path").unwrap().scalar().unwrap();
        assert_eq!(path, "/a b");
        assert!(quoted);
        assert_eq!(tl[0].pos.line, 7);
        assert_eq!(scalar(tl[1].get("op").unwrap()), "close");
    }

    #[test]
    fn positions_match_byte_offsets() {
        let src = "name: ok\nbroken\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.pos.line, 2);
        assert_eq!(e.pos.offset, 9);
        assert!(e.to_string().starts_with("malformed scenario line 2 (byte offset 9):"));
    }

    #[test]
    fn rejects_tabs_duplicates_and_stray_indent() {
        assert!(parse("a: 1\n\tb: 2\n")
            .unwrap_err()
            .detail
            .contains("tab in indentation"));
        let e = parse("a: 1\na: 2\n").unwrap_err();
        assert!(e.detail.contains("duplicate key `a`"), "{e}");
        assert_eq!(e.pos.line, 2);
        let e = parse("a: 1\n  b: 2\n").unwrap_err();
        assert!(e.detail.contains("unexpected indentation"), "{e}");
        assert!(parse("").is_err());
        assert!(parse("a: \"unterminated\n").is_err());
        assert!(parse("a: [1, [2]]\n").is_err());
    }

    #[test]
    fn quoting_and_escapes() {
        let doc = parse("a: \"x\\n\\\"y\\\"\"\nb: 'lit'\nc: 5\n").unwrap();
        assert_eq!(scalar(doc.get("a").unwrap()), "x\n\"y\"");
        let (b, q) = doc.get("b").unwrap().scalar().unwrap();
        assert_eq!((b, q), ("lit", true));
        let (c, q) = doc.get("c").unwrap().scalar().unwrap();
        assert_eq!((c, q), ("5", false));
    }

    #[test]
    fn dash_block_items_and_empty_values() {
        let doc = parse(
            "items:\n\
             \x20 -\n\
             \x20   op: a\n\
             \x20 - plain\n\
             empty:\n",
        )
        .unwrap();
        let items = doc.get("items").unwrap().list().unwrap();
        assert_eq!(scalar(items[0].get("op").unwrap()), "a");
        assert_eq!(scalar(&items[1]), "plain");
        assert_eq!(scalar(doc.get("empty").unwrap()), "");
    }
}
