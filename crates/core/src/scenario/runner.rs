//! Scenario execution: one engine per scenario, one adapter per
//! runner kind, uniform outcome collection and expectation checking.
//!
//! Every scenario runs on a fresh [`Tesla`] engine in log-and-continue
//! mode with telemetry on — log mode so a violating timeline runs to
//! completion and the scenario can pin the *full* violation set, and
//! telemetry because the transition-weight tables it maintains are the
//! coverage signal `tesla scenario fuzz` feeds on. Fault plans from
//! the `faults:` block attach exactly like the CLI `--faults` flag.

use super::schema::{RunnerKind, Scenario, Verdict};
use std::path::Path;
use std::sync::Arc;
use tesla_automata::CoverageMap;
use tesla_runtime::scenario::{sort_timeline, step_to_event, Step};
use tesla_runtime::{
    BufferedSource, Config, DriveError, FailMode, FaultPlan, JsonlSource, Tesla, Violation,
    ViolationKind,
};
use tesla_sim_gui::appkit::GuiBugs;
use tesla_sim_gui::scenario::GuiScenario;
use tesla_sim_kernel::scenario::KernelScenario;
use tesla_sim_kernel::Bugs;
use tesla_sim_ssl::scenario::SslScenario;
use tesla_workload::scenario::WorkloadScenario;

/// Everything observable about one scenario execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Violations recorded by the engine (plus any stream-aborting
    /// unknown-name violation).
    pub violations: Vec<Violation>,
    /// Adapter notes, one line per observable effect.
    pub notes: Vec<String>,
    /// Lifecycle events dispatched (the engine's `events_total`).
    pub events: u64,
    /// Transition coverage reached by this run.
    pub coverage: CoverageMap,
    /// For `minic` record→replay: whether the replayed verdicts and
    /// event totals matched the live run.
    pub replay_matches: Option<bool>,
    /// For fault-injected runs: whether the injected/absorbed ledger
    /// balanced.
    pub ledger_balanced: Option<bool>,
}

/// The label `expect.codes` uses for a violation kind.
pub fn kind_code(kind: &ViolationKind) -> &'static str {
    match kind {
        ViolationKind::Site => "site",
        ViolationKind::Cleanup => "cleanup",
        ViolationKind::Strict => "strict",
        ViolationKind::UnknownName => "unknown-name",
    }
}

fn engine_for(sc: &Scenario) -> Result<Arc<Tesla>, String> {
    let mut config = Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        ..Config::default()
    };
    if let Some(f) = &sc.faults {
        if f.spec.period(tesla_runtime::FaultKind::HandlerPanic) != 0 {
            tesla_runtime::faults::silence_injected_panics();
        }
        config.faults = Some(Arc::new(FaultPlan::new(f.seed, f.spec)));
    }
    Tesla::try_new(config)
        .map(Arc::new)
        .map_err(|e| format!("engine config: {e}"))
}

fn sorted_timeline(sc: &Scenario) -> Vec<Step> {
    let mut steps = sc.timeline.clone();
    sort_timeline(&mut steps);
    steps
}

fn str_list(sc: &Scenario, key: &str) -> Result<Vec<String>, String> {
    match sc.config.iter().find(|(k, _)| k == key) {
        None => Ok(Vec::new()),
        Some((_, v)) => match v {
            tesla_runtime::ArgValue::Str(s) => Ok(vec![s.clone()]),
            tesla_runtime::ArgValue::List(items) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("config `{key}` must be a list of strings"))
                })
                .collect(),
            _ => Err(format!("config `{key}` must be a list of strings")),
        },
    }
}

fn config_bool(sc: &Scenario, key: &str, default: bool) -> Result<bool, String> {
    match sc.config.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, v)) => v
            .as_bool()
            .ok_or_else(|| format!("config `{key}` must be a boolean")),
    }
}

fn config_int(sc: &Scenario, key: &str, default: i64) -> Result<i64, String> {
    match sc.config.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, v)) => v
            .as_int()
            .ok_or_else(|| format!("config `{key}` must be an integer")),
    }
}

fn config_str<'a>(sc: &'a Scenario, key: &str, default: &'a str) -> Result<&'a str, String> {
    match sc.config.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, v)) => v
            .as_str()
            .ok_or_else(|| format!("config `{key}` must be a string")),
    }
}

fn kernel_bugs(labels: &[String]) -> Result<Bugs, String> {
    let mut bugs = Bugs::default();
    for l in labels {
        match l.as_str() {
            "kqueue_skips_mac_poll" => bugs.kqueue_skips_mac_poll = true,
            "poll_passes_file_cred" => bugs.poll_passes_file_cred = true,
            "setuid_skips_sugid" => bugs.setuid_skips_sugid = true,
            other => return Err(format!("unknown kernel bug `{other}`")),
        }
    }
    Ok(bugs)
}

fn gui_bugs(labels: &[String]) -> Result<GuiBugs, String> {
    let mut bugs = GuiBugs::default();
    for l in labels {
        match l.as_str() {
            "duplicate_cursor_push" => bugs.duplicate_cursor_push = true,
            "backend_lifo_only" => bugs.backend_lifo_only = true,
            other => return Err(format!("unknown gui bug `{other}`")),
        }
    }
    Ok(bugs)
}

/// Execute a scenario. `base_dir` anchors relative paths in the
/// config (`minic` source files).
///
/// # Errors
///
/// A setup or step error — the scenario could not be *executed*
/// (unknown op, unbound handle, unreadable file), as opposed to
/// executing with an unexpected outcome.
pub fn run_scenario(sc: &Scenario, base_dir: &Path) -> Result<RunOutcome, String> {
    // Scenarios run back to back in one process: clear the per-thread
    // shadow call stack so a previous scenario's unbalanced entry
    // can't leak scope state into this one.
    tesla_runtime::engine::reset_thread_state();
    let engine = engine_for(sc)?;
    let steps = sorted_timeline(sc);
    let mut notes: Vec<String> = Vec::new();
    let mut extra_violations: Vec<Violation> = Vec::new();
    let mut replay_matches = None;

    match sc.runner {
        RunnerKind::Spec => {
            let assertions = str_list(sc, "assertions")?;
            if assertions.is_empty() {
                return Err("spec runner: config `assertions` must list at least one assertion"
                    .to_string());
            }
            for src in &assertions {
                let a = tesla_spec::parse_assertion(src)
                    .map_err(|e| format!("assertion `{src}`: {e}"))?;
                engine
                    .register_assertion(&a)
                    .map_err(|e| format!("assertion `{src}`: {e}"))?;
            }
            let events = steps
                .iter()
                .map(step_to_event)
                .collect::<Result<Vec<_>, String>>()?;
            let mut source = BufferedSource::new(events);
            match engine.drive(&mut source) {
                Ok(stats) => notes.push(format!("drive: {} events", stats.events)),
                Err(DriveError::Event {
                    seq, violation, ..
                }) => {
                    notes.push(format!("drive aborted at event {seq}: {violation}"));
                    extra_violations.push(violation);
                }
                Err(DriveError::Source(e, _)) => return Err(format!("drive: {e}")),
            }
        }
        RunnerKind::SimSsl => {
            let mut world = SslScenario::new(Some(engine.clone()));
            for step in &steps {
                world.step(step)?;
            }
            notes.append(&mut world.notes);
        }
        RunnerKind::SimKernel => {
            let sets = str_list(sc, "sets")?;
            let set_refs: Vec<&str> = sets.iter().map(String::as_str).collect();
            let sites = KernelScenario::register_sets_by_label(&engine, &set_refs)?;
            let bugs = kernel_bugs(&str_list(sc, "bugs")?)?;
            let debug_checks = config_bool(sc, "debug_checks", false)?;
            let mut world =
                KernelScenario::new(bugs, debug_checks, Some((engine.clone(), sites)));
            for step in &steps {
                world.step(step)?;
            }
            notes.append(&mut world.notes);
        }
        RunnerKind::SimGui => {
            let bugs = gui_bugs(&str_list(sc, "bugs")?)?;
            let mut world = GuiScenario::new(Some(engine.clone()), bugs);
            for step in &steps {
                world.step(step)?;
            }
            world.finish();
            notes.append(&mut world.notes);
        }
        RunnerKind::Workload => {
            let sets = str_list(sc, "sets")?;
            let set_refs: Vec<&str> = sets.iter().map(String::as_str).collect();
            let sites = KernelScenario::register_sets_by_label(&engine, &set_refs)?;
            let mut world = WorkloadScenario::new(Some((engine.clone(), sites)));
            for step in &steps {
                world.step(step)?;
            }
            notes.append(&mut world.notes);
        }
        RunnerKind::Minic => {
            replay_matches = run_minic(sc, base_dir, &engine, &mut notes)?;
        }
    }

    let mut violations = engine.violations();
    violations.extend(extra_violations);
    let ledger_balanced = engine.fault_plan().map(|plan| {
        let ledger = plan.ledger();
        notes.push(ledger.render());
        ledger.balanced()
    });
    Ok(RunOutcome {
        violations,
        notes,
        events: engine.metrics().events_total(),
        coverage: engine.metrics().coverage_map(),
        replay_matches,
        ledger_balanced,
    })
}

/// The `minic` runner: build the configured mini-C project, run it
/// live (optionally recording), and — in `record-replay` mode —
/// replay the trace into a second engine and compare verdicts.
fn run_minic(
    sc: &Scenario,
    base_dir: &Path,
    engine: &Arc<Tesla>,
    notes: &mut Vec<String>,
) -> Result<Option<bool>, String> {
    use crate::pipeline::{BuildOptions, BuildSystem, Project};

    let files = str_list(sc, "files")?;
    if files.is_empty() {
        return Err("minic runner: config `files` must list at least one source".to_string());
    }
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        let path = base_dir.join(f);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push((f.clone(), text));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let project = Project::from_sources(&refs);
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    let artifacts = bs.build().map_err(|e| e.to_string())?;

    let entry = config_str(sc, "entry", "main")?;
    let args: Vec<i64> = match sc.config.iter().find(|(k, _)| k == "args") {
        None => Vec::new(),
        Some((_, v)) => match v {
            tesla_runtime::ArgValue::List(items) => items
                .iter()
                .map(|i| {
                    i.as_int()
                        .ok_or_else(|| "config `args` must be a list of integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("config `args` must be a list of integers".to_string()),
        },
    };
    let fuel = config_int(sc, "fuel", 1_000_000)?.max(1) as u64;
    let mode = config_str(sc, "mode", "run")?;

    match mode {
        "run" => {
            match crate::pipeline::run_with_tesla(&artifacts, engine, entry, &args, fuel) {
                Ok(ret) => notes.push(format!("run: returned {ret}")),
                Err(e) => notes.push(format!("run: {e}")),
            }
            Ok(None)
        }
        "record-replay" => {
            let mut trace: Vec<u8> = Vec::new();
            match crate::pipeline::run_with_tesla_recorded(
                &artifacts, engine, entry, &args, fuel, &mut trace,
            ) {
                Ok(ret) => notes.push(format!("run: returned {ret}")),
                Err(e) => notes.push(format!("run: {e}")),
            }
            // Fresh engine, same config shape: the replayed world.
            let replay_engine = engine_for(sc)?;
            let mut source = JsonlSource::new(trace.as_slice());
            match crate::pipeline::replay_with_tesla(&artifacts, &replay_engine, &mut source) {
                Ok(stats) => notes.push(format!("replay: {} events", stats.events)),
                Err(e) => notes.push(format!("replay: {e}")),
            }
            let live: Vec<String> = engine.violations().iter().map(|v| v.to_string()).collect();
            let replayed: Vec<String> = replay_engine
                .violations()
                .iter()
                .map(|v| v.to_string())
                .collect();
            let matches = live == replayed
                && engine.metrics().events_total() == replay_engine.metrics().events_total();
            notes.push(format!(
                "replay match: {} ({} live / {} replayed violations)",
                matches,
                live.len(),
                replayed.len()
            ));
            Ok(Some(matches))
        }
        other => Err(format!(
            "minic runner: unknown mode `{other}` (expected run or record-replay)"
        )),
    }
}

/// Check a run outcome against a scenario's expectations. Returns the
/// failure descriptions, empty when the scenario passed.
pub fn check_expectations(sc: &Scenario, out: &RunOutcome) -> Vec<String> {
    let mut failures = Vec::new();
    let e = &sc.expect;
    match e.verdict {
        Verdict::Pass => {
            if !out.violations.is_empty() {
                failures.push(format!(
                    "expected verdict pass, got {} violation(s): {}",
                    out.violations.len(),
                    out.violations[0]
                ));
            }
        }
        Verdict::Violation => {
            if out.violations.is_empty() {
                failures.push("expected verdict violation, got none".to_string());
            }
        }
    }
    if let Some(n) = e.violations {
        if out.violations.len() as u64 != n {
            failures.push(format!(
                "expected exactly {n} violation(s), got {}",
                out.violations.len()
            ));
        }
    }
    for code in &e.codes {
        if !out.violations.iter().any(|v| kind_code(&v.kind) == code) {
            failures.push(format!("expected a `{code}` violation, none recorded"));
        }
    }
    if let Some(substr) = &e.assertion {
        if !out.violations.iter().any(|v| v.assertion.contains(substr)) {
            failures.push(format!(
                "expected a violation of an assertion matching `{substr}`"
            ));
        }
    }
    if let Some(min) = e.events_min {
        if out.events < min {
            failures.push(format!("expected at least {min} events, got {}", out.events));
        }
    }
    if let Some(max) = e.events_max {
        if out.events > max {
            failures.push(format!("expected at most {max} events, got {}", out.events));
        }
    }
    if let Some(expected) = e.replay_matches {
        match out.replay_matches {
            None => failures.push("expected a record→replay comparison, none ran".to_string()),
            Some(actual) if actual != expected => {
                failures.push(format!(
                    "expected replay_matches {expected}, got {actual}"
                ));
            }
            _ => {}
        }
    }
    if let Some(expected) = e.ledger_balanced {
        match out.ledger_balanced {
            None => failures.push("expected a fault ledger, no faults configured".to_string()),
            Some(actual) if actual != expected => {
                failures.push(format!(
                    "expected ledger_balanced {expected}, got {actual}"
                ));
            }
            _ => {}
        }
    }
    for want in &e.notes_contain {
        if !out.notes.iter().any(|n| n.contains(want)) {
            failures.push(format!("expected a note containing `{want}`"));
        }
    }
    failures
}

/// One scenario's reportable result.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario name.
    pub name: String,
    /// Source file, when loaded from disk.
    pub file: Option<String>,
    /// Expectation failures (or the setup/step error); empty = ok.
    pub failures: Vec<String>,
    /// Adapter notes.
    pub notes: Vec<String>,
    /// Coverage reached (empty for scenarios that failed setup).
    pub coverage: CoverageMap,
}

impl ScenarioResult {
    /// Did the scenario pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run one scenario and check its expectations.
pub fn run_and_check(sc: &Scenario, base_dir: &Path) -> ScenarioResult {
    match run_scenario(sc, base_dir) {
        Ok(out) => ScenarioResult {
            name: sc.name.clone(),
            file: None,
            failures: check_expectations(sc, &out),
            notes: out.notes,
            coverage: out.coverage,
        },
        Err(e) => ScenarioResult {
            name: sc.name.clone(),
            file: None,
            failures: vec![format!("scenario could not run: {e}")],
            notes: Vec::new(),
            coverage: CoverageMap::new(),
        },
    }
}
