//! The versioned scenario schema: typed view over a parsed YAML
//! document, plus the canonical serialisation the fuzzer uses to save
//! minimised corpus scenarios.
//!
//! A scenario file is a map with a `tesla_scenario: 1` version
//! header, a `name`, a `runner`, an optional generic `config` map, an
//! optional `faults` block (seed + a PR-5 [`FaultSpec`] string parsed
//! through the same `FromStr` as the CLI `--faults` flag), a
//! `timeline` of steps and an `expect` block. Parsing reuses the
//! positioned [`YamlError`] diagnostics, so a schema violation points
//! at the offending line exactly like a syntax error does.

use super::yaml::{Node, Pos, Spanned, YamlError};
use tesla_runtime::scenario::{ArgValue, Step};
use tesla_runtime::FaultSpec;

/// Which substrate executes the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerKind {
    /// Raw ingress events against assertions from `config.assertions`.
    Spec,
    /// The fig. 6 OpenSSL/libfetch world.
    SimSsl,
    /// The §3.5.2 FreeBSD/MAC kernel.
    SimKernel,
    /// The §3.5.3 GNUstep app.
    SimGui,
    /// The §5 workload generators.
    Workload,
    /// The mini-C pipeline (build → run/record → replay).
    Minic,
}

impl RunnerKind {
    /// The `runner:` label.
    pub fn label(self) -> &'static str {
        match self {
            RunnerKind::Spec => "spec",
            RunnerKind::SimSsl => "sim-ssl",
            RunnerKind::SimKernel => "sim-kernel",
            RunnerKind::SimGui => "sim-gui",
            RunnerKind::Workload => "workload",
            RunnerKind::Minic => "minic",
        }
    }

    fn parse(label: &str, pos: Pos) -> Result<RunnerKind, YamlError> {
        match label {
            "spec" => Ok(RunnerKind::Spec),
            "sim-ssl" => Ok(RunnerKind::SimSsl),
            "sim-kernel" => Ok(RunnerKind::SimKernel),
            "sim-gui" => Ok(RunnerKind::SimGui),
            "workload" => Ok(RunnerKind::Workload),
            "minic" => Ok(RunnerKind::Minic),
            other => Err(YamlError::new(
                pos,
                format!(
                    "unknown runner `{other}` (expected spec, sim-ssl, sim-kernel, \
                     sim-gui, workload or minic)"
                ),
            )),
        }
    }
}

/// Injected faults: a seed plus a [`FaultSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultsCfg {
    /// Deterministic PRNG seed for the fault plan.
    pub seed: u64,
    /// The parsed spec.
    pub spec: FaultSpec,
}

/// Expected outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expect {
    /// `pass` (no violations) or `violation` (at least one).
    pub verdict: Verdict,
    /// Exact violation count, when pinned.
    pub violations: Option<u64>,
    /// Violation kinds that must each appear at least once
    /// (`site`, `cleanup`, `strict`, `unknown-name`).
    pub codes: Vec<String>,
    /// A substring every scenario violation's assertion name must be
    /// matched by at least once.
    pub assertion: Option<String>,
    /// Lower bound on dispatched events (a metric bound).
    pub events_min: Option<u64>,
    /// Upper bound on dispatched events.
    pub events_max: Option<u64>,
    /// For `minic` record→replay scenarios: replayed verdicts and
    /// counters must match the live run byte for byte.
    pub replay_matches: Option<bool>,
    /// For fault-injected scenarios: the injected/absorbed ledger
    /// must balance.
    pub ledger_balanced: Option<bool>,
    /// Substrings that must each appear in at least one adapter note
    /// — the hook for outcomes that are observable but not violations
    /// (an errno the MAC framework returned, an unbalanced cursor
    /// stack the tracing automaton records without failing).
    pub notes_contain: Vec<String>,
}

/// The expected verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// No violations recorded.
    #[default]
    Pass,
    /// At least one violation recorded.
    Violation,
}

impl Verdict {
    /// The `verdict:` label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Violation => "violation",
        }
    }
}

/// A parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Test-point name (the TAP description).
    pub name: String,
    /// Optional human description.
    pub description: Option<String>,
    /// The substrate.
    pub runner: RunnerKind,
    /// Runner-specific configuration in written order.
    pub config: Vec<(String, ArgValue)>,
    /// Injected faults, if any.
    pub faults: Option<FaultsCfg>,
    /// The timeline.
    pub timeline: Vec<Step>,
    /// Expected outcome.
    pub expect: Expect,
    /// Whether the fuzzer may use this scenario as a mutation
    /// substrate (default true; `minic` scenarios default false —
    /// building a project per mutant is too slow for a fuzz loop).
    pub fuzz: bool,
}

/// The schema version this build reads and writes.
pub const VERSION: u32 = 1;

fn scalar<'a>(node: &'a Spanned, what: &str) -> Result<(&'a str, bool), YamlError> {
    node.scalar()
        .ok_or_else(|| YamlError::new(node.pos, format!("{what} must be a scalar")))
}

fn int_scalar(node: &Spanned, what: &str) -> Result<i64, YamlError> {
    let (text, _) = scalar(node, what)?;
    text.parse()
        .map_err(|_| YamlError::new(node.pos, format!("{what} must be an integer, got `{text}`")))
}

fn arg_value(node: &Spanned) -> Result<ArgValue, YamlError> {
    match &node.node {
        Node::Scalar { text, quoted } => Ok(typed_scalar(text, *quoted)),
        Node::List(items) => {
            let mut out = Vec::new();
            for item in items {
                out.push(arg_value(item)?);
            }
            Ok(ArgValue::List(out))
        }
        Node::Map(_) => Err(YamlError::new(
            node.pos,
            "nested maps are not allowed as argument values",
        )),
    }
}

/// Type a bare scalar: bools and integers stay typed, everything else
/// (and anything quoted) is a string.
fn typed_scalar(text: &str, quoted: bool) -> ArgValue {
    if !quoted {
        if text == "true" {
            return ArgValue::Bool(true);
        }
        if text == "false" {
            return ArgValue::Bool(false);
        }
        if let Ok(v) = text.parse::<i64>() {
            return ArgValue::Int(v);
        }
    }
    ArgValue::Str(text.to_string())
}

fn parse_step(item: &Spanned) -> Result<Step, YamlError> {
    let entries = item
        .map()
        .ok_or_else(|| YamlError::new(item.pos, "timeline entry must be a map"))?;
    let mut step = Step::new("");
    let mut have_op = false;
    for (key, value) in entries {
        match key.as_str() {
            "op" => {
                step.op = scalar(value, "`op`")?.0.to_string();
                have_op = true;
            }
            "at" => {
                let v = int_scalar(value, "`at`")?;
                step.at = Some(u64::try_from(v).map_err(|_| {
                    YamlError::new(value.pos, format!("`at` must be non-negative, got {v}"))
                })?);
            }
            "thread" => {
                let v = int_scalar(value, "`thread`")?;
                step.thread = Some(u64::try_from(v).map_err(|_| {
                    YamlError::new(value.pos, format!("`thread` must be non-negative, got {v}"))
                })?);
            }
            _ => step.args.push((key.clone(), arg_value(value)?)),
        }
    }
    if !have_op || step.op.is_empty() {
        return Err(YamlError::new(item.pos, "timeline entry needs an `op`"));
    }
    Ok(step)
}

fn parse_expect(node: &Spanned) -> Result<Expect, YamlError> {
    let entries = node
        .map()
        .ok_or_else(|| YamlError::new(node.pos, "`expect` must be a map"))?;
    let mut e = Expect::default();
    for (key, value) in entries {
        match key.as_str() {
            "verdict" => {
                e.verdict = match scalar(value, "`verdict`")?.0 {
                    "pass" => Verdict::Pass,
                    "violation" => Verdict::Violation,
                    other => {
                        return Err(YamlError::new(
                            value.pos,
                            format!("unknown verdict `{other}` (expected pass or violation)"),
                        ))
                    }
                };
            }
            "violations" => {
                let v = int_scalar(value, "`violations`")?;
                e.violations = Some(u64::try_from(v).map_err(|_| {
                    YamlError::new(value.pos, "`violations` must be non-negative".to_string())
                })?);
            }
            "codes" => {
                let items = value
                    .list()
                    .ok_or_else(|| YamlError::new(value.pos, "`codes` must be a list"))?;
                for item in items {
                    let (code, _) = scalar(item, "violation code")?;
                    match code {
                        "site" | "cleanup" | "strict" | "unknown-name" => {
                            e.codes.push(code.to_string())
                        }
                        other => {
                            return Err(YamlError::new(
                                item.pos,
                                format!(
                                    "unknown violation code `{other}` (expected site, \
                                     cleanup, strict or unknown-name)"
                                ),
                            ))
                        }
                    }
                }
            }
            "assertion" => e.assertion = Some(scalar(value, "`assertion`")?.0.to_string()),
            "events_min" => {
                e.events_min = Some(int_scalar(value, "`events_min`")?.max(0) as u64)
            }
            "events_max" => {
                e.events_max = Some(int_scalar(value, "`events_max`")?.max(0) as u64)
            }
            "replay_matches" => e.replay_matches = Some(bool_scalar(value, "`replay_matches`")?),
            "ledger_balanced" => {
                e.ledger_balanced = Some(bool_scalar(value, "`ledger_balanced`")?)
            }
            "notes_contain" => {
                let items = value
                    .list()
                    .ok_or_else(|| YamlError::new(value.pos, "`notes_contain` must be a list"))?;
                for item in items {
                    let (s, _) = scalar(item, "note substring")?;
                    e.notes_contain.push(s.to_string());
                }
            }
            other => {
                return Err(YamlError::new(
                    value.pos,
                    format!("unknown expect key `{other}`"),
                ))
            }
        }
    }
    Ok(e)
}

fn bool_scalar(node: &Spanned, what: &str) -> Result<bool, YamlError> {
    match scalar(node, what)?.0 {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(YamlError::new(
            node.pos,
            format!("{what} must be true or false, got `{other}`"),
        )),
    }
}

/// Parse a scenario document.
///
/// # Errors
///
/// A positioned [`YamlError`]: syntax errors from the YAML layer,
/// schema violations (missing/unknown keys, bad version) from this
/// one — callers cannot tell the difference, which is the point.
pub fn parse_scenario(src: &str) -> Result<Scenario, YamlError> {
    let doc = super::yaml::parse(src)?;
    let entries = doc.map().expect("yaml::parse returns a map");

    // Version header first, like the trace format: refuse documents
    // from the future before complaining about anything else.
    let version = doc.get("tesla_scenario").ok_or_else(|| {
        YamlError::new(doc.pos, "missing `tesla_scenario: 1` version header")
    })?;
    let v = int_scalar(version, "`tesla_scenario`")?;
    if v != VERSION as i64 {
        return Err(YamlError::new(
            version.pos,
            format!("unsupported scenario version {v}; this build speaks version {VERSION}"),
        ));
    }

    let mut name = None;
    let mut description = None;
    let mut runner = None;
    let mut config = Vec::new();
    let mut faults = None;
    let mut timeline = Vec::new();
    let mut expect = None;
    let mut fuzz = None;

    for (key, value) in entries {
        match key.as_str() {
            "tesla_scenario" => {}
            "name" => name = Some(scalar(value, "`name`")?.0.to_string()),
            "description" => description = Some(scalar(value, "`description`")?.0.to_string()),
            "runner" => runner = Some(RunnerKind::parse(scalar(value, "`runner`")?.0, value.pos)?),
            "config" => {
                let entries = value
                    .map()
                    .ok_or_else(|| YamlError::new(value.pos, "`config` must be a map"))?;
                for (k, v) in entries {
                    config.push((k.clone(), arg_value(v)?));
                }
            }
            "faults" => {
                let seed = value
                    .get("seed")
                    .map(|n| int_scalar(n, "`faults.seed`"))
                    .transpose()?
                    .unwrap_or(42);
                let spec_node = value.get("spec").ok_or_else(|| {
                    YamlError::new(value.pos, "`faults` needs a `spec` string")
                })?;
                let (spec_text, _) = scalar(spec_node, "`faults.spec`")?;
                // The same FromStr as the CLI --faults flag: identical
                // strictness for embedded specs.
                let spec: FaultSpec = spec_text
                    .parse()
                    .map_err(|e| YamlError::new(spec_node.pos, e))?;
                faults = Some(FaultsCfg {
                    seed: seed.max(0) as u64,
                    spec,
                });
            }
            "timeline" => {
                let items = value
                    .list()
                    .ok_or_else(|| YamlError::new(value.pos, "`timeline` must be a list"))?;
                for item in items {
                    timeline.push(parse_step(item)?);
                }
            }
            "expect" => expect = Some(parse_expect(value)?),
            "fuzz" => fuzz = Some(bool_scalar(value, "`fuzz`")?),
            other => {
                return Err(YamlError::new(
                    value.pos,
                    format!("unknown scenario key `{other}`"),
                ))
            }
        }
    }

    let runner = runner.ok_or_else(|| YamlError::new(doc.pos, "missing `runner`"))?;
    Ok(Scenario {
        name: name.ok_or_else(|| YamlError::new(doc.pos, "missing `name`"))?,
        description,
        runner,
        config,
        faults,
        timeline,
        expect: expect.ok_or_else(|| YamlError::new(doc.pos, "missing `expect` block"))?,
        fuzz: fuzz.unwrap_or(runner != RunnerKind::Minic),
    })
}

// ---------------------------------------------------------------
// Canonical serialisation (the save format for fuzz corpus output).
// ---------------------------------------------------------------

/// Quote a string when a bare rendering would re-type or mis-parse it.
fn render_str(s: &str) -> String {
    let needs_quotes = s.is_empty()
        || s.parse::<i64>().is_ok()
        || s == "true"
        || s == "false"
        || s.starts_with(['\'', '"', '[', '{', '-', ' '])
        || s.ends_with(' ')
        || s.chars().any(|c| "#:,]}\n\t".contains(c));
    if needs_quotes {
        let mut out = String::from("\"");
        for c in s.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

fn render_value(v: &ArgValue) -> String {
    match v {
        ArgValue::Int(i) => i.to_string(),
        ArgValue::Bool(b) => b.to_string(),
        ArgValue::Str(s) => render_str(s),
        ArgValue::List(items) => {
            let parts: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", parts.join(", "))
        }
    }
}

/// Render a scenario in canonical form: stable key order, canonical
/// quoting — byte-identical output for equal scenarios, which is what
/// the fuzz determinism check diffs.
pub fn render_scenario(sc: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!("tesla_scenario: {VERSION}\n"));
    out.push_str(&format!("name: {}\n", render_str(&sc.name)));
    if let Some(d) = &sc.description {
        out.push_str(&format!("description: {}\n", render_str(d)));
    }
    out.push_str(&format!("runner: {}\n", sc.runner.label()));
    if !sc.config.is_empty() {
        out.push_str("config:\n");
        for (k, v) in &sc.config {
            out.push_str(&format!("  {}: {}\n", render_str(k), render_value(v)));
        }
    }
    if let Some(f) = &sc.faults {
        out.push_str("faults:\n");
        out.push_str(&format!("  seed: {}\n", f.seed));
        out.push_str(&format!("  spec: {}\n", render_str(&f.spec.to_string())));
    }
    if sc.fuzz != (sc.runner != RunnerKind::Minic) {
        out.push_str(&format!("fuzz: {}\n", sc.fuzz));
    }
    // A bare `timeline:` key with no items does not reparse as a
    // list, so timeline-free scenarios (minic) omit the section.
    if !sc.timeline.is_empty() {
        out.push_str("timeline:\n");
    }
    for step in &sc.timeline {
        out.push_str(&format!("  - op: {}\n", render_str(&step.op)));
        if let Some(at) = step.at {
            out.push_str(&format!("    at: {at}\n"));
        }
        if let Some(t) = step.thread {
            out.push_str(&format!("    thread: {t}\n"));
        }
        for (k, v) in &step.args {
            out.push_str(&format!("    {}: {}\n", render_str(k), render_value(v)));
        }
    }
    out.push_str("expect:\n");
    out.push_str(&format!("  verdict: {}\n", sc.expect.verdict.label()));
    if let Some(n) = sc.expect.violations {
        out.push_str(&format!("  violations: {n}\n"));
    }
    if !sc.expect.codes.is_empty() {
        let parts: Vec<String> = sc.expect.codes.iter().map(|c| render_str(c)).collect();
        out.push_str(&format!("  codes: [{}]\n", parts.join(", ")));
    }
    if let Some(a) = &sc.expect.assertion {
        out.push_str(&format!("  assertion: {}\n", render_str(a)));
    }
    if let Some(v) = sc.expect.events_min {
        out.push_str(&format!("  events_min: {v}\n"));
    }
    if let Some(v) = sc.expect.events_max {
        out.push_str(&format!("  events_max: {v}\n"));
    }
    if let Some(v) = sc.expect.replay_matches {
        out.push_str(&format!("  replay_matches: {v}\n"));
    }
    if let Some(v) = sc.expect.ledger_balanced {
        out.push_str(&format!("  ledger_balanced: {v}\n"));
    }
    if !sc.expect.notes_contain.is_empty() {
        let parts: Vec<String> = sc
            .expect
            .notes_contain
            .iter()
            .map(|s| render_str(s))
            .collect();
        out.push_str(&format!("  notes_contain: [{}]\n", parts.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL_SRC: &str = "\
tesla_scenario: 1
name: kevent-mac-bypass
description: kqueue path skips mac_socket_check_poll
runner: sim-kernel
config:
  bugs: [kqueue_skips_mac_poll]
  sets: [ms]
faults:
  seed: 7
  spec: drop=16
timeline:
  - op: socketpair
  - op: kevent
    at: 3
    fd: cli
expect:
  verdict: violation
  violations: 1
  codes: [site]
  assertion: socket/poll
";

    #[test]
    fn parses_and_round_trips() {
        let sc = parse_scenario(KERNEL_SRC).unwrap();
        assert_eq!(sc.name, "kevent-mac-bypass");
        assert_eq!(sc.runner, RunnerKind::SimKernel);
        assert_eq!(sc.timeline.len(), 2);
        assert_eq!(sc.timeline[1].op, "kevent");
        assert_eq!(sc.timeline[1].at, Some(3));
        assert_eq!(sc.timeline[1].str_arg("fd").unwrap(), "cli");
        assert_eq!(sc.expect.verdict, Verdict::Violation);
        assert_eq!(sc.expect.violations, Some(1));
        assert_eq!(sc.faults.as_ref().unwrap().seed, 7);
        assert!(sc.fuzz);

        // Canonical render → reparse → identical scenario and render.
        let rendered = render_scenario(&sc);
        let sc2 = parse_scenario(&rendered).unwrap();
        assert_eq!(sc, sc2);
        assert_eq!(rendered, render_scenario(&sc2));
    }

    #[test]
    fn version_gate_and_schema_errors_are_positioned() {
        let e = parse_scenario("tesla_scenario: 2\nname: x\nrunner: spec\nexpect:\n  verdict: pass\n")
            .unwrap_err();
        assert!(e.detail.contains("unsupported scenario version 2"), "{e}");
        assert_eq!(e.pos.line, 1);

        let e = parse_scenario(
            "tesla_scenario: 1\nname: x\nrunner: warp\nexpect:\n  verdict: pass\n",
        )
        .unwrap_err();
        assert!(e.detail.contains("unknown runner `warp`"), "{e}");
        assert_eq!(e.pos.line, 3);

        let e = parse_scenario(
            "tesla_scenario: 1\nname: x\nrunner: spec\ntimeline:\n  - at: 3\nexpect:\n  verdict: pass\n",
        )
        .unwrap_err();
        assert!(e.detail.contains("needs an `op`"), "{e}");
        assert_eq!(e.pos.line, 5);
    }

    #[test]
    fn fault_spec_strictness_matches_cli() {
        let e = parse_scenario(
            "tesla_scenario: 1\nname: x\nrunner: spec\nfaults:\n  spec: \"panic=1,panic=2\"\nexpect:\n  verdict: pass\n",
        )
        .unwrap_err();
        assert!(e.detail.contains("duplicate fault kind `panic`"), "{e}");
        assert_eq!(e.pos.line, 5);
    }
}
