//! Coverage-guided scenario fuzzing: `tesla scenario fuzz`.
//!
//! The corpus scenarios are the seeds. A deterministic splitmix64
//! mutator perturbs their timelines (swap / drop / duplicate /
//! retime events, nudge argument values) and fault plans (reseed,
//! change periods); each mutant runs on a fresh engine and its
//! transition coverage — the PR-3 weight tables exported as a
//! [`CoverageMap`] — is compared against the union reached so far.
//! Mutants that light up an uncovered `(class, state, symbol)` cell
//! or produce a violation signature no seed produces are *interesting*:
//! they get ddmin-minimised (smallest sub-timeline preserving the
//! novelty), their expectations are recomputed from the minimised
//! run, and they are rendered back to canonical YAML as replayable
//! corpus members.
//!
//! Everything is a pure function of `(corpus, seed, iteration
//! budget)`: same inputs, byte-identical saved scenarios. The wall
//! clock budget only ever *truncates* the iteration sequence, so a
//! generous budget never changes what an earlier iteration saves.

use super::runner::{kind_code, run_scenario, RunOutcome};
use super::schema::{render_scenario, Expect, RunnerKind, Scenario, Verdict};
use std::path::Path;
use std::time::Instant;
use tesla_automata::CoverageMap;
use tesla_runtime::scenario::Step;
use tesla_runtime::ArgValue;

/// Deterministic splitmix64 stream (same generator the fault plans
/// use), so fuzz runs are reproducible from the seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// Fuzzing controls.
#[derive(Debug, Clone, Copy)]
pub struct FuzzParams {
    /// Mutator seed; the whole run is a function of it.
    pub seed: u64,
    /// Maximum mutants to generate.
    pub iterations: u64,
    /// Optional wall-clock cutoff; only truncates the sequence.
    pub budget_ms: Option<u64>,
}

impl Default for FuzzParams {
    fn default() -> FuzzParams {
        FuzzParams {
            seed: 1,
            iterations: 200,
            budget_ms: None,
        }
    }
}

/// One minimised, saved mutant.
#[derive(Debug, Clone)]
pub struct SavedScenario {
    /// The corpus file stem to save under (`fuzz-<seed-stem>-NNN`).
    pub name: String,
    /// The minimised scenario with recomputed expectations.
    pub scenario: Scenario,
    /// Coverage cells this mutant reaches that nothing before it did.
    pub new_cells: Vec<(String, u32, u32)>,
    /// Violation signatures nothing before it produced.
    pub novel_violations: Vec<String>,
}

/// Result of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Mutants generated.
    pub attempts: u64,
    /// Mutants that reached new coverage or novel violations.
    pub interesting: u64,
    /// Minimised scenarios worth keeping, in discovery order.
    pub saved: Vec<SavedScenario>,
    /// Seed-corpus transition coverage `(covered, total)`.
    pub baseline: (usize, usize),
    /// Coverage after fuzzing `(covered, total)`.
    pub after: (usize, usize),
}

/// A violation's novelty key: kind plus assertion name, ignoring the
/// event detail (which carries seed-dependent values).
fn signature(v: &tesla_runtime::Violation) -> String {
    format!("{}:{}", kind_code(&v.kind), v.assertion)
}

fn outcome_signatures(out: &RunOutcome) -> Vec<String> {
    let mut sigs: Vec<String> = out.violations.iter().map(signature).collect();
    sigs.sort();
    sigs.dedup();
    sigs
}

/// Recompute a scenario's expectations from an observed run, so the
/// saved mutant passes `tesla scenario run` as-is. Workload runners
/// may schedule threads differently run to run, so for them only the
/// verdict is pinned; everything else pins the exact violation set.
fn expect_from(runner: RunnerKind, out: &RunOutcome) -> Expect {
    let mut codes: Vec<String> = out
        .violations
        .iter()
        .map(|v| kind_code(&v.kind).to_string())
        .collect();
    codes.sort();
    codes.dedup();
    let exact = runner != RunnerKind::Workload;
    Expect {
        verdict: if out.violations.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Violation
        },
        violations: if exact {
            Some(out.violations.len() as u64)
        } else {
            None
        },
        codes,
        assertion: None,
        events_min: None,
        events_max: None,
        replay_matches: None,
        ledger_balanced: out.ledger_balanced,
        notes_contain: Vec::new(),
    }
}

/// Apply one random mutation to a scenario in place.
fn mutate_once(sc: &mut Scenario, rng: &mut Rng) {
    let n = sc.timeline.len();
    match rng.below(6) {
        0 if n >= 2 => {
            let i = rng.below(n as u64) as usize;
            let j = rng.below(n as u64) as usize;
            sc.timeline.swap(i, j);
        }
        1 if n >= 2 => {
            let i = rng.below(n as u64) as usize;
            sc.timeline.remove(i);
        }
        2 if n >= 1 => {
            let i = rng.below(n as u64) as usize;
            let copy = sc.timeline[i].clone();
            sc.timeline.insert(i + 1, copy);
        }
        3 if n >= 1 => {
            let i = rng.below(n as u64) as usize;
            sc.timeline[i].at = Some(rng.below(1000));
        }
        4 if n >= 1 => {
            // Nudge an integer argument somewhere in the timeline.
            let i = rng.below(n as u64) as usize;
            let step: &mut Step = &mut sc.timeline[i];
            let ints: Vec<usize> = step
                .args
                .iter()
                .enumerate()
                .filter(|(_, (_, v))| matches!(v, ArgValue::Int(_)))
                .map(|(k, _)| k)
                .collect();
            if let Some(&k) = ints.get(rng.below(ints.len() as u64) as usize) {
                if let ArgValue::Int(v) = &mut step.args[k].1 {
                    let delta = rng.below(17) as i64 - 8;
                    *v = v.saturating_add(delta);
                }
            }
        }
        _ => {
            // Perturb the fault plan when one exists; otherwise fall
            // back to retiming (keeps the mutation budget spent).
            if let Some(f) = &mut sc.faults {
                if rng.below(2) == 0 {
                    f.seed = rng.next();
                } else {
                    let kind = tesla_runtime::FaultKind::ALL
                        [rng.below(tesla_runtime::FaultKind::ALL.len() as u64) as usize];
                    f.spec = f.spec.with(kind, 1 + rng.below(64) as u32);
                }
            } else if n >= 1 {
                let i = rng.below(n as u64) as usize;
                sc.timeline[i].at = Some(rng.below(1000));
            }
        }
    }
}

/// Does this run still exhibit the recorded novelty — at least one of
/// `cells` uncovered by `union`, or one of `sigs`?
fn still_novel(
    out: &RunOutcome,
    union: &CoverageMap,
    cells: &[(String, u32, u32)],
    sigs: &[String],
) -> bool {
    let fresh = union.newly_covered(&out.coverage);
    if cells.iter().any(|c| fresh.contains(c)) {
        return true;
    }
    let got = outcome_signatures(out);
    sigs.iter().any(|s| got.contains(s))
}

/// ddmin over the timeline: find a 1-minimal sub-timeline whose run
/// still exhibits the novelty. Classic delta debugging — try chunk
/// removals at doubling granularity; every candidate is re-executed.
fn minimise(
    sc: &Scenario,
    base_dir: &Path,
    union: &CoverageMap,
    cells: &[(String, u32, u32)],
    sigs: &[String],
) -> Scenario {
    let mut best = sc.clone();
    let mut granularity: usize = 2;
    while best.timeline.len() >= 2 {
        let len = best.timeline.len();
        let chunk = (len / granularity).max(1);
        let mut reduced = false;
        let mut start = 0;
        while start < best.timeline.len() {
            let end = (start + chunk).min(best.timeline.len());
            let mut candidate = best.clone();
            candidate.timeline.drain(start..end);
            let keeps_novelty = match run_scenario(&candidate, base_dir) {
                Ok(out) => still_novel(&out, union, cells, sigs),
                Err(_) => false,
            };
            if keeps_novelty {
                best = candidate;
                reduced = true;
                // Same start index now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if reduced {
            granularity = 2;
        } else if chunk <= 1 {
            break;
        } else {
            granularity = (granularity * 2).min(best.timeline.len().max(2));
        }
    }
    best
}

/// Fuzz a corpus. `seeds` pairs each scenario with its file stem
/// (used to derive saved mutant names); `base_dir` anchors relative
/// paths exactly as `run` does.
///
/// Baseline coverage is the union over *all* seeds (including
/// non-fuzzable ones — a cell a `minic` scenario already reaches is
/// not novel); only scenarios with `fuzz: true` are mutated.
pub fn fuzz_corpus(seeds: &[(String, Scenario)], base_dir: &Path, params: FuzzParams) -> FuzzOutcome {
    let t0 = Instant::now();
    let mut union = CoverageMap::new();
    let mut known_sigs: Vec<String> = Vec::new();
    for (_, sc) in seeds {
        if let Ok(out) = run_scenario(sc, base_dir) {
            union.merge(&out.coverage);
            for s in outcome_signatures(&out) {
                if !known_sigs.contains(&s) {
                    known_sigs.push(s);
                }
            }
        }
    }
    let baseline = union.totals();

    let fuzzable: Vec<&(String, Scenario)> = seeds.iter().filter(|(_, sc)| sc.fuzz).collect();
    let mut outcome = FuzzOutcome {
        attempts: 0,
        interesting: 0,
        saved: Vec::new(),
        baseline,
        after: baseline,
    };
    if fuzzable.is_empty() {
        return outcome;
    }

    let mut rng = Rng(params.seed);
    for attempt in 0..params.iterations {
        if let Some(ms) = params.budget_ms {
            if t0.elapsed().as_millis() as u64 >= ms {
                break;
            }
        }
        outcome.attempts += 1;
        let (stem, seed_sc) = fuzzable[(attempt % fuzzable.len() as u64) as usize];
        let mut mutant = seed_sc.clone();
        for _ in 0..1 + rng.below(3) {
            mutate_once(&mut mutant, &mut rng);
        }
        let Ok(run) = run_scenario(&mutant, base_dir) else {
            continue;
        };
        let new_cells = union.newly_covered(&run.coverage);
        let novel: Vec<String> = outcome_signatures(&run)
            .into_iter()
            .filter(|s| !known_sigs.contains(s))
            .collect();
        if new_cells.is_empty() && novel.is_empty() {
            continue;
        }
        outcome.interesting += 1;

        let mut minimised = minimise(&mutant, base_dir, &union, &new_cells, &novel);
        let Ok(final_run) = run_scenario(&minimised, base_dir) else {
            continue;
        };
        // Re-derive this mutant's actual novelty from the minimised
        // run, then fold it into the frontier so later mutants must
        // find strictly more.
        let final_cells = union.newly_covered(&final_run.coverage);
        let final_novel: Vec<String> = outcome_signatures(&final_run)
            .into_iter()
            .filter(|s| !known_sigs.contains(s))
            .collect();
        union.merge(&final_run.coverage);
        for s in &final_novel {
            known_sigs.push(s.clone());
        }

        let name = format!("fuzz-{stem}-{:03}", outcome.saved.len() + 1);
        minimised.name = name.clone();
        minimised.description = Some(format!(
            "minimised mutant of `{stem}` (seed {}): {} new coverage cell(s), {} novel violation(s)",
            params.seed,
            final_cells.len(),
            final_novel.len(),
        ));
        minimised.expect = expect_from(minimised.runner, &final_run);
        outcome.saved.push(SavedScenario {
            name,
            scenario: minimised,
            new_cells: final_cells,
            novel_violations: final_novel,
        });
    }
    outcome.after = union.totals();
    outcome
}

/// Render a saved mutant to its canonical YAML (the replayable corpus
/// file content).
pub fn render_saved(saved: &SavedScenario) -> String {
    render_scenario(&saved.scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = Rng(42);
        let mut b = Rng(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn below_handles_zero() {
        let mut r = Rng(7);
        assert_eq!(r.below(0), 0);
        assert!(r.below(5) < 5);
    }

    #[test]
    fn mutations_preserve_scenario_validity() {
        let sc = super::super::schema::parse_scenario(
            "tesla_scenario: 1\nname: m\nrunner: spec\nconfig:\n  assertions:\n    - x\n\
             timeline:\n  - op: fn_entry\n    fn: foo\n  - op: fn_exit\n    fn: foo\n\
             expect:\n  verdict: pass\n",
        )
        .unwrap();
        let mut rng = Rng(3);
        for _ in 0..50 {
            let mut m = sc.clone();
            mutate_once(&mut m, &mut rng);
            // The mutated scenario must still render and re-parse.
            let text = render_scenario(&m);
            let back = super::super::schema::parse_scenario(&text).unwrap();
            assert_eq!(back.timeline.len(), m.timeline.len());
        }
    }
}
