//! TAP version 14 output for scenario runs.
//!
//! One test point per scenario; failures carry a YAML diagnostic
//! block (`---` … `...`) with the expectation failures and the
//! adapter's outcome notes, so a CI log alone is enough to see *what*
//! diverged without re-running locally.

use super::runner::ScenarioResult;

/// Escape a string for a single-line TAP description or YAML scalar.
fn clean(s: &str) -> String {
    s.chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect()
}

/// Render one double-quoted YAML scalar for the diagnostic block.
fn yaml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in clean(s).chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a full TAP version 14 document for a batch of results.
pub fn render_tap(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("TAP version 14\n");
    out.push_str(&format!("1..{}\n", results.len()));
    for (i, r) in results.iter().enumerate() {
        let point = i + 1;
        if r.ok() {
            out.push_str(&format!("ok {point} - {}\n", clean(&r.name)));
            continue;
        }
        out.push_str(&format!("not ok {point} - {}\n", clean(&r.name)));
        out.push_str("  ---\n");
        if let Some(file) = &r.file {
            out.push_str(&format!("  file: {}\n", yaml_str(file)));
        }
        out.push_str("  failures:\n");
        for f in &r.failures {
            out.push_str(&format!("    - {}\n", yaml_str(f)));
        }
        if !r.notes.is_empty() {
            out.push_str("  notes:\n");
            for n in &r.notes {
                out.push_str(&format!("    - {}\n", yaml_str(n)));
            }
        }
        out.push_str("  ...\n");
    }
    let failed = results.iter().filter(|r| !r.ok()).count();
    out.push_str(&format!(
        "# scenarios: {} run, {} passed, {failed} failed\n",
        results.len(),
        results.len() - failed,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_automata::CoverageMap;

    fn result(name: &str, failures: Vec<String>) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            file: Some(format!("{name}.yaml")),
            failures,
            notes: vec!["note one".to_string()],
            coverage: CoverageMap::new(),
        }
    }

    #[test]
    fn passing_batch_renders_plan_and_points() {
        let tap = render_tap(&[result("a", vec![]), result("b", vec![])]);
        assert!(tap.starts_with("TAP version 14\n1..2\n"));
        assert!(tap.contains("ok 1 - a\n"));
        assert!(tap.contains("ok 2 - b\n"));
        assert!(tap.contains("# scenarios: 2 run, 2 passed, 0 failed"));
        assert!(!tap.contains("not ok"));
    }

    #[test]
    fn failure_carries_yaml_diagnostics() {
        let tap = render_tap(&[result(
            "bad",
            vec!["expected verdict pass, got 1 violation(s): x".to_string()],
        )]);
        assert!(tap.contains("not ok 1 - bad\n"));
        assert!(tap.contains("  ---\n"));
        assert!(tap.contains("  file: \"bad.yaml\"\n"));
        assert!(tap.contains("expected verdict pass"));
        assert!(tap.contains("  notes:\n"));
        assert!(tap.contains("  ...\n"));
    }

    #[test]
    fn newlines_and_quotes_escaped() {
        let tap = render_tap(&[result("x", vec!["line1\nline2 \"quoted\"".to_string()])]);
        assert!(tap.contains("- \"line1 line2 \\\"quoted\\\"\""));
    }
}
