//! # Declarative scenarios — YAML timelines over every substrate
//!
//! A *scenario* is a versioned YAML file describing one end-to-end
//! check: which substrate to drive (`runner`), how to configure it
//! (assertion sets, seeded bugs, mini-C sources), an event timeline
//! (optionally timestamped and threaded), optional injected faults
//! (reusing the `--faults` grammar), and the expected outcome
//! (verdict, violation count/codes, event bounds, replay fidelity,
//! ledger balance).
//!
//! The pieces:
//!
//! * [`yaml`] — a dependency-free YAML-subset parser with positioned
//!   errors (`malformed scenario line N (byte offset M): …`),
//!   matching the ingress trace-error contract;
//! * [`schema`] — [`Scenario`] and friends: version gate, typed
//!   fields, canonical re-serialisation for corpus round-trips;
//! * [`runner`] — executes a scenario on a fresh engine in
//!   log-and-continue mode and checks expectations;
//! * [`tap`] — TAP version 14 output, one test point per scenario;
//! * [`fuzz`] — the coverage-guided timeline mutator behind
//!   `tesla scenario fuzz`.
//!
//! `tesla scenario run <dir|file>` is the CLI entry point; CI runs it
//! over `examples/scenarios/`.

pub mod fuzz;
pub mod runner;
pub mod schema;
pub mod tap;
pub mod yaml;

pub use fuzz::{fuzz_corpus, FuzzOutcome, FuzzParams};
pub use runner::{check_expectations, run_and_check, run_scenario, RunOutcome, ScenarioResult};
pub use schema::{parse_scenario, render_scenario, Expect, RunnerKind, Scenario, Verdict};
pub use tap::render_tap;
pub use yaml::YamlError;

use std::path::{Path, PathBuf};

/// Load and parse one scenario file. Errors are prefixed with the
/// file name so batch runs point at the offending file.
///
/// # Errors
///
/// Unreadable file, or a positioned parse error.
pub fn load_scenario_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_scenario(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Collect the scenario files under `path`: the file itself, or every
/// `*.yaml` / `*.yml` directly inside a directory, sorted by name so
/// batch order (and TAP point numbering) is stable.
///
/// # Errors
///
/// Unreadable directory, or no scenario files found.
pub fn collect_scenario_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    let entries =
        std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("yaml") | Some("yml")
                )
        })
        .collect();
    if files.is_empty() {
        return Err(format!("{}: no scenario files (*.yaml)", path.display()));
    }
    files.sort();
    Ok(files)
}

/// Run every scenario under `path` and collect results in file order.
/// Per-file parse errors become failing results (not a batch abort)
/// *except* when the batch contains exactly one explicit file — then
/// the positioned parse error is returned directly so the CLI can
/// exit 2 with the diagnostic.
///
/// # Errors
///
/// Path collection failures, or the parse error of a single-file run.
pub fn run_batch(path: &Path) -> Result<Vec<ScenarioResult>, String> {
    let files = collect_scenario_files(path)?;
    let single = files.len() == 1;
    let mut results = Vec::with_capacity(files.len());
    for file in &files {
        let base = file.parent().unwrap_or_else(|| Path::new("."));
        match load_scenario_file(file) {
            Ok(sc) => {
                let mut r = run_and_check(&sc, base);
                r.file = Some(file.display().to_string());
                results.push(r);
            }
            Err(e) if single => return Err(e),
            Err(e) => results.push(ScenarioResult {
                name: file
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("scenario")
                    .to_string(),
                file: Some(file.display().to_string()),
                failures: vec![e],
                notes: Vec::new(),
                coverage: tesla_automata::CoverageMap::new(),
            }),
        }
    }
    Ok(results)
}
