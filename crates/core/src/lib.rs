//! # tesla — Temporally Enhanced System Logic Assertions
//!
//! A from-scratch Rust reproduction of **TESLA** (Anderson, Watson,
//! Chisnall, Gudka, Marinos, Davis — EuroSys 2014): a description,
//! analysis and validation tool that lets systems programmers
//! describe expected *temporal* behaviour — events in the past or
//! future relative to an assertion site — in low-level code, checks
//! it with compiler-woven instrumentation, and illuminates run-time
//! behaviour through automata introspection.
//!
//! This crate is the umbrella: it re-exports every component and adds
//! the end-to-end [`pipeline`] (compile → analyse → merge `.tesla`
//! manifests → instrument → optimise → run) together with the
//! [`corpus`] generators used by the build-time experiments (fig. 10)
//! and the declarative [`scenario`] engine behind
//! `tesla scenario run` / `tesla scenario fuzz`.
//!
//! ## The pieces
//!
//! | Module | Paper component |
//! |--------|-----------------|
//! | [`spec`] | assertion language (fig. 5 grammar, parser, builder) |
//! | [`automata`] | assertion → NFA compiler, `.tesla` manifests, DOT |
//! | [`runtime`] | libtesla: instance lifecycle, contexts, handlers |
//! | [`ir`] | TIR — the LLVM-IR substitute, interpreter, optimiser |
//! | [`cc`] | mini-C front-end + TESLA analyser (Clang substitute) |
//! | [`instrument`] | the IR instrumenter + runtime bridge |
//! | [`sim_kernel`] | FreeBSD-like kernel + MAC framework case study |
//! | [`sim_ssl`] | OpenSSL/libfetch case study |
//! | [`sim_gui`] | GNUstep-like runtime + AppKit case study |
//! | [`workload`] | lmbench/OLTP/build/Xnee-like workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use tesla::prelude::*;
//!
//! // 1. Describe: within foo(), check() must previously succeed.
//! let assertion = AssertionBuilder::within("foo")
//!     .named("example")
//!     .previously(call("check").arg_var("x").returns(0))
//!     .build()
//!     .unwrap();
//!
//! // 2. Compile to an automaton and register with libtesla.
//! let engine = Arc::new(Tesla::with_defaults());
//! let class = engine.register(tesla::automata::compile(&assertion).unwrap()).unwrap();
//!
//! // 3. Drive events (normally emitted by woven instrumentation).
//! let foo = engine.intern_fn("foo");
//! let check = engine.intern_fn("check");
//! engine.fn_entry(foo, &[]).unwrap();
//! engine.fn_entry(check, &[Value(7)]).unwrap();
//! engine.fn_exit(check, &[Value(7)], Value(0)).unwrap();
//! engine.assertion_site(class, &[Value(7)]).unwrap(); // satisfied
//! assert!(engine.assertion_site(class, &[Value(8)]).is_err()); // violation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod pipeline;
pub mod scenario;

pub use tesla_automata as automata;
pub use tesla_cc as cc;
pub use tesla_instrument as instrument;
pub use tesla_ir as ir;
pub use tesla_runtime as runtime;
pub use tesla_sim_gui as sim_gui;
pub use tesla_sim_kernel as sim_kernel;
pub use tesla_sim_ssl as sim_ssl;
pub use tesla_spec as spec;
pub use tesla_workload as workload;

/// The things almost every user wants in scope.
pub mod prelude {
    pub use tesla_automata::{compile, Automaton, Manifest};
    #[cfg(unix)]
    pub use tesla_runtime::SocketSource;
    pub use tesla_runtime::{
        AnomalyReport, Baseline, BaselineError, BatchIngress, BufferedSource, ClassId, Config,
        ConfigError, CountingHandler, DriveError, EventProducer, EventSource, EvictionPolicy,
        FailMode, FaultKind, FaultLedger, FaultPlan, FaultSpec, FlightRecorder, Governor,
        GovernorConfig, IngressError, IngressEvent, IngressEventRef, IngressStats, InitMode,
        JsonlSource, MetricsRegistry, MetricsSnapshot, NameCache, NameId, RecordingHandler,
        ScorerConfig, Tesla, TraceWriter, Violation, ViolationKind,
    };
    pub use tesla_spec::{
        atleast, call, field_assign, msg_send, parse_assertion, Assertion, AssertionBuilder,
        ExprBuilder, FieldOp, Value,
    };
}
