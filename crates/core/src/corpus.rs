//! Synthetic mini-C corpora for the build-time experiments.
//!
//! Fig. 10 measures the TESLA toolchain over OpenSSL (hundreds of C
//! files); §5.2.1 over the FreeBSD kernel. These generators produce
//! projects with the same *shape* — many interdependent translation
//! units, a few of which contain assertions that reference functions
//! defined in other units — scaled to laptop-sized corpora.

use crate::pipeline::Project;
use std::fmt::Write as _;

/// How the "libfetch" client of [`openssl_like`] treats
/// `EVP_VerifyFinal`'s result — the axis of the §2 case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientStyle {
    /// Calls the verifier with `sig == key` and ignores the result.
    /// Still provably safe: the flow-sensitive checker sees the same
    /// value in both argument slots, so verification cannot fail.
    Unchecked,
    /// Checks the result and bails before the assertion on every
    /// failing path (the post-CVE-2008-5077 shape): `ProvedSafe`.
    Patched,
    /// Never consults the verifier at all before the assertion site
    /// (the CVE shape): `DefiniteViolation`.
    Buggy,
}

/// An OpenSSL-shaped corpus: `files` units of library code
/// ("libcrypto"/"libssl" layers), plus a "libfetch" client unit whose
/// `main` carries the fig. 6 assertion referencing a function defined
/// in unit 0.
pub fn openssl_like(files: usize) -> Project {
    openssl_like_with_client(files, ClientStyle::Unchecked)
}

/// [`openssl_like`], with the client patched to check
/// `EVP_VerifyFinal`'s result before the assertion site on every
/// path. The flow-sensitive model checker proves the fig. 6
/// assertion safe, so the static toolchain elides its
/// instrumentation entirely.
pub fn openssl_like_patched(files: usize) -> Project {
    openssl_like_with_client(files, ClientStyle::Patched)
}

/// [`openssl_like`], with the CVE-2008-5077-shaped seeded bug: the
/// client reaches the assertion site without ever calling
/// `EVP_VerifyFinal`. Every path violates, so the model checker
/// reports a definite violation with a concrete counterexample
/// trace at compile time.
pub fn openssl_like_buggy(files: usize) -> Project {
    openssl_like_with_client(files, ClientStyle::Buggy)
}

fn openssl_like_with_client(files: usize, style: ClientStyle) -> Project {
    assert!(files >= 2, "need at least a library and a client");
    let mut units = Vec::with_capacity(files);
    // Unit 0: the libcrypto-ish core, defining EVP_VerifyFinal.
    let mut src = String::from(
        "struct evp_ctx { int digest; int err; };\n\
         int EVP_VerifyFinal(struct evp_ctx *ctx, int sig, int len, int key) {\n\
             if (len < 4) { return -1; }\n\
             if (sig == key) { return 1; }\n\
             return 0;\n\
         }\n",
    );
    for f in 0..20 {
        let _ = write!(
            src,
            "int crypto_helper_{f}(int x) {{\n\
                 int acc = {f};\n\
                 while (x > 0) {{ acc += (x * {m}) % 13; x -= 1; }}\n\
                 return acc;\n\
             }}\n",
            m = f + 2
        );
    }
    units.push(("crypto/evp.c".to_string(), src));
    // Middle units: libssl-ish layers calling downward.
    for i in 1..files - 1 {
        let mut src = String::new();
        let below = if i == 1 {
            "crypto_helper_0".to_string()
        } else {
            format!("ssl_layer_{}_fn_0", i - 1)
        };
        let _ = writeln!(src, "int {below}(int x);");
        for f in 0..20 {
            let _ = write!(
                src,
                "int ssl_layer_{i}_fn_{f}(int x) {{\n\
                     int acc = {below}(x);\n\
                     int round = 0;\n\
                     while (round < {f} + 3) {{\n\
                         if (acc % 2 == 0) {{ acc += x * {f}; }} else {{ acc -= round; }}\n\
                         round += 1;\n\
                     }}\n\
                     return acc;\n\
                 }}\n"
            );
        }
        units.push((format!("ssl/layer{i}.c"), src));
    }
    // The client: fig. 6's cross-library assertion. The body varies
    // with how the client handles verification failure (§2).
    let top = if files >= 3 {
        format!("ssl_layer_{}_fn_0", files - 2)
    } else {
        "crypto_helper_0".to_string()
    };
    let body = match style {
        ClientStyle::Unchecked => format!(
            "    int rc = EVP_VerifyFinal(ctx, key, 8, key);\n\
                 int page = {top}(rc);\n"
        ),
        ClientStyle::Patched => format!(
            "    int rc = EVP_VerifyFinal(ctx, key, 8, key);\n\
                 if (rc != 1) {{ return -1; }}\n\
                 int page = {top}(rc);\n"
        ),
        // A concrete argument keeps the abstract exploration finite;
        // the seeded bug is that EVP_VerifyFinal is never consulted.
        ClientStyle::Buggy => format!("    int page = {top}(1);\n"),
    };
    let client = format!(
        "struct evp_ctx {{ int digest; int err; }};\n\
         int EVP_VerifyFinal(struct evp_ctx *ctx, int sig, int len, int key);\n\
         int {top}(int x);\n\
         int main(int key) {{\n\
             struct evp_ctx *ctx = malloc(sizeof(struct evp_ctx));\n\
         {body}\
             TESLA_WITHIN(main, previously(\n\
                 EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));\n\
             return page;\n\
         }}\n"
    );
    units.push(("fetch/main.c".to_string(), client));
    Project {
        units: units
            .into_iter()
            .map(|(file, source)| crate::pipeline::SourceUnit { file, source })
            .collect(),
    }
}

/// A kernel-shaped corpus: `files` subsystem units with `assertions`
/// fig.-4-style MAC assertions spread across them, all bounded by a
/// shared `amd64_syscall` defined in unit 0.
pub fn kernel_like(files: usize, assertions: usize) -> Project {
    assert!(files >= 2);
    let mut units = Vec::with_capacity(files);
    // Unit 0: syscall dispatch + the MAC check entry points.
    let mut src = String::from(
        "struct socket { int so_state; };\n\
         int mac_check(int cred, struct socket *so) { return 0; }\n",
    );
    for s in 0..files - 1 {
        let _ = writeln!(src, "int subsys_{s}_entry(int cred, struct socket *so);");
    }
    src.push_str(
        "int amd64_syscall(int cred, int nr) {\n\
             struct socket *so = malloc(sizeof(struct socket));\n\
             mac_check(cred, so);\n",
    );
    for s in 0..files - 1 {
        let _ = writeln!(src, "    subsys_{s}_entry(cred, so);");
    }
    src.push_str("    return 0;\n}\n");
    units.push(("kern/syscall.c".to_string(), src));
    // Subsystem units; assertions round-robin across them.
    let mut remaining = assertions;
    for s in 0..files - 1 {
        let per_unit = if files > 1 {
            (assertions / (files - 1)) + usize::from(s < assertions % (files - 1))
        } else {
            0
        };
        let mut src = String::from(
            "struct socket { int so_state; };\n\
             int mac_check(int cred, struct socket *so);\n",
        );
        let _ = write!(
            src,
            "int subsys_{s}_entry(int cred, struct socket *so) {{\n\
                 so->so_state = {s};\n"
        );
        for a in 0..per_unit.min(remaining) {
            let _ = writeln!(
                src,
                "    TESLA_SYSCALL_PREVIOUSLY(mac_check(ANY(int), so) == 0); // #{a}"
            );
        }
        remaining = remaining.saturating_sub(per_unit);
        src.push_str("    return 0;\n}\n");
        units.push((format!("subsys/unit{s}.c"), src));
    }
    Project {
        units: units
            .into_iter()
            .map(|(file, source)| crate::pipeline::SourceUnit { file, source })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{BuildOptions, BuildSystem};

    #[test]
    fn openssl_corpus_builds_both_ways() {
        let p = openssl_like(8);
        assert_eq!(p.units.len(), 8);
        for opts in [
            BuildOptions::default_toolchain(),
            BuildOptions::tesla_toolchain(),
        ] {
            let mut bs = BuildSystem::new(p.clone(), opts);
            let art = bs.build().unwrap();
            assert!(art.stats.linked_insts > 0);
            if opts.tesla {
                assert_eq!(art.manifest.entries.len(), 1);
            }
        }
    }

    #[test]
    fn openssl_corpus_program_runs_and_asserts() {
        let p = openssl_like(6);
        let mut bs = BuildSystem::new(p, BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        let t = tesla_runtime::Tesla::with_defaults();
        // key == sig → EVP returns 1 → assertion satisfied.
        crate::pipeline::run_with_tesla(&art, &t, "main", &[9], 10_000_000).unwrap();
    }

    #[test]
    fn kernel_corpus_scales_assertion_counts() {
        let p = kernel_like(6, 10);
        let mut bs = BuildSystem::new(p, BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.manifest.entries.len(), 10);
        let t = tesla_runtime::Tesla::with_defaults();
        crate::pipeline::run_with_tesla(&art, &t, "amd64_syscall", &[1, 2], 10_000_000).unwrap();
        assert!(t.violations().is_empty());
    }

    #[test]
    fn patched_corpus_is_proved_safe_and_elided() {
        let p = openssl_like_patched(5);
        let mut bs = BuildSystem::new(p, BuildOptions::static_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.verdicts.len(), 1);
        assert!(
            art.verdicts[0].verdict.elidable(),
            "got {:?}",
            art.verdicts[0].verdict
        );
        assert_eq!(art.stats.sites_elided, 1);
        // The elided program still runs — and produces no TESLA
        // events at all for the proved assertion.
        let t = tesla_runtime::Tesla::with_defaults();
        crate::pipeline::run_with_tesla(&art, &t, "main", &[9], 10_000_000).unwrap();
        assert!(t.violations().is_empty());
    }

    #[test]
    fn buggy_corpus_is_definite_violation_at_compile_time() {
        let p = openssl_like_buggy(5);
        let mut bs = BuildSystem::new(p, BuildOptions::static_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.verdicts.len(), 1);
        match &art.verdicts[0].verdict {
            tesla_instrument::CheckVerdict::DefiniteViolation { trace } => {
                assert!(!trace.is_empty());
            }
            other => panic!("expected DefiniteViolation, got {other:?}"),
        }
        assert_eq!(art.stats.sites_elided, 0);
    }

    #[test]
    fn kernel_corpus_with_zero_assertions_is_valid() {
        let p = kernel_like(4, 0);
        let mut bs = BuildSystem::new(p, BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.manifest.entries.len(), 0);
    }
}
