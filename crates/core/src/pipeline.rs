//! The end-to-end TESLA build pipeline, with the incremental-rebuild
//! behaviour of §5.1 (fig. 10).
//!
//! A [`BuildSystem`] owns a project (a set of mini-C units) and a
//! per-unit cache, and supports two workflows:
//!
//! * **Default** — parse, lower, link, optimise. Incremental rebuilds
//!   recompile only dirty units and relink.
//! * **TESLA** — parse, *analyse* (extract assertions to per-unit
//!   `.tesla` manifests), merge manifests program-wide, *instrument
//!   every unit against the merged manifest*, link, optimise.
//!
//! "TESLA assertions in any source file can reference events that are
//! defined in any other source file … after modifying a TESLA
//! assertion in any one source file, instrumentation must be
//! performed again, potentially on many files. In our current
//! implementation, we naively re-instrument all code" (§5.1). The
//! default [`ReinstrumentPolicy::Naive`] reproduces that; the
//! fingerprint-based [`ReinstrumentPolicy::Fingerprint`] is the
//! "could be pared down through further build optimisation" ablation.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use tesla_automata::Manifest;
use tesla_cc::UnitOutput;
use tesla_instrument::{
    instrument_with_elision, model_check, register_manifest, static_check, AssertionReport,
    RuntimeSink, StaticFinding,
};
use tesla_ir::opt::{optimise, InlineOptions};
use tesla_ir::verify::{verify, Stage};
use tesla_ir::{Interp, Module};
use tesla_runtime::Tesla;

/// One source unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceUnit {
    /// File name.
    pub file: String,
    /// Mini-C source text.
    pub source: String,
}

/// A project: the program's translation units.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Project {
    /// The units.
    pub units: Vec<SourceUnit>,
}

impl Project {
    /// Construct from (file, source) pairs.
    pub fn from_sources(sources: &[(&str, &str)]) -> Project {
        Project {
            units: sources
                .iter()
                .map(|(f, s)| SourceUnit { file: (*f).to_string(), source: (*s).to_string() })
                .collect(),
        }
    }

    /// Total source bytes (reporting).
    pub fn total_bytes(&self) -> usize {
        self.units.iter().map(|u| u.source.len()).sum()
    }
}

/// When does an assertion change force re-instrumenting other units?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReinstrumentPolicy {
    /// Any change to any unit re-instruments everything (the paper's
    /// implementation: the combined `.tesla` file is regenerated, so
    /// every IR file is considered stale).
    #[default]
    Naive,
    /// Re-instrument all units only when the *merged manifest
    /// fingerprint* actually changed; otherwise only dirty units.
    Fingerprint,
}

/// Build configuration.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Run the TESLA analyser + instrumenter stages.
    pub tesla: bool,
    /// Run the optimiser (after instrumentation, §4.2).
    pub optimise: bool,
    /// Incremental re-instrumentation policy.
    pub reinstrument: ReinstrumentPolicy,
    /// Verify units and the linked program (tests/debug; off in
    /// benchmark runs, as real toolchains do not re-verify).
    pub verify: bool,
    /// Run the flow-sensitive static model checker before
    /// instrumenting and elide hooks for assertions it proves safe
    /// (§7's "static analysis" direction).
    pub model_check: bool,
}

impl BuildOptions {
    /// The default (non-TESLA) toolchain.
    pub fn default_toolchain() -> BuildOptions {
        BuildOptions {
            tesla: false,
            optimise: true,
            reinstrument: ReinstrumentPolicy::Naive,
            verify: true,
            model_check: false,
        }
    }

    /// The TESLA toolchain, with the paper's naive re-instrumentation.
    pub fn tesla_toolchain() -> BuildOptions {
        BuildOptions {
            tesla: true,
            optimise: true,
            reinstrument: ReinstrumentPolicy::Naive,
            verify: true,
            model_check: false,
        }
    }

    /// The TESLA toolchain with the static model checker in front:
    /// proved-safe assertions are elided, definite violations become
    /// compile-time reports, everything else falls back to the
    /// dynamic instrumentation of [`tesla_toolchain`](Self::tesla_toolchain).
    pub fn static_toolchain() -> BuildOptions {
        BuildOptions { model_check: true, ..BuildOptions::tesla_toolchain() }
    }
}

/// Statistics from one build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Units (re)compiled front-end-side.
    pub compiled_units: usize,
    /// Units (re)instrumented.
    pub instrumented_units: usize,
    /// Total TIR instructions in the linked program.
    pub linked_insts: usize,
    /// Hooks inserted across re-instrumented units.
    pub hooks_inserted: usize,
    /// Assertion sites removed outright because the model checker
    /// proved them safe (summed across re-instrumented units).
    pub sites_elided: usize,
    /// Bytes of per-unit object code emitted (recompiled units in
    /// default mode; every re-instrumented unit in TESLA mode — the
    /// paper's per-file IR read/instrument/write cycle, §5.1/§7).
    pub object_bytes: usize,
}

/// A finished build.
pub struct BuildArtifacts {
    /// The linked (and, in TESLA mode, instrumented) program.
    pub program: Module,
    /// The merged program manifest (empty in default mode).
    pub manifest: Manifest,
    /// What the build did.
    pub stats: BuildStats,
    /// Per-assertion model-checker verdicts (empty unless
    /// [`BuildOptions::model_check`] was set).
    pub verdicts: Vec<AssertionReport>,
    /// Flow-insensitive static findings (dormant/unchecked/
    /// unsatisfiable assertions; empty unless `model_check` was set).
    pub findings: Vec<StaticFinding>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Build failure.
#[derive(Debug)]
pub enum BuildError {
    /// Front-end failure.
    Compile(String, tesla_cc::CompileError),
    /// Link failure.
    Link(String),
    /// Instrumentation failure.
    Instrument(tesla_instrument::InstrumentError),
    /// Static analysis failure (manifest compilation inside the model
    /// checker or the flow-insensitive checks).
    Analysis(String),
    /// Verifier rejection.
    Verify(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(file, e) => write!(f, "{file}: {e}"),
            BuildError::Link(e) => write!(f, "link: {e}"),
            BuildError::Instrument(e) => write!(f, "instrument: {e}"),
            BuildError::Analysis(e) => write!(f, "analysis: {e}"),
            BuildError::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The incremental build system.
pub struct BuildSystem {
    project: Project,
    options: BuildOptions,
    /// Per-unit front-end cache: file → (source fingerprint, output).
    unit_cache: HashMap<String, (u64, UnitOutput)>,
    /// Fingerprint of the last merged manifest.
    last_manifest_fp: Option<u64>,
    /// Dirty files (explicitly touched since the last build).
    dirty: Vec<String>,
    /// Per-unit object cache: file → (source fp, manifest key,
    /// instrumented+optimised module).
    object_cache: HashMap<String, (u64, u64, Module)>,
    /// Monotonic build counter (naive TESLA staleness key).
    build_seq: u64,
}

/// Serialise a unit's compiled form — the object-file emission cost
/// of the real toolchain (LLVM bitcode write, §5.1).
fn emit_object(m: &Module) -> usize {
    serde_json::to_string(m).map(|s| s.len()).unwrap_or(0)
}

/// One IR write+read round-trip between toolchain stages (the
/// `clang → .bc → instrumenter → .bc → opt` hand-offs of §4.2).
fn reload_ir(m: &Module) -> Result<Module, String> {
    let text = serde_json::to_string(m).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e: serde_json::Error| e.to_string())
}

fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl BuildSystem {
    /// Create a build system over a project.
    pub fn new(project: Project, options: BuildOptions) -> BuildSystem {
        BuildSystem {
            project,
            options,
            unit_cache: HashMap::new(),
            last_manifest_fp: None,
            dirty: Vec::new(),
            object_cache: HashMap::new(),
            build_seq: 0,
        }
    }

    /// Mark a file as edited (appends a comment so the fingerprint
    /// changes, like a save in an editor).
    pub fn touch(&mut self, file: &str) {
        if let Some(u) = self.project.units.iter_mut().find(|u| u.file == file) {
            u.source.push_str("\n// touched\n");
            self.dirty.push(file.to_string());
        }
    }

    /// Edit a file's source outright.
    pub fn edit(&mut self, file: &str, new_source: &str) {
        if let Some(u) = self.project.units.iter_mut().find(|u| u.file == file) {
            u.source = new_source.to_string();
            self.dirty.push(file.to_string());
        }
    }

    /// Run a build: full on first call, incremental afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] from any stage.
    pub fn build(&mut self) -> Result<BuildArtifacts, BuildError> {
        let t0 = Instant::now();
        let mut stats = BuildStats::default();

        // Front-end: recompile units whose fingerprint changed.
        for unit in &self.project.units {
            let fp = fingerprint(&unit.source);
            let cached = self.unit_cache.get(&unit.file).map(|(f, _)| *f);
            if cached != Some(fp) {
                let out = tesla_cc::compile_unit(&unit.source, &unit.file)
                    .map_err(|e| BuildError::Compile(unit.file.clone(), e))?;
                if self.options.verify {
                    verify(&out.module, Stage::Unit)
                        .map_err(|e| BuildError::Verify(format!("{}: {:?}", unit.file, e)))?;
                }
                self.unit_cache.insert(unit.file.clone(), (fp, out));
                stats.compiled_units += 1;
            }
        }
        self.dirty.clear();

        // Analyse: merge the per-unit manifests program-wide.
        let manifest = if self.options.tesla {
            let per_unit: Vec<Manifest> = self
                .project
                .units
                .iter()
                .map(|u| self.unit_cache[&u.file].1.manifest.clone())
                .collect();
            Manifest::merge(&per_unit)
        } else {
            Manifest::new()
        };

        // Static analysis: model-check the *pristine* (un-instrumented)
        // program against the merged manifest. Elision decisions are
        // whole-program facts, so the checker must see the linked
        // flow graph, not any single unit.
        let mut verdicts: Vec<AssertionReport> = Vec::new();
        let mut findings: Vec<StaticFinding> = Vec::new();
        let mut elided: HashSet<u32> = HashSet::new();
        if self.options.tesla && self.options.model_check {
            let pristine: Vec<Module> = self
                .project
                .units
                .iter()
                .map(|u| self.unit_cache[&u.file].1.module.clone())
                .collect();
            let analysis = Module::link(pristine, "analysis").map_err(BuildError::Link)?;
            verdicts = model_check(&analysis, &manifest).map_err(BuildError::Analysis)?;
            findings = static_check(&analysis, &manifest).map_err(BuildError::Analysis)?;
            elided =
                verdicts.iter().filter(|r| r.verdict.elidable()).map(|r| r.class).collect();
        }

        // Per-unit back-end: instrument (TESLA) → optimise → emit
        // object code. This mirrors the paper's per-file workflow
        // (clang -O0 → instrument → opt -O2 → .o); objects are cached
        // so the default toolchain's incremental rebuild only re-does
        // the dirty unit, while the naive TESLA toolchain re-does
        // every unit on any change (§5.1).
        let manifest_key = if self.options.tesla {
            let base = match self.options.reinstrument {
                ReinstrumentPolicy::Naive => {
                    // The combined .tesla file was just regenerated:
                    // every object is considered stale.
                    self.build_seq += 1;
                    self.build_seq
                }
                ReinstrumentPolicy::Fingerprint => manifest.fingerprint(),
            };
            // Fold the elision set in: a changed verdict must
            // invalidate cached objects even when manifest and source
            // fingerprints are unchanged (elision alters the woven
            // object).
            let mut ids: Vec<u32> = elided.iter().copied().collect();
            ids.sort_unstable();
            base ^ fingerprint(&format!("elide:{ids:?}"))
        } else {
            0
        };
        self.last_manifest_fp = Some(manifest.fingerprint());
        // The paper's implementation "re-load[s], re-pars[es], and
        // re-interpret[s] the same TESLA automaton description for
        // every LLVM IR file it instruments" (§7) — reproduce that
        // honestly: each unit re-reads the merged .tesla text.
        let manifest_text = if self.options.tesla { manifest.to_tesla() } else { String::new() };
        let mut modules: Vec<Module> = Vec::with_capacity(self.project.units.len());
        for u in &self.project.units {
            let (src_fp, unit_out) = &self.unit_cache[&u.file];
            let cached = self
                .object_cache
                .get(&u.file)
                .filter(|(sfp, mfp, _)| sfp == src_fp && *mfp == manifest_key);
            if let Some((_, _, obj)) = cached {
                modules.push(obj.clone());
                continue;
            }
            let mut m = unit_out.module.clone();
            if self.options.tesla {
                // The TESLA workflow adds pipeline stages (§5.1):
                // clang emits IR, the standalone instrumenter re-reads
                // it, instruments, writes it back, and opt re-reads
                // that. Model the two extra IR round-trips honestly.
                m = reload_ir(&m).map_err(BuildError::Link)?;
                let reloaded = Manifest::from_tesla(&manifest_text)
                    .map_err(|e| BuildError::Link(format!("manifest reload: {e}")))?;
                let st = instrument_with_elision(&mut m, &reloaded, &elided)
                    .map_err(BuildError::Instrument)?;
                m = reload_ir(&m).map_err(BuildError::Link)?;
                stats.instrumented_units += 1;
                stats.hooks_inserted +=
                    st.entry_hooks + st.exit_hooks + st.call_site_hooks + st.field_hooks;
                stats.sites_elided += st.sites_elided;
            } else {
                // Without the TESLA toolchain the assertion macros
                // expand to nothing: drop the placeholders.
                for f in &mut m.functions {
                    for b in &mut f.blocks {
                        b.insts
                            .retain(|i| !matches!(i, tesla_ir::Inst::TeslaPseudoAssert { .. }));
                    }
                }
            }
            if self.options.optimise {
                optimise(&mut m, &InlineOptions::default());
            }
            stats.object_bytes += emit_object(&m);
            self.object_cache.insert(u.file.clone(), (*src_fp, manifest_key, m.clone()));
            modules.push(m);
        }

        // Link (cheap relative to the per-unit work, as in a real
        // toolchain).
        let program = Module::link(modules, "program").map_err(BuildError::Link)?;
        if self.options.verify {
            verify(&program, Stage::Linked)
                .map_err(|e| BuildError::Verify(format!("linked: {:?}", e.first().unwrap())))?;
        }
        stats.linked_insts = program.n_insts();
        Ok(BuildArtifacts { program, manifest, stats, verdicts, findings, elapsed: t0.elapsed() })
    }
}

/// Run a built program under the interpreter with a libtesla engine
/// attached: registers the manifest's automata and bridges hooks.
///
/// # Errors
///
/// Returns the interpreter error (including TESLA violations) as a
/// string.
pub fn run_with_tesla(
    artifacts: &BuildArtifacts,
    tesla: &Tesla,
    entry: &str,
    args: &[i64],
    fuel: u64,
) -> Result<i64, String> {
    // Register once per engine: repeated runs reuse the classes whose
    // ids the instrumenter baked into `TeslaSite` instructions.
    // `register_manifest` registers the whole manifest as one batch,
    // so the engine publishes a single dispatch snapshot — hooks on
    // other threads see either no classes or all of them, never a
    // partially registered manifest.
    if tesla.n_classes() == 0 {
        register_manifest(tesla, &artifacts.manifest)?;
    }
    // Surface the static checker's elision work in the run's metrics:
    // `tesla_sites_elided` in a Prometheus scrape is the count of
    // instrumentation sites this very build proved unnecessary.
    tesla.metrics().set_sites_elided(artifacts.stats.sites_elided as u64);
    let mut sink = RuntimeSink::new(tesla);
    let mut interp = Interp::new(&artifacts.program, fuel);
    interp.run_named(entry, args, &mut sink).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_ir::NullSink;

    fn two_unit_project() -> Project {
        Project::from_sources(&[
            (
                "lib.c",
                "int check(int x) { return 0; }\n\
                 int helper(int x) { return x + 1; }",
            ),
            (
                "main.c",
                "int check(int x);\n\
                 int helper(int x);\n\
                 int main(int x) {\n\
                     check(x);\n\
                     TESLA_WITHIN(main, previously(check(x) == 0));\n\
                     return helper(x);\n\
                 }",
            ),
        ])
    }

    #[test]
    fn default_build_runs_without_tesla_stages() {
        let mut bs = BuildSystem::new(
            Project::from_sources(&[("a.c", "int main(int x) { return x * 2; }")]),
            BuildOptions::default_toolchain(),
        );
        let art = bs.build().unwrap();
        assert_eq!(art.stats.instrumented_units, 0);
        let mut i = Interp::new(&art.program, 10_000);
        assert_eq!(i.run_named("main", &[21], &mut NullSink).unwrap(), 42);
    }

    #[test]
    fn tesla_build_instruments_and_enforces() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 2);
        assert_eq!(art.stats.instrumented_units, 2);
        assert_eq!(art.manifest.entries.len(), 1);
        let t = Tesla::with_defaults();
        assert_eq!(run_with_tesla(&art, &t, "main", &[5], 100_000).unwrap(), 6);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn violation_surfaces_through_the_pipeline() {
        let mut bs = BuildSystem::new(
            Project::from_sources(&[(
                "main.c",
                "int check(int x) { return 1; }\n\
                 int main(int x) {\n\
                     check(x);\n\
                     TESLA_WITHIN(main, previously(check(x) == 0));\n\
                     return 0;\n\
                 }",
            )]),
            BuildOptions::tesla_toolchain(),
        );
        let art = bs.build().unwrap();
        let t = Tesla::with_defaults();
        let err = run_with_tesla(&art, &t, "main", &[5], 100_000).unwrap_err();
        assert!(err.contains("TESLA"), "{err}");
    }

    #[test]
    fn incremental_default_recompiles_only_dirty() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::default_toolchain());
        bs.build().unwrap();
        bs.touch("lib.c");
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 1);
        assert_eq!(art.stats.instrumented_units, 0);
    }

    #[test]
    fn incremental_tesla_naively_reinstruments_everything() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::tesla_toolchain());
        bs.build().unwrap();
        bs.touch("lib.c");
        let art = bs.build().unwrap();
        // One unit recompiled, but *all* units re-instrumented.
        assert_eq!(art.stats.compiled_units, 1);
        assert_eq!(art.stats.instrumented_units, 2);
    }

    #[test]
    fn no_op_build_is_fully_cached() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::default_toolchain());
        bs.build().unwrap();
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 0);
    }

    #[test]
    fn optimised_and_unoptimised_agree() {
        for optimise in [false, true] {
            let mut bs = BuildSystem::new(
                two_unit_project(),
                BuildOptions { optimise, ..BuildOptions::tesla_toolchain() },
            );
            let art = bs.build().unwrap();
            let t = Tesla::with_defaults();
            assert_eq!(run_with_tesla(&art, &t, "main", &[7], 100_000).unwrap(), 8);
        }
    }
}
