//! The end-to-end TESLA build pipeline, with the incremental-rebuild
//! behaviour of §5.1 (fig. 10) — and the fix the paper asks for.
//!
//! A [`BuildSystem`] owns a project (a set of mini-C units) and a
//! per-unit cache, and supports two workflows:
//!
//! * **Default** — parse, lower, link, optimise. Incremental rebuilds
//!   recompile only dirty units and relink.
//! * **TESLA** — parse, *analyse* (extract assertions to per-unit
//!   `.tesla` manifests), merge manifests program-wide, *instrument
//!   every unit against the merged manifest*, link, optimise.
//!
//! "TESLA assertions in any source file can reference events that are
//! defined in any other source file … after modifying a TESLA
//! assertion in any one source file, instrumentation must be
//! performed again, potentially on many files. In our current
//! implementation, we naively re-instrument all code" (§5.1). Three
//! [`ReinstrumentPolicy`] modes span the design space:
//!
//! * [`Naive`](ReinstrumentPolicy::Naive) reproduces the paper's
//!   implementation: the combined `.tesla` file is regenerated on
//!   every build, so every object is considered stale, and each unit
//!   re-loads and re-parses the merged manifest (§7).
//! * [`Fingerprint`](ReinstrumentPolicy::Fingerprint) is the first
//!   "could be pared down through further build optimisation"
//!   ablation: re-instrument all units only when the merged manifest
//!   fingerprint changed.
//! * [`Delta`](ReinstrumentPolicy::Delta) is the incremental
//!   toolchain: assertions are compiled once per content fingerprint
//!   in a shared [`CompileCache`], each unit's staleness is decided by
//!   the slice of the instrumentation plan that can actually touch it
//!   (see [`tesla_instrument::unit_touch_set`] and DESIGN.md §10),
//!   and the per-unit back-end fans out across threads.

use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tesla_automata::{Automaton, CompileCache, Fnv64, Manifest};
use tesla_cc::UnitOutput;
use tesla_instrument::{
    instrument_precompiled, instrument_with_elision, lint_manifest, model_check,
    register_manifest_cached,
    static_check, unit_touch_set, weave_plan, AssertionReport, InstrStats, LintFinding,
    RecordingSink, RuntimeSink, StaticFinding, UnitTouchSet, WeavePlan,
};
use tesla_ir::opt::{optimise, InlineOptions};
use tesla_ir::verify::{verify, Stage};
use tesla_ir::{Interp, Module};
use tesla_runtime::{DriveError, EventSource, IngressStats, Tesla};

/// One source unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceUnit {
    /// File name.
    pub file: String,
    /// Mini-C source text.
    pub source: String,
}

/// A project: the program's translation units.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Project {
    /// The units.
    pub units: Vec<SourceUnit>,
}

impl Project {
    /// Construct from (file, source) pairs.
    pub fn from_sources(sources: &[(&str, &str)]) -> Project {
        Project {
            units: sources
                .iter()
                .map(|(f, s)| SourceUnit {
                    file: (*f).to_string(),
                    source: (*s).to_string(),
                })
                .collect(),
        }
    }

    /// Total source bytes (reporting).
    pub fn total_bytes(&self) -> usize {
        self.units.iter().map(|u| u.source.len()).sum()
    }
}

/// When does an assertion change force re-instrumenting other units?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReinstrumentPolicy {
    /// Any change to any unit re-instruments everything (the paper's
    /// implementation: the combined `.tesla` file is regenerated, so
    /// every IR file is considered stale).
    #[default]
    Naive,
    /// Re-instrument all units only when the *merged manifest
    /// fingerprint* actually changed; otherwise only dirty units.
    Fingerprint,
    /// Delta-aware invalidation: re-instrument a unit only when the
    /// part of the instrumentation plan that can touch *that unit*
    /// changed. Automata are compiled once per assertion content
    /// fingerprint and shared across units; the per-unit back-end
    /// runs in parallel ([`BuildOptions::jobs`]).
    Delta,
}

/// Build configuration.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Run the TESLA analyser + instrumenter stages.
    pub tesla: bool,
    /// Run the optimiser (after instrumentation, §4.2).
    pub optimise: bool,
    /// Incremental re-instrumentation policy.
    pub reinstrument: ReinstrumentPolicy,
    /// Verify units and the linked program (tests/debug; off in
    /// benchmark runs, as real toolchains do not re-verify).
    pub verify: bool,
    /// Run the flow-sensitive static model checker before
    /// instrumenting and elide hooks for assertions it proves safe
    /// (§7's "static analysis" direction).
    pub model_check: bool,
    /// Run the specification-level lints ([`lint_manifest`]) over the
    /// merged manifest — vacuity, contradiction, subsumption,
    /// dead-state, bound and matcher checks on the assertions
    /// themselves, independent of any program analysis.
    pub lint: bool,
    /// Worker threads for the [`ReinstrumentPolicy::Delta`] front-end
    /// and back-end fan-out. `0` means "use the machine's available
    /// parallelism"; `1` forces serial execution. The Naive and
    /// Fingerprint modes always run serially — they exist to
    /// reproduce the paper's measurements.
    pub jobs: usize,
}

impl BuildOptions {
    /// The default (non-TESLA) toolchain.
    pub fn default_toolchain() -> BuildOptions {
        BuildOptions {
            tesla: false,
            optimise: true,
            reinstrument: ReinstrumentPolicy::Naive,
            verify: true,
            model_check: false,
            lint: false,
            jobs: 0,
        }
    }

    /// The TESLA toolchain, with the paper's naive re-instrumentation.
    pub fn tesla_toolchain() -> BuildOptions {
        BuildOptions {
            tesla: true,
            optimise: true,
            reinstrument: ReinstrumentPolicy::Naive,
            verify: true,
            model_check: false,
            lint: false,
            jobs: 0,
        }
    }

    /// The TESLA toolchain with the static model checker in front:
    /// proved-safe assertions are elided, definite violations become
    /// compile-time reports, everything else falls back to the
    /// dynamic instrumentation of [`tesla_toolchain`](Self::tesla_toolchain).
    pub fn static_toolchain() -> BuildOptions {
        BuildOptions {
            model_check: true,
            ..BuildOptions::tesla_toolchain()
        }
    }

    /// The incremental TESLA toolchain: shared automaton compile
    /// cache, delta-aware invalidation, parallel back-end.
    pub fn delta_toolchain() -> BuildOptions {
        BuildOptions {
            reinstrument: ReinstrumentPolicy::Delta,
            ..BuildOptions::tesla_toolchain()
        }
    }
}

/// Statistics from one build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Units (re)compiled front-end-side.
    pub compiled_units: usize,
    /// Units (re)instrumented.
    pub instrumented_units: usize,
    /// Total TIR instructions in the linked program.
    pub linked_insts: usize,
    /// Hooks inserted across re-instrumented units.
    pub hooks_inserted: usize,
    /// Assertion sites removed outright because the model checker
    /// proved them safe (summed across re-instrumented units).
    pub sites_elided: usize,
    /// Bytes of per-unit object code emitted (recompiled units in
    /// default mode; every re-instrumented unit in TESLA mode — the
    /// paper's per-file IR read/instrument/write cycle, §5.1/§7).
    pub object_bytes: usize,
}

/// Wall-clock per pipeline stage for one build — the breakdown behind
/// fig. 10's bar heights.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Front-end: parse + lower dirty units (and unit verification).
    pub frontend: Duration,
    /// Analyse: merge per-unit manifests program-wide.
    pub analyse: Duration,
    /// Static model checking (zero unless enabled).
    pub model_check: Duration,
    /// Per-unit back-end: instrument, optimise, emit objects.
    pub instrument: Duration,
    /// Link + linked-program verification.
    pub link: Duration,
}

/// A finished build.
pub struct BuildArtifacts {
    /// The linked (and, in TESLA mode, instrumented) program.
    pub program: Module,
    /// The merged program manifest (empty in default mode).
    pub manifest: Manifest,
    /// What the build did.
    pub stats: BuildStats,
    /// Per-assertion model-checker verdicts (empty unless
    /// [`BuildOptions::model_check`] was set).
    pub verdicts: Vec<AssertionReport>,
    /// Flow-insensitive static findings (dormant/unchecked/
    /// unsatisfiable assertions; empty unless `model_check` was set).
    pub findings: Vec<StaticFinding>,
    /// Specification-level lint findings (empty unless
    /// [`BuildOptions::lint`] was set).
    pub lints: Vec<LintFinding>,
    /// Per-stage wall-clock breakdown.
    pub timings: StageTimings,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The build's shared compile cache: automata and their compiled
    /// transition matrices, memoised by assertion content
    /// fingerprint. Engine registration resolves through it so
    /// subset construction runs once per build system, not once per
    /// engine.
    pub compile_cache: Arc<CompileCache>,
}

/// Build failure.
#[derive(Debug)]
pub enum BuildError {
    /// Front-end failure.
    Compile(String, tesla_cc::CompileError),
    /// Link failure.
    Link(String),
    /// Instrumentation failure.
    Instrument(tesla_instrument::InstrumentError),
    /// Static analysis failure (manifest compilation inside the model
    /// checker or the flow-insensitive checks).
    Analysis(String),
    /// Verifier rejection.
    Verify(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(file, e) => write!(f, "{file}: {e}"),
            BuildError::Link(e) => write!(f, "link: {e}"),
            BuildError::Instrument(e) => write!(f, "instrument: {e}"),
            BuildError::Analysis(e) => write!(f, "analysis: {e}"),
            BuildError::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The incremental build system.
pub struct BuildSystem {
    project: Project,
    options: BuildOptions,
    /// Per-unit front-end cache: file → (source fingerprint, output).
    unit_cache: HashMap<String, (u64, UnitOutput)>,
    /// Dirty files (explicitly touched since the last build).
    dirty: Vec<String>,
    /// Per-unit object cache: file → (source fp, instrumentation key,
    /// instrumented+optimised module). Modules are `Arc`-shared with
    /// the link step, so a cache hit is a pointer copy, not a deep
    /// clone.
    object_cache: HashMap<String, (u64, u64, Arc<Module>)>,
    /// Shared automaton compile cache (Delta mode): one compilation
    /// per assertion content fingerprint per program, ever.
    compile_cache: Arc<CompileCache>,
    /// Monotonic build counter (naive TESLA staleness key).
    build_seq: u64,
}

/// Serialise a unit's compiled form — the object-file emission cost
/// of the real toolchain (LLVM bitcode write, §5.1).
fn emit_object(m: &Module) -> usize {
    serde_json::to_string(m).map(|s| s.len()).unwrap_or(0)
}

/// One IR write+read round-trip between toolchain stages (the
/// `clang → .bc → instrumenter → .bc → opt` hand-offs of §4.2).
fn reload_ir(m: &Module) -> Result<Module, String> {
    let text = serde_json::to_string(m).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e: serde_json::Error| e.to_string())
}

fn fingerprint(s: &str) -> u64 {
    tesla_automata::fnv1a(s.as_bytes())
}

/// Fold the sorted elision set into a staleness key: a changed
/// verdict must invalidate cached objects even when manifest and
/// source fingerprints are unchanged (elision alters the woven
/// object). Hashes the ids directly — no formatting round-trip.
fn mix_elided(base: u64, elided: &HashSet<u32>) -> u64 {
    let mut ids: Vec<u32> = elided.iter().copied().collect();
    ids.sort_unstable();
    let mut h = Fnv64::new();
    h.write_u64(base);
    for id in ids {
        h.write_u32(id);
    }
    h.finish()
}

/// The per-unit Delta staleness key: a stable fingerprint of exactly
/// the inputs the weave of this unit depends on —
///
/// 1. plan entries whose function this unit defines (callee side) or
///    calls (caller side),
/// 2. field targets matching a store in this unit,
/// 3. the unit's own assertion sites: merged-manifest class id,
///    assertion content, and elision verdict.
///
/// Anything else provably cannot change the woven output of this unit
/// (the soundness argument is spelled out in DESIGN.md §10), so a key
/// match means the cached object is byte-identical to what a re-weave
/// would produce.
fn delta_key(
    plan: &WeavePlan,
    touch: &UnitTouchSet,
    manifest: &Manifest,
    unit_file: &str,
    elided: &HashSet<u32>,
) -> u64 {
    let mut h = Fnv64::new();
    for (name, side) in &plan.functions {
        if touch.function_relevant(name, *side) {
            h.write(name.as_bytes());
            h.write_u32(*side as u32);
        }
    }
    for target in &plan.fields {
        if touch.field_relevant(target) {
            h.write(target.0.as_bytes());
            h.write(&[0xfe]);
            h.write(target.1.as_bytes());
        }
    }
    for (idx, entry) in manifest.entries.iter().enumerate() {
        if entry.source_file == unit_file {
            let id = u32::try_from(idx).expect("more than u32::MAX assertions");
            h.write_u32(id);
            h.write_u64(entry.content_fingerprint());
            h.write(&[u8::from(elided.contains(&id))]);
        }
    }
    h.finish()
}

/// Map `f` over `items` on up to `jobs` scoped threads, preserving
/// order. Falls back to a plain serial loop for `jobs <= 1` or tiny
/// inputs. Results come back in item order, so callers can report the
/// first error deterministically, exactly as a serial loop would.
fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.min(n).max(1);
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk = n.div_ceil(jobs);
    std::thread::scope(|s| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
            s.spawn(|| {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *out = Some(f(slot.take().expect("slot filled exactly once")));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Output of weaving one unit in the Delta back-end.
struct WovenUnit {
    module: Arc<Module>,
    stats: InstrStats,
    object_bytes: usize,
}

impl BuildSystem {
    /// Create a build system over a project.
    pub fn new(project: Project, options: BuildOptions) -> BuildSystem {
        BuildSystem::with_compile_cache(project, options, Arc::new(CompileCache::new()))
    }

    /// Create a build system sharing an automaton compile cache —
    /// e.g. across the build systems of several test programs that
    /// assert the same properties.
    pub fn with_compile_cache(
        project: Project,
        options: BuildOptions,
        compile_cache: Arc<CompileCache>,
    ) -> BuildSystem {
        BuildSystem {
            project,
            options,
            unit_cache: HashMap::new(),
            dirty: Vec::new(),
            object_cache: HashMap::new(),
            compile_cache,
            build_seq: 0,
        }
    }

    /// The shared automaton compile cache (hit/miss counters are
    /// visible through it).
    pub fn compile_cache(&self) -> &Arc<CompileCache> {
        &self.compile_cache
    }

    /// Mark a file as edited (appends a comment so the fingerprint
    /// changes, like a save in an editor).
    pub fn touch(&mut self, file: &str) {
        if let Some(u) = self.project.units.iter_mut().find(|u| u.file == file) {
            u.source.push_str("\n// touched\n");
            self.dirty.push(file.to_string());
        }
    }

    /// Edit a file's source outright.
    pub fn edit(&mut self, file: &str, new_source: &str) {
        if let Some(u) = self.project.units.iter_mut().find(|u| u.file == file) {
            u.source = new_source.to_string();
            self.dirty.push(file.to_string());
        }
    }

    /// Worker threads to use in Delta mode.
    fn effective_jobs(&self) -> usize {
        match self.options.jobs {
            0 => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// Front-end: recompile units whose source fingerprint changed.
    /// Serial for Naive/Fingerprint (the paper's toolchain), fanned
    /// out for Delta.
    fn run_frontend(&mut self, stats: &mut BuildStats) -> Result<(), BuildError> {
        let changed: Vec<(String, String, u64)> = self
            .project
            .units
            .iter()
            .filter_map(|unit| {
                let fp = fingerprint(&unit.source);
                let cached = self.unit_cache.get(&unit.file).map(|(f, _)| *f);
                (cached != Some(fp)).then(|| (unit.file.clone(), unit.source.clone(), fp))
            })
            .collect();
        let jobs = if self.options.reinstrument == ReinstrumentPolicy::Delta {
            self.effective_jobs()
        } else {
            1
        };
        let verify_units = self.options.verify;
        let outputs = parallel_map(changed, jobs, |(file, source, fp)| {
            let out = tesla_cc::compile_unit(&source, &file)
                .map_err(|e| BuildError::Compile(file.clone(), e))?;
            if verify_units {
                verify(&out.module, Stage::Unit)
                    .map_err(|e| BuildError::Verify(format!("{file}: {e:?}")))?;
            }
            Ok::<(String, u64, UnitOutput), BuildError>((file, fp, out))
        });
        for result in outputs {
            let (file, fp, out) = result?;
            self.unit_cache.insert(file, (fp, out));
            stats.compiled_units += 1;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Back-end for Naive/Fingerprint: the paper's per-unit workflow,
    /// deliberately preserved — two IR round-trips per unit plus a
    /// re-load and re-parse of the merged `.tesla` text (§5.1, §7).
    fn weave_unit_naive(
        &self,
        unit_out: &UnitOutput,
        manifest_text: &str,
        elided: &HashSet<u32>,
        stats: &mut BuildStats,
    ) -> Result<Module, BuildError> {
        let mut m = reload_ir(&unit_out.module).map_err(BuildError::Link)?;
        let reloaded = Manifest::from_tesla(manifest_text)
            .map_err(|e| BuildError::Link(format!("manifest reload: {e}")))?;
        let st =
            instrument_with_elision(&mut m, &reloaded, elided).map_err(BuildError::Instrument)?;
        m = reload_ir(&m).map_err(BuildError::Link)?;
        stats.instrumented_units += 1;
        stats.hooks_inserted +=
            st.entry_hooks + st.exit_hooks + st.call_site_hooks + st.field_hooks;
        stats.sites_elided += st.sites_elided;
        Ok(m)
    }

    /// Run a build: full on first call, incremental afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] from any stage.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (a unit index out
    /// of range).
    pub fn build(&mut self) -> Result<BuildArtifacts, BuildError> {
        let t0 = Instant::now();
        let mut stats = BuildStats::default();
        let mut timings = StageTimings::default();

        let t = Instant::now();
        self.run_frontend(&mut stats)?;
        timings.frontend = t.elapsed();

        // Analyse: merge the per-unit manifests program-wide.
        let t = Instant::now();
        let manifest = if self.options.tesla {
            let per_unit: Vec<&Manifest> = self
                .project
                .units
                .iter()
                .map(|u| &self.unit_cache[&u.file].1.manifest)
                .collect();
            Manifest::merge_refs(&per_unit)
        } else {
            Manifest::new()
        };
        // Specification-level lints run straight off the merged
        // manifest: they concern the assertions themselves, so they
        // need no program analysis and report before any weaving.
        let lints: Vec<LintFinding> = if self.options.tesla && self.options.lint {
            lint_manifest(&manifest).map_err(BuildError::Analysis)?
        } else {
            Vec::new()
        };
        timings.analyse = t.elapsed();

        // Static analysis: model-check the *pristine* (un-instrumented)
        // program against the merged manifest. Elision decisions are
        // whole-program facts, so the checker must see the linked
        // flow graph, not any single unit.
        let t = Instant::now();
        let mut verdicts: Vec<AssertionReport> = Vec::new();
        let mut findings: Vec<StaticFinding> = Vec::new();
        let mut elided: HashSet<u32> = HashSet::new();
        if self.options.tesla && self.options.model_check {
            let pristine: Vec<&Module> = self
                .project
                .units
                .iter()
                .map(|u| &self.unit_cache[&u.file].1.module)
                .collect();
            let analysis = Module::link_refs(&pristine, "analysis").map_err(BuildError::Link)?;
            verdicts = model_check(&analysis, &manifest).map_err(BuildError::Analysis)?;
            findings = static_check(&analysis, &manifest).map_err(BuildError::Analysis)?;
            elided = verdicts
                .iter()
                .filter(|r| r.verdict.elidable())
                .map(|r| r.class)
                .collect();
        }
        timings.model_check = t.elapsed();

        // Per-unit back-end: instrument (TESLA) → optimise → emit
        // object code. This mirrors the paper's per-file workflow
        // (clang -O0 → instrument → opt -O2 → .o); objects are cached
        // so the default toolchain's incremental rebuild only re-does
        // the dirty unit, while the naive TESLA toolchain re-does
        // every unit on any change (§5.1).
        let t = Instant::now();
        let modules =
            if self.options.tesla && self.options.reinstrument == ReinstrumentPolicy::Delta {
                self.backend_delta(&manifest, &elided, &mut stats)?
            } else {
                self.backend_serial(&manifest, &elided, &mut stats)?
            };
        timings.instrument = t.elapsed();

        // Link (cheap relative to the per-unit work, as in a real
        // toolchain).
        let t = Instant::now();
        let refs: Vec<&Module> = modules.iter().map(Arc::as_ref).collect();
        let program = Module::link_refs(&refs, "program").map_err(BuildError::Link)?;
        if self.options.verify {
            verify(&program, Stage::Linked)
                .map_err(|e| BuildError::Verify(format!("linked: {:?}", e.first().unwrap())))?;
        }
        timings.link = t.elapsed();
        stats.linked_insts = program.n_insts();
        Ok(BuildArtifacts {
            program,
            manifest,
            stats,
            verdicts,
            findings,
            lints,
            timings,
            elapsed: t0.elapsed(),
            compile_cache: Arc::clone(&self.compile_cache),
        })
    }

    /// Naive/Fingerprint (and non-TESLA) back-end: one staleness key
    /// for the whole program, serial per-unit loop. The merged
    /// `.tesla` text is only rendered when some unit actually needs
    /// re-weaving — a fully cached build serialises nothing.
    fn backend_serial(
        &mut self,
        manifest: &Manifest,
        elided: &HashSet<u32>,
        stats: &mut BuildStats,
    ) -> Result<Vec<Arc<Module>>, BuildError> {
        let manifest_key = if self.options.tesla {
            let base = match self.options.reinstrument {
                ReinstrumentPolicy::Naive => {
                    // The combined .tesla file was just regenerated:
                    // every object is considered stale.
                    self.build_seq += 1;
                    self.build_seq
                }
                ReinstrumentPolicy::Fingerprint | ReinstrumentPolicy::Delta => {
                    manifest.fingerprint()
                }
            };
            mix_elided(base, elided)
        } else {
            0
        };
        let mut modules: Vec<Arc<Module>> = Vec::with_capacity(self.project.units.len());
        // The paper's implementation "re-load[s], re-pars[es], and
        // re-interpret[s] the same TESLA automaton description for
        // every LLVM IR file it instruments" (§7) — reproduce that
        // honestly: each stale unit re-reads the merged .tesla text.
        let mut manifest_text: Option<String> = None;
        for u in &self.project.units {
            let (src_fp, unit_out) = &self.unit_cache[&u.file];
            let cached = self
                .object_cache
                .get(&u.file)
                .filter(|(sfp, mfp, _)| sfp == src_fp && *mfp == manifest_key);
            if let Some((_, _, obj)) = cached {
                modules.push(Arc::clone(obj));
                continue;
            }
            let mut m;
            if self.options.tesla {
                // The TESLA workflow adds pipeline stages (§5.1):
                // clang emits IR, the standalone instrumenter re-reads
                // it, instruments, writes it back, and opt re-reads
                // that. Model the two extra IR round-trips honestly.
                let text = manifest_text.get_or_insert_with(|| manifest.to_tesla());
                m = self.weave_unit_naive(unit_out, text, elided, stats)?;
            } else {
                // Without the TESLA toolchain the assertion macros
                // expand to nothing: drop the placeholders.
                m = unit_out.module.clone();
                for f in &mut m.functions {
                    for b in &mut f.blocks {
                        b.insts
                            .retain(|i| !matches!(i, tesla_ir::Inst::TeslaPseudoAssert { .. }));
                    }
                }
            }
            if self.options.optimise {
                optimise(&mut m, &InlineOptions::default());
            }
            stats.object_bytes += emit_object(&m);
            let m = Arc::new(m);
            self.object_cache
                .insert(u.file.clone(), (*src_fp, manifest_key, Arc::clone(&m)));
            modules.push(m);
        }
        Ok(modules)
    }

    /// Delta back-end: compile the merged manifest once through the
    /// shared cache, key each unit by the plan slice that can touch
    /// it, and re-weave only stale units — in parallel. No IR
    /// round-trips, no manifest re-parse: the woven output is
    /// identical to the naive path's because the round-trips are
    /// serialisation identities (see `tests/build_modes.rs`).
    fn backend_delta(
        &mut self,
        manifest: &Manifest,
        elided: &HashSet<u32>,
        stats: &mut BuildStats,
    ) -> Result<Vec<Arc<Module>>, BuildError> {
        let automata: Vec<Arc<Automaton>> = self
            .compile_cache
            .compile_manifest(manifest)
            .map_err(|(name, e)| BuildError::Analysis(format!("{name}: {e}")))?;
        let plan = weave_plan(&automata, elided);

        // Partition into cache hits and stale units.
        let mut modules: Vec<Option<Arc<Module>>> = vec![None; self.project.units.len()];
        let mut stale: Vec<(usize, String, u64, u64)> = Vec::new();
        for (idx, u) in self.project.units.iter().enumerate() {
            let (src_fp, unit_out) = &self.unit_cache[&u.file];
            let touch = unit_touch_set(&unit_out.module);
            let key = delta_key(&plan, &touch, manifest, &u.file, elided);
            match self
                .object_cache
                .get(&u.file)
                .filter(|(sfp, dkey, _)| sfp == src_fp && *dkey == key)
            {
                Some((_, _, obj)) => modules[idx] = Some(Arc::clone(obj)),
                None => stale.push((idx, u.file.clone(), *src_fp, key)),
            }
        }

        // Re-weave stale units across worker threads. Everything the
        // workers read (pristine modules, manifest, shared automata)
        // is immutable here; results are folded back in unit order so
        // error reporting matches the serial toolchain.
        let optimise_objects = self.options.optimise;
        let unit_cache = &self.unit_cache;
        let woven = parallel_map(stale, self.effective_jobs(), |(idx, file, src_fp, key)| {
            let (_, unit_out) = &unit_cache[&file];
            let mut m = unit_out.module.clone();
            let st = instrument_precompiled(&mut m, manifest, &automata, elided)
                .map_err(BuildError::Instrument)?;
            if optimise_objects {
                optimise(&mut m, &InlineOptions::default());
            }
            let object_bytes = emit_object(&m);
            Ok::<_, BuildError>((
                idx,
                file,
                src_fp,
                key,
                WovenUnit {
                    module: Arc::new(m),
                    stats: st,
                    object_bytes,
                },
            ))
        });
        for result in woven {
            let (idx, file, src_fp, key, unit) = result?;
            stats.instrumented_units += 1;
            stats.hooks_inserted += unit.stats.entry_hooks
                + unit.stats.exit_hooks
                + unit.stats.call_site_hooks
                + unit.stats.field_hooks;
            stats.sites_elided += unit.stats.sites_elided;
            stats.object_bytes += unit.object_bytes;
            self.object_cache
                .insert(file, (src_fp, key, Arc::clone(&unit.module)));
            modules[idx] = Some(unit.module);
        }
        Ok(modules
            .into_iter()
            .map(|m| m.expect("every unit is cached or woven"))
            .collect())
    }
}

/// Run a built program under the interpreter with a libtesla engine
/// attached: registers the manifest's automata and bridges hooks.
///
/// # Errors
///
/// Returns the interpreter error (including TESLA violations) as a
/// string.
pub fn run_with_tesla(
    artifacts: &BuildArtifacts,
    tesla: &Tesla,
    entry: &str,
    args: &[i64],
    fuel: u64,
) -> Result<i64, String> {
    // Register once per engine: repeated runs reuse the classes whose
    // ids the instrumenter baked into `TeslaSite` instructions.
    // `register_manifest` registers the whole manifest as one batch,
    // so the engine publishes a single dispatch snapshot — hooks on
    // other threads see either no classes or all of them, never a
    // partially registered manifest.
    if tesla.n_classes() == 0 {
        register_manifest_cached(tesla, &artifacts.manifest, &artifacts.compile_cache)?;
    }
    // Surface the static checker's elision work in the run's metrics:
    // `tesla_sites_elided` in a Prometheus scrape is the count of
    // instrumentation sites this very build proved unnecessary.
    tesla
        .metrics()
        .set_sites_elided(artifacts.stats.sites_elided as u64);
    let mut sink = RuntimeSink::new(tesla);
    let mut interp = Interp::new(&artifacts.program, fuel);
    interp
        .run_named(entry, args, &mut sink)
        .map_err(|e| e.to_string())
}

/// [`run_with_tesla`], with every hook event teed into a JSONL trace
/// (the `tesla run --record` path). The trace is finalised even when
/// the run fail-stops, so a violating run's offending event is the
/// recording's last line and `tesla replay` reproduces the verdict.
///
/// # Errors
///
/// The interpreter error (including TESLA violations), or a trace
/// write failure, as a string.
pub fn run_with_tesla_recorded(
    artifacts: &BuildArtifacts,
    tesla: &Tesla,
    entry: &str,
    args: &[i64],
    fuel: u64,
    trace_out: &mut dyn std::io::Write,
) -> Result<i64, String> {
    if tesla.n_classes() == 0 {
        register_manifest_cached(tesla, &artifacts.manifest, &artifacts.compile_cache)?;
    }
    tesla
        .metrics()
        .set_sites_elided(artifacts.stats.sites_elided as u64);
    let mut sink = RecordingSink::new(RuntimeSink::new(tesla), trace_out);
    let mut interp = Interp::new(&artifacts.program, fuel);
    let run = interp
        .run_named(entry, args, &mut sink)
        .map_err(|e| e.to_string());
    let finished = sink.finish().map(|_| ());
    let value = run?;
    finished?;
    Ok(value)
}

/// Why a replay failed: setup (build/registration) versus the event
/// stream itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// Registering the manifest's automata failed.
    Setup(String),
    /// The drain stopped: transport/framing failure or a violation.
    Drive(DriveError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Setup(e) => write!(f, "{e}"),
            ReplayError::Drive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Drive a recorded or live event stream into a libtesla engine
/// against the same build artifacts a live run would use: the
/// `tesla replay` / `tesla attach` path. Registration and metrics
/// seeding match [`run_with_tesla`] exactly, so a replayed run's
/// verdicts and counters are comparable byte for byte with the live
/// run that produced the trace.
///
/// # Errors
///
/// [`ReplayError`] — registration failures, positioned stream
/// diagnostics, or the first violation (in fail-stop mode).
pub fn replay_with_tesla(
    artifacts: &BuildArtifacts,
    tesla: &Tesla,
    source: &mut dyn EventSource,
) -> Result<IngressStats, ReplayError> {
    if tesla.n_classes() == 0 {
        register_manifest_cached(tesla, &artifacts.manifest, &artifacts.compile_cache).map_err(ReplayError::Setup)?;
    }
    tesla
        .metrics()
        .set_sites_elided(artifacts.stats.sites_elided as u64);
    tesla.drive(source).map_err(ReplayError::Drive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_ir::NullSink;

    fn two_unit_project() -> Project {
        Project::from_sources(&[
            (
                "lib.c",
                "int check(int x) { return 0; }\n\
                 int helper(int x) { return x + 1; }",
            ),
            (
                "main.c",
                "int check(int x);\n\
                 int helper(int x);\n\
                 int main(int x) {\n\
                     check(x);\n\
                     TESLA_WITHIN(main, previously(check(x) == 0));\n\
                     return helper(x);\n\
                 }",
            ),
        ])
    }

    #[test]
    fn default_build_runs_without_tesla_stages() {
        let mut bs = BuildSystem::new(
            Project::from_sources(&[("a.c", "int main(int x) { return x * 2; }")]),
            BuildOptions::default_toolchain(),
        );
        let art = bs.build().unwrap();
        assert_eq!(art.stats.instrumented_units, 0);
        let mut i = Interp::new(&art.program, 10_000);
        assert_eq!(i.run_named("main", &[21], &mut NullSink).unwrap(), 42);
    }

    #[test]
    fn tesla_build_instruments_and_enforces() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 2);
        assert_eq!(art.stats.instrumented_units, 2);
        assert_eq!(art.manifest.entries.len(), 1);
        let t = Tesla::with_defaults();
        assert_eq!(run_with_tesla(&art, &t, "main", &[5], 100_000).unwrap(), 6);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn violation_surfaces_through_the_pipeline() {
        let mut bs = BuildSystem::new(
            Project::from_sources(&[(
                "main.c",
                "int check(int x) { return 1; }\n\
                 int main(int x) {\n\
                     check(x);\n\
                     TESLA_WITHIN(main, previously(check(x) == 0));\n\
                     return 0;\n\
                 }",
            )]),
            BuildOptions::tesla_toolchain(),
        );
        let art = bs.build().unwrap();
        let t = Tesla::with_defaults();
        let err = run_with_tesla(&art, &t, "main", &[5], 100_000).unwrap_err();
        assert!(err.contains("TESLA"), "{err}");
    }

    #[test]
    fn recorded_pipeline_run_replays_identically() {
        use tesla_runtime::telemetry::export;
        use tesla_runtime::JsonlSource;

        // Passing and violating programs: both must round-trip.
        for (check_ret, violates) in [(0i64, false), (1, true)] {
            let mut bs = BuildSystem::new(
                Project::from_sources(&[(
                    "main.c",
                    &format!(
                        "int check(int x) {{ return {check_ret}; }}\n\
                         int main(int x) {{\n\
                             check(x);\n\
                             TESLA_WITHIN(main, previously(check(x) == 0));\n\
                             return 0;\n\
                         }}"
                    ),
                )]),
                BuildOptions::tesla_toolchain(),
            );
            let art = bs.build().unwrap();

            // Live run in Log mode (drains fully even when violating),
            // teed to an in-memory trace.
            let live = Tesla::new(tesla_runtime::Config {
                fail_mode: tesla_runtime::FailMode::Log,
                ..tesla_runtime::Config::default()
            });
            let mut trace = Vec::new();
            run_with_tesla_recorded(&art, &live, "main", &[5], 100_000, &mut trace).unwrap();
            assert_eq!(live.violations().len(), usize::from(violates));

            // Replay into a fresh engine through the pipeline's replay
            // entry point: identical violations and counters.
            let replayed = Tesla::new(tesla_runtime::Config {
                fail_mode: tesla_runtime::FailMode::Log,
                ..tesla_runtime::Config::default()
            });
            let mut src = JsonlSource::new(&trace[..]);
            let stats = replay_with_tesla(&art, &replayed, &mut src).unwrap();
            assert!(stats.events > 0);

            let viols = |t: &Tesla| {
                t.violations()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            };
            assert_eq!(viols(&live), viols(&replayed));
            // Latency-free counter exports are byte-identical: the
            // replay drove the very same event stream.
            assert_eq!(
                export::json_counters(&live.metrics().snapshot()),
                export::json_counters(&replayed.metrics().snapshot())
            );
        }
    }

    #[test]
    fn malformed_trace_is_a_positioned_replay_error() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::tesla_toolchain());
        let art = bs.build().unwrap();
        let t = Tesla::with_defaults();
        let text = format!(
            "{}\n{{\"ev\":\"fn_entry\",\"fn\":\"main\",\"args\":[5]}}\nnot json\n",
            tesla_runtime::ingress::TRACE_HEADER
        );
        let mut src = tesla_runtime::JsonlSource::new(text.as_bytes());
        match replay_with_tesla(&art, &t, &mut src).unwrap_err() {
            ReplayError::Drive(DriveError::Source(
                tesla_runtime::IngressError::Malformed { line, .. },
                stats,
            )) => {
                assert_eq!(line, 3);
                assert_eq!(stats.events, 1);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn incremental_default_recompiles_only_dirty() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::default_toolchain());
        bs.build().unwrap();
        bs.touch("lib.c");
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 1);
        assert_eq!(art.stats.instrumented_units, 0);
    }

    #[test]
    fn incremental_tesla_naively_reinstruments_everything() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::tesla_toolchain());
        bs.build().unwrap();
        bs.touch("lib.c");
        let art = bs.build().unwrap();
        // One unit recompiled, but *all* units re-instrumented.
        assert_eq!(art.stats.compiled_units, 1);
        assert_eq!(art.stats.instrumented_units, 2);
    }

    #[test]
    fn no_op_build_is_fully_cached() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::default_toolchain());
        bs.build().unwrap();
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 0);
    }

    #[test]
    fn optimised_and_unoptimised_agree() {
        for optimise in [false, true] {
            let mut bs = BuildSystem::new(
                two_unit_project(),
                BuildOptions {
                    optimise,
                    ..BuildOptions::tesla_toolchain()
                },
            );
            let art = bs.build().unwrap();
            let t = Tesla::with_defaults();
            assert_eq!(run_with_tesla(&art, &t, "main", &[7], 100_000).unwrap(), 8);
        }
    }

    #[test]
    fn delta_build_instruments_and_enforces() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::delta_toolchain());
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 2);
        assert_eq!(art.stats.instrumented_units, 2);
        let t = Tesla::with_defaults();
        assert_eq!(run_with_tesla(&art, &t, "main", &[5], 100_000).unwrap(), 6);
        assert!(t.violations().is_empty());
        // One assertion, compiled exactly once.
        assert_eq!(bs.compile_cache().misses(), 1);
    }

    #[test]
    fn delta_touch_of_unrelated_unit_reweaves_only_it() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::delta_toolchain());
        bs.build().unwrap();
        bs.touch("lib.c");
        let art = bs.build().unwrap();
        // `lib.c` recompiled and re-woven (its source changed); the
        // plan it sees is unchanged, so main.c's object is reused.
        assert_eq!(art.stats.compiled_units, 1);
        assert_eq!(art.stats.instrumented_units, 1);
    }

    #[test]
    fn delta_noop_rebuild_is_fully_cached() {
        let mut bs = BuildSystem::new(two_unit_project(), BuildOptions::delta_toolchain());
        bs.build().unwrap();
        let misses = bs.compile_cache().misses();
        let art = bs.build().unwrap();
        assert_eq!(art.stats.compiled_units, 0);
        assert_eq!(art.stats.instrumented_units, 0);
        // The rebuild re-used the shared automata: no new compiles.
        assert_eq!(bs.compile_cache().misses(), misses);
        assert!(bs.compile_cache().hits() > 0);
    }

    #[test]
    fn delta_serial_and_parallel_agree() {
        let mut serial = BuildSystem::new(
            two_unit_project(),
            BuildOptions {
                jobs: 1,
                ..BuildOptions::delta_toolchain()
            },
        );
        let mut parallel = BuildSystem::new(
            two_unit_project(),
            BuildOptions {
                jobs: 4,
                ..BuildOptions::delta_toolchain()
            },
        );
        let a = serial.build().unwrap();
        let b = parallel.build().unwrap();
        assert_eq!(a.program, b.program);
        assert_eq!(a.stats, b.stats);
    }
}
