//! Automaton algebra for specification-level static analysis.
//!
//! The runtime asks "did *this* trace satisfy the assertion?"; the
//! `tesla lint` pass asks questions about *all* traces: can the
//! assertion ever fail (vacuity)? can it ever pass (contradiction)?
//! does one assertion's language contain another's (subsumption)? The
//! classical toolkit for such questions is the DFA algebra —
//! complement, synchronized product, emptiness, language inclusion and
//! minimisation — which this module implements over a small
//! *complete* DFA representation ([`CompleteDfa`]).
//!
//! # The within-bound word model
//!
//! TESLA automata are not interpreted over raw regular languages but
//! over the instance lifecycle of §3.3/§4.4: an instance is created at
//! «init», observes the events it references, and is finalised at
//! «cleanup». The [`Closure`] construction reifies that lifecycle as
//! an ordinary complete DFA so the algebra applies:
//!
//! * **ignore semantics** — an event with no outgoing transition from
//!   the current state set is ignored (self-loop) unless the automaton
//!   is `strict` (then the run dies);
//! * **site failure** — the assertion-site event with no transition is
//!   a violation: the run moves to an explicit non-accepting *sink*;
//! * **bound-relative feasibility** — a body symbol that aliases the
//!   bound's own «init»/«cleanup» event (same function, same
//!   direction) cannot occur strictly inside a non-recursive
//!   activation and is excluded from the alphabet by
//!   [`body_alphabet`];
//! * **single-activation words** — each word models one activation in
//!   which the assertion site is evaluated at most once; a second
//!   site event self-loops in the closure and is never sampled by the
//!   word oracles.
//!
//! A closure state *accepts* iff finalising there would pass
//! ([`Automaton::finalise_ok`]), so the closure's language is the set
//! of event sequences the assertion tolerates. Vacuity is then
//! emptiness of the complement, contradiction is emptiness of the
//! acceptance-reachability variant, and subsumption is inclusion via
//! product-with-complement over the shared alphabet.
//!
//! Guards (`incallstack`) are data-dependent and have no sound
//! closed-form here; automata containing guards are excluded from
//! these verdicts by the lint pass (see [`has_guards`]).

use crate::automaton::Automaton;
use crate::bitset::StateSet;
use crate::dfa::Dfa;
use crate::symbol::{SymbolId, SymbolKind};
use std::collections::{HashMap, VecDeque};

/// A complete deterministic finite automaton over an abstract column
/// alphabet `0..n_syms`: every state has exactly one successor per
/// column, so complement and product are total operations.
#[derive(Debug, Clone)]
pub struct CompleteDfa {
    /// Number of alphabet columns.
    pub n_syms: usize,
    /// `transitions[state][column]` → successor state (always
    /// present: the DFA is complete).
    pub transitions: Vec<Vec<u32>>,
    /// Start state.
    pub start: u32,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl CompleteDfa {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.transitions.len()
    }

    /// Run a word of column indices and report acceptance.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut s = self.start;
        for &c in word {
            s = self.transitions[s as usize][c];
        }
        self.accepting[s as usize]
    }

    /// The same automaton with acceptance flipped: recognises exactly
    /// the complement language.
    pub fn complement(&self) -> CompleteDfa {
        CompleteDfa {
            n_syms: self.n_syms,
            transitions: self.transitions.clone(),
            start: self.start,
            accepting: self.accepting.iter().map(|a| !a).collect(),
        }
    }

    /// Synchronized product: both automata consume each column in
    /// lock-step; a product state accepts iff `join` of the component
    /// acceptances holds (`&&` for intersection, `||` for union).
    /// Only product states reachable from the joint start are built.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets have different sizes — callers must
    /// align columns first (see [`union_alphabet`]).
    pub fn product(&self, other: &CompleteDfa, join: impl Fn(bool, bool) -> bool) -> CompleteDfa {
        assert_eq!(
            self.n_syms, other.n_syms,
            "product over mismatched alphabets"
        );
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pairs = vec![(self.start, other.start)];
        index.insert((self.start, other.start), 0);
        let mut transitions: Vec<Vec<u32>> = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let (x, y) = pairs[i];
            let mut row = Vec::with_capacity(self.n_syms);
            for c in 0..self.n_syms {
                let nx = self.transitions[x as usize][c];
                let ny = other.transitions[y as usize][c];
                let ni = *index.entry((nx, ny)).or_insert_with(|| {
                    pairs.push((nx, ny));
                    pairs.len() as u32 - 1
                });
                row.push(ni);
            }
            transitions.push(row);
            accepting.push(join(
                self.accepting[x as usize],
                other.accepting[y as usize],
            ));
            i += 1;
        }
        CompleteDfa {
            n_syms: self.n_syms,
            transitions,
            start: 0,
            accepting,
        }
    }

    /// States reachable from the start.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.n_states()];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        while let Some(s) = queue.pop_front() {
            for &t in &self.transitions[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// Is the language empty (no accepting state reachable)?
    pub fn is_empty(&self) -> bool {
        self.find_accepted_word().is_none()
    }

    /// A shortest accepted word (BFS), or `None` if the language is
    /// empty. Used both for emptiness and as a witness for
    /// diagnostics.
    pub fn find_accepted_word(&self) -> Option<Vec<usize>> {
        let n = self.n_states();
        let mut parent: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        let mut hit = if self.accepting[self.start as usize] {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = queue.pop_front() {
            for (c, &t) in self.transitions[s as usize].iter().enumerate() {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, c));
                    if self.accepting[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut word = Vec::new();
        let mut s = hit?;
        while let Some((p, c)) = parent[s as usize] {
            word.push(c);
            s = p;
        }
        word.reverse();
        Some(word)
    }

    /// Language inclusion via product-with-complement: does this
    /// automaton's language contain `other`'s? `L(other) ⊆ L(self)`
    /// iff `L(other) ∩ ¬L(self)` is empty.
    pub fn includes(&self, other: &CompleteDfa) -> bool {
        other.product(&self.complement(), |a, b| a && b).is_empty()
    }

    /// A word accepted by `other` but not by `self`, if any — the
    /// counterexample to [`CompleteDfa::includes`].
    pub fn inclusion_counterexample(&self, other: &CompleteDfa) -> Option<Vec<usize>> {
        other
            .product(&self.complement(), |a, b| a && b)
            .find_accepted_word()
    }

    /// Minimise with the initial partition derived from acceptance
    /// alone. See [`CompleteDfa::minimise_classes`].
    pub fn minimise(&self) -> (CompleteDfa, Vec<u32>) {
        let classes: Vec<u32> = self.accepting.iter().map(|&a| u32::from(a)).collect();
        self.minimise_classes(&classes)
    }

    /// Hopcroft-style minimisation: drop unreachable states, then
    /// refine the initial partition (states with equal `classes`
    /// values start in the same block) with a splitter worklist until
    /// no block is split by any (block, column) preimage.
    ///
    /// Returns the minimal DFA and a map from original state index to
    /// minimised state index (`u32::MAX` for unreachable originals).
    /// Two originals mapping to the same index are behaviourally
    /// indistinguishable.
    pub fn minimise_classes(&self, classes: &[u32]) -> (CompleteDfa, Vec<u32>) {
        let reach = self.reachable();
        let dense: Vec<u32> = {
            let mut next = 0;
            reach
                .iter()
                .map(|&r| {
                    if r {
                        next += 1;
                        next - 1
                    } else {
                        u32::MAX
                    }
                })
                .collect()
        };
        let orig: Vec<usize> = (0..self.n_states()).filter(|&i| reach[i]).collect();
        let n = orig.len();

        // Inverse transition table over the trimmed automaton:
        // inv[c][t] = sources with an edge on column c into t.
        let mut inv: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; self.n_syms];
        for (di, &oi) in orig.iter().enumerate() {
            for c in 0..self.n_syms {
                let t = dense[self.transitions[oi][c] as usize];
                inv[c][t as usize].push(di as u32);
            }
        }

        // Initial partition by class value.
        let mut block_of: Vec<usize> = Vec::with_capacity(n);
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        {
            let mut by_class: HashMap<u32, usize> = HashMap::new();
            for (di, &oi) in orig.iter().enumerate() {
                let b = *by_class.entry(classes[oi]).or_insert_with(|| {
                    blocks.push(Vec::new());
                    blocks.len() - 1
                });
                block_of.push(b);
                blocks[b].push(di as u32);
            }
        }

        // Splitter worklist: every (block, column) pair is a candidate
        // splitter initially; each split pushes the smaller half.
        let mut work: VecDeque<(usize, usize)> = (0..blocks.len())
            .flat_map(|b| (0..self.n_syms).map(move |c| (b, c)))
            .collect();
        while let Some((a, c)) = work.pop_front() {
            // Preimage of block `a` under column `c`.
            let mut pre: Vec<u32> = Vec::new();
            for &s in &blocks[a] {
                pre.extend_from_slice(&inv[c][s as usize]);
            }
            if pre.is_empty() {
                continue;
            }
            let mut in_pre = vec![false; n];
            for &s in &pre {
                in_pre[s as usize] = true;
            }
            // Find blocks cut by the preimage and split them.
            let mut touched: Vec<usize> = pre.iter().map(|&s| block_of[s as usize]).collect();
            touched.sort_unstable();
            touched.dedup();
            for y in touched {
                let (inside, outside): (Vec<u32>, Vec<u32>) =
                    blocks[y].iter().partition(|&&s| in_pre[s as usize]);
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Keep the larger half in place, give the smaller a
                // new block id, and queue the smaller as a splitter.
                let (keep, moved) = if inside.len() <= outside.len() {
                    (outside, inside)
                } else {
                    (inside, outside)
                };
                let new_id = blocks.len();
                for &s in &moved {
                    block_of[s as usize] = new_id;
                }
                blocks[y] = keep;
                blocks.push(moved);
                for c2 in 0..self.n_syms {
                    work.push_back((new_id, c2));
                }
            }
        }

        // Rebuild, numbering blocks in order of first appearance over
        // the dense state walk so the result is deterministic and the
        // start lands on a stable index.
        let mut renum = vec![usize::MAX; blocks.len()];
        let mut order = Vec::new();
        for di in 0..n {
            let b = block_of[di];
            if renum[b] == usize::MAX {
                renum[b] = order.len();
                order.push(b);
            }
        }
        let n_blocks = order.len();
        let mut transitions = vec![vec![0u32; self.n_syms]; n_blocks];
        let mut accepting = vec![false; n_blocks];
        for (di, &oi) in orig.iter().enumerate() {
            let b = renum[block_of[di]];
            accepting[b] |= self.accepting[oi];
            for c in 0..self.n_syms {
                let t = dense[self.transitions[oi][c] as usize];
                transitions[b][c] = renum[block_of[t as usize]] as u32;
            }
        }
        let map: Vec<u32> = (0..self.n_states())
            .map(|oi| {
                if reach[oi] {
                    renum[block_of[dense[oi] as usize]] as u32
                } else {
                    u32::MAX
                }
            })
            .collect();
        let start = map[self.start as usize];
        (
            CompleteDfa {
                n_syms: self.n_syms,
                transitions,
                start,
                accepting,
            },
            map,
        )
    }
}

/// Does any transition of `a` carry a guard? Guarded automata are
/// excluded from language-level lint verdicts: whether a guard holds
/// is data-dependent, so no sound "always"/"never" claim is possible.
pub fn has_guards(a: &Automaton) -> bool {
    a.transitions.iter().any(|t| t.guard.is_some())
}

/// Does `kind` alias one of the bound's own events (same function and
/// direction as «init» or «cleanup»)? Such a symbol cannot occur
/// strictly inside a non-recursive bound activation: the activation
/// starts immediately *after* the «init» event and ends *at* the
/// «cleanup» event.
pub fn aliases_bound(a: &Automaton, kind: &SymbolKind) -> bool {
    let SymbolKind::Function {
        name, direction, ..
    } = kind
    else {
        return false;
    };
    let b = &a.bound;
    (name == &b.start_fn && *direction == b.start_dir)
        || (name == &b.end_fn && *direction == b.end_dir)
}

/// The feasible body alphabet of `a`: every symbol kind except the
/// «init»/«cleanup» pseudo-symbols and bound-aliased function events
/// (see [`aliases_bound`]). The site symbol is included; it is the
/// distinguished column shared between automata when alphabets are
/// aligned. Order follows the automaton's symbol table.
pub fn body_alphabet(a: &Automaton) -> Vec<SymbolKind> {
    a.symbols
        .iter()
        .filter(|s| !matches!(s.kind, SymbolKind::BoundStart | SymbolKind::BoundEnd))
        .filter(|s| !aliases_bound(a, &s.kind))
        .map(|s| s.kind.clone())
        .collect()
}

/// The union of two automata's feasible body alphabets, deduplicated
/// by kind equality. Both automata's assertion sites are identified
/// as the single shared [`SymbolKind::Site`] column: subsumption
/// compares what each assertion *checks*, not where it is spelled.
pub fn union_alphabet(a: &Automaton, b: &Automaton) -> Vec<SymbolKind> {
    let mut alphabet = body_alphabet(a);
    for kind in body_alphabet(b) {
        if !alphabet.contains(&kind) {
            alphabet.push(kind);
        }
    }
    alphabet
}

/// One state of a [`Closure`]: the NFA subset an instance may occupy
/// plus the single-activation phase (has the site event happened?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosureState {
    /// NFA states (empty for the sink).
    pub set: StateSet,
    /// Has the assertion-site event been consumed?
    pub site_done: bool,
    /// Is this the failure sink?
    pub is_sink: bool,
}

/// The complete-DFA closure of one automaton over an explicit column
/// alphabet, under the within-bound word model described in the
/// module docs. `dfa.accepting` marks *pass* states: finalising the
/// instance there does not raise a violation.
#[derive(Debug, Clone)]
pub struct Closure<'a> {
    /// The automaton this closure interprets.
    pub automaton: &'a Automaton,
    /// Column kinds (the site column is [`SymbolKind::Site`]).
    pub alphabet: Vec<SymbolKind>,
    /// Index of the site column in `alphabet`.
    pub site_col: usize,
    /// The closure as a complete DFA; accepting = pass.
    pub dfa: CompleteDfa,
    /// Per closure state, does the subset contain an NFA-accepting
    /// state? (Acceptance reachability = "the assertion can complete
    /// its behaviour", the contradiction lint's criterion.)
    pub nfa_accepting: Vec<bool>,
    /// Book-keeping per DFA state.
    pub states: Vec<ClosureState>,
    /// Column → this automaton's symbol, `None` for foreign columns
    /// (which self-loop: the automaton never observes them).
    pub cols: Vec<Option<SymbolId>>,
}

impl<'a> Closure<'a> {
    /// Build the closure of `automaton` over `alphabet`.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` has no [`SymbolKind::Site`] column.
    pub fn build(automaton: &'a Automaton, alphabet: &[SymbolKind]) -> Closure<'a> {
        let site_col = alphabet
            .iter()
            .position(|k| matches!(k, SymbolKind::Site))
            .expect("closure alphabet must contain the site column");
        let cols: Vec<Option<SymbolId>> = alphabet
            .iter()
            .map(|kind| {
                automaton
                    .symbols
                    .iter()
                    .find(|s| &s.kind == kind)
                    .map(|s| s.id)
            })
            .collect();

        let sink = ClosureState {
            set: StateSet::EMPTY,
            site_done: false,
            is_sink: true,
        };
        let mut states = vec![ClosureState {
            set: automaton.initial_states(),
            site_done: false,
            is_sink: false,
        }];
        let mut index: HashMap<(StateSet, bool), u32> = HashMap::new();
        index.insert((states[0].set, false), 0);
        let mut sink_idx: Option<u32> = None;
        let mut transitions: Vec<Vec<u32>> = Vec::new();
        let mut i = 0;
        while i < states.len() {
            let cur = states[i];
            let mut row = Vec::with_capacity(alphabet.len());
            for (c, col) in cols.iter().enumerate() {
                let target = if cur.is_sink {
                    cur
                } else {
                    match col {
                        None => cur,
                        Some(sym) => {
                            let is_site = c == site_col;
                            if is_site && cur.site_done {
                                // Second site visit: outside the
                                // single-activation word model;
                                // self-loop keeps the DFA complete.
                                cur
                            } else {
                                let next = automaton.step(&cur.set, *sym, |_| true);
                                if next.is_empty() {
                                    if is_site || automaton.strict {
                                        sink
                                    } else {
                                        cur
                                    }
                                } else {
                                    ClosureState {
                                        set: next,
                                        site_done: cur.site_done || is_site,
                                        is_sink: false,
                                    }
                                }
                            }
                        }
                    }
                };
                let ti = if target.is_sink {
                    *sink_idx.get_or_insert_with(|| {
                        states.push(sink);
                        states.len() as u32 - 1
                    })
                } else {
                    *index
                        .entry((target.set, target.site_done))
                        .or_insert_with(|| {
                            states.push(target);
                            states.len() as u32 - 1
                        })
                };
                row.push(ti);
            }
            transitions.push(row);
            i += 1;
        }
        let accepting: Vec<bool> = states
            .iter()
            .map(|s| !s.is_sink && automaton.finalise_ok(&s.set))
            .collect();
        let nfa_accepting: Vec<bool> = states
            .iter()
            .map(|s| !s.is_sink && automaton.accepting.intersects(&s.set))
            .collect();
        Closure {
            automaton,
            alphabet: alphabet.to_vec(),
            site_col,
            dfa: CompleteDfa {
                n_syms: alphabet.len(),
                transitions,
                start: 0,
                accepting,
            },
            nfa_accepting,
            states,
            cols,
        }
    }

    /// Project a column word onto this automaton's symbols, dropping
    /// foreign columns (the automaton never observes those events, so
    /// the projection is exactly what [`Automaton::simulate`] would
    /// see at run time).
    pub fn project(&self, word: &[usize]) -> Vec<SymbolId> {
        word.iter().filter_map(|&c| self.cols[c]).collect()
    }

    /// The closure with acceptance meaning "an NFA-accepting state is
    /// in the subset" instead of "finalising passes".
    pub fn acceptance_dfa(&self) -> CompleteDfa {
        CompleteDfa {
            n_syms: self.dfa.n_syms,
            transitions: self.dfa.transitions.clone(),
            start: self.dfa.start,
            accepting: self.nfa_accepting.clone(),
        }
    }

    /// Vacuity: no word in the model can make the assertion fail —
    /// the complement of the pass language is empty.
    pub fn vacuous(&self) -> bool {
        self.dfa.complement().is_empty()
    }

    /// A shortest failing word, `None` when vacuous.
    pub fn failure_witness(&self) -> Option<Vec<usize>> {
        self.dfa.complement().find_accepted_word()
    }

    /// Contradiction: the assertion can never complete its behaviour
    /// inside the bound — the acceptance language is empty.
    pub fn contradictory(&self) -> bool {
        self.acceptance_dfa().is_empty()
    }

    /// A shortest word reaching an NFA-accepting subset, `None` when
    /// contradictory.
    pub fn acceptance_witness(&self) -> Option<Vec<usize>> {
        self.acceptance_dfa().find_accepted_word()
    }
}

/// How two assertion languages over their shared alphabet relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanguageRelation {
    /// Same pass language.
    Equal,
    /// `L(a) ⊋ L(b)`: `a` tolerates strictly more, so `a` is the
    /// weaker check — everything it can catch, `b` catches too.
    FirstWeaker,
    /// `L(b) ⊋ L(a)`.
    SecondWeaker,
    /// Neither contains the other.
    Incomparable,
}

/// Compare the pass languages of two automata over their union
/// alphabet. Returns `None` when no sound comparison is possible
/// (either automaton is guarded) or when the automata share no
/// concrete event kind (only the site column in common — two
/// assertions about disjoint events say nothing about each other).
pub fn compare_languages(a: &Automaton, b: &Automaton) -> Option<LanguageRelation> {
    if has_guards(a) || has_guards(b) {
        return None;
    }
    let alphabet = union_alphabet(a, b);
    let shared = body_alphabet(a);
    let b_alpha = body_alphabet(b);
    if !shared
        .iter()
        .any(|k| !matches!(k, SymbolKind::Site) && b_alpha.contains(k))
    {
        return None;
    }
    let ca = Closure::build(a, &alphabet);
    let cb = Closure::build(b, &alphabet);
    let a_incl_b = ca.dfa.includes(&cb.dfa);
    let b_incl_a = cb.dfa.includes(&ca.dfa);
    Some(match (a_incl_b, b_incl_a) {
        (true, true) => LanguageRelation::Equal,
        (true, false) => LanguageRelation::FirstWeaker,
        (false, true) => LanguageRelation::SecondWeaker,
        (false, false) => LanguageRelation::Incomparable,
    })
}

/// Groups of indistinguishable raw-DFA states of `d` (each group has
/// ≥ 2 members, sorted): states with the same acceptance and
/// cleanup-safety whose successor structure cannot be told apart.
/// The subset construction of a well-factored assertion yields none;
/// duplicated branches (e.g. `a ^ a`, or an `||` arm repeated) do.
///
/// Indices refer to `d`'s states, matching the DOT renderer's
/// `s{i}` node names, so findings can be highlighted directly.
pub fn merge_groups(d: &Dfa) -> Vec<Vec<u32>> {
    let n = d.n_states();
    let n_syms = d.transitions.first().map(Vec::len).unwrap_or(0);
    // Complete the partial DFA with an explicit dead sink at index n.
    let mut transitions: Vec<Vec<u32>> = d
        .transitions
        .iter()
        .map(|row| row.iter().map(|t| t.map_or(n as u32, |t| t)).collect())
        .collect();
    transitions.push(vec![n as u32; n_syms]);
    let mut accepting: Vec<bool> = d.accepting.clone();
    accepting.push(false);
    let complete = CompleteDfa {
        n_syms,
        transitions,
        start: d.start,
        accepting,
    };
    // Initial classes: (accepting, cleanup_safe), sink on its own.
    let mut classes: Vec<u32> = (0..n)
        .map(|i| u32::from(d.accepting[i]) | (u32::from(d.cleanup_safe[i]) << 1))
        .collect();
    classes.push(4);
    let (_, map) = complete.minimise_classes(&classes);
    let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, &m) in map.iter().enumerate().take(n) {
        if m != u32::MAX {
            groups.entry(m).or_default().push(i as u32);
        }
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    out.sort();
    out
}

/// NFA states of `a` that appear in no reachable subset of its DFA:
/// unreachable under determinization. The spec compiler prunes these,
/// so any hit indicates a hand-built or corrupted manifest.
pub fn unreachable_states(a: &Automaton, d: &Dfa) -> Vec<u32> {
    (0..a.n_states)
        .filter(|&s| !d.states.iter().any(|set| set.contains(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{compile, Verdict};
    use proptest::prelude::*;
    use tesla_spec::{call, AssertionBuilder, ExprBuilder};

    fn chain() -> Automaton {
        let a = AssertionBuilder::within("f")
            .previously(call("check").any("int").returns(0))
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    fn or_pair() -> Automaton {
        let a = AssertionBuilder::within("f")
            .previously(
                ExprBuilder::from(call("verify").any("int").returns(0))
                    .or(call("audit").any("int").returns(0)),
            )
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    fn vacuous_optional() -> Automaton {
        let a = AssertionBuilder::within("f")
            .previously(ExprBuilder::from(call("log").any("int").returns(0)).optional())
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    fn bound_aliased() -> Automaton {
        // The obligation is the bound function's own exit: infeasible
        // strictly inside one activation of `f`.
        let a = AssertionBuilder::within("f")
            .previously(call("f").any("int").returns(0))
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    fn xor_dup() -> Automaton {
        let a = AssertionBuilder::within("f")
            .previously(
                ExprBuilder::from(call("push").any("int").returns(1))
                    .xor(call("pop").any("int").returns(1)),
            )
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn complement_flips_acceptance() {
        let a = chain();
        let c = Closure::build(&a, &body_alphabet(&a));
        let comp = c.dfa.complement();
        for w in [vec![], vec![0], vec![0, 1], vec![1]] {
            assert_eq!(c.dfa.accepts(&w), !comp.accepts(&w), "{w:?}");
        }
    }

    #[test]
    fn product_intersects_languages() {
        let a = chain();
        let alphabet = body_alphabet(&a);
        let c = Closure::build(&a, &alphabet);
        let p = c.dfa.product(&c.dfa.complement(), |x, y| x && y);
        assert!(p.is_empty(), "L ∩ ¬L must be empty");
        let u = c.dfa.product(&c.dfa.complement(), |x, y| x || y);
        assert!(u.complement().is_empty(), "L ∪ ¬L must be everything");
    }

    #[test]
    fn includes_is_reflexive_and_detects_strictness() {
        let weak = or_pair();
        let strong = chain_named("verify");
        let alphabet = union_alphabet(&weak, &strong);
        let cw = Closure::build(&weak, &alphabet);
        let cs = Closure::build(&strong, &alphabet);
        assert!(cw.dfa.includes(&cw.dfa));
        assert!(
            cw.dfa.includes(&cs.dfa),
            "or-language contains single-event language"
        );
        assert!(!cs.dfa.includes(&cw.dfa));
        let cex = cs.dfa.inclusion_counterexample(&cw.dfa).unwrap();
        assert!(cw.dfa.accepts(&cex) && !cs.dfa.accepts(&cex));
    }

    fn chain_named(f: &str) -> Automaton {
        let a = AssertionBuilder::within("f")
            .previously(call(f).any("int").returns(0))
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn compare_languages_orders_or_against_chain() {
        assert_eq!(
            compare_languages(&or_pair(), &chain_named("verify")),
            Some(LanguageRelation::FirstWeaker)
        );
        assert_eq!(
            compare_languages(&chain_named("verify"), &or_pair()),
            Some(LanguageRelation::SecondWeaker)
        );
        assert_eq!(
            compare_languages(&chain_named("verify"), &chain_named("verify")),
            Some(LanguageRelation::Equal)
        );
        // Disjoint concrete alphabets: no verdict.
        assert_eq!(
            compare_languages(&chain_named("verify"), &chain_named("other")),
            None
        );
    }

    #[test]
    fn vacuity_verdicts() {
        assert!(Closure::build(&vacuous_optional(), &body_alphabet(&vacuous_optional())).vacuous());
        let a = chain();
        let c = Closure::build(&a, &body_alphabet(&a));
        assert!(!c.vacuous());
        // The witness really fails under the NFA semantics.
        let w = c.failure_witness().unwrap();
        let verdict = c.automaton.simulate(&c.project(&w));
        assert_ne!(verdict, Verdict::Accepted, "witness {w:?} should fail");
    }

    #[test]
    fn contradiction_verdicts() {
        let aliased = bound_aliased();
        let c = Closure::build(&aliased, &body_alphabet(&aliased));
        assert!(
            c.contradictory(),
            "bound-aliased obligation can never complete"
        );
        assert!(!c.vacuous(), "it still fails at the site");
        let healthy = chain();
        let ch = Closure::build(&healthy, &body_alphabet(&healthy));
        assert!(!ch.contradictory());
        assert!(ch.acceptance_witness().is_some());
    }

    #[test]
    fn body_alphabet_excludes_bound_aliases() {
        let a = bound_aliased();
        let alphabet = body_alphabet(&a);
        assert_eq!(
            alphabet.len(),
            1,
            "only the site column remains: {alphabet:?}"
        );
        assert!(matches!(alphabet[0], SymbolKind::Site));
        let b = chain();
        assert_eq!(body_alphabet(&b).len(), 2);
    }

    #[test]
    fn merge_groups_flags_duplicated_xor_branch_states() {
        let d = Dfa::from_automaton(&xor_dup());
        // xor introduces two alternative one-event paths whose
        // post-event states are indistinguishable.
        let groups = merge_groups(&d);
        assert!(!groups.is_empty(), "xor duplicate states should merge");
        assert!(groups.iter().all(|g| g.len() >= 2));
    }

    #[test]
    fn merge_groups_clean_on_chain_and_or() {
        for a in [chain(), or_pair()] {
            let d = Dfa::from_automaton(&a);
            assert!(merge_groups(&d).is_empty(), "{}", a.name);
        }
    }

    #[test]
    fn unreachable_states_empty_for_compiled_automata() {
        for a in [chain(), or_pair(), xor_dup(), vacuous_optional()] {
            let d = Dfa::from_automaton(&a);
            assert!(unreachable_states(&a, &d).is_empty());
        }
    }

    #[test]
    fn minimise_collapses_sink_free_redundancy() {
        let a = xor_dup();
        let c = Closure::build(&a, &body_alphabet(&a));
        let (m, map) = c.dfa.minimise();
        assert!(m.n_states() < c.dfa.n_states());
        assert_eq!(map[c.dfa.start as usize], m.start);
    }

    fn shapes() -> Vec<Automaton> {
        vec![
            chain(),
            or_pair(),
            vacuous_optional(),
            bound_aliased(),
            xor_dup(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Closure acceptance ⟺ NFA simulation, over single-site
        /// words of the feasible alphabet.
        #[test]
        fn closure_agrees_with_simulate(
            which in 0usize..5,
            raw in proptest::collection::vec(0usize..4, 0..10),
            site_at in proptest::option::of(0usize..10),
        ) {
            let a = &shapes()[which];
            let alphabet = body_alphabet(a);
            let c = Closure::build(a, &alphabet);
            // Build a word: non-site columns from `raw`, with at most
            // one site insertion.
            let non_site: Vec<usize> =
                (0..alphabet.len()).filter(|&i| i != c.site_col).collect();
            let mut word: Vec<usize> = raw
                .iter()
                .filter_map(|&r| non_site.get(r % non_site.len().max(1)).copied())
                .collect();
            if let Some(at) = site_at {
                word.insert(at.min(word.len()), c.site_col);
            }
            let nfa = a.simulate(&c.project(&word));
            prop_assert_eq!(
                c.dfa.accepts(&word),
                nfa == Verdict::Accepted,
                "word {:?} → {:?}", word, nfa
            );
        }

        /// Hopcroft minimisation preserves the language.
        #[test]
        fn minimised_dfa_is_language_equivalent(
            which in 0usize..5,
            word in proptest::collection::vec(0usize..4, 0..12),
        ) {
            let a = &shapes()[which];
            let c = Closure::build(a, &body_alphabet(a));
            let (m, _) = c.dfa.minimise();
            prop_assert!(m.n_states() <= c.dfa.n_states());
            let word: Vec<usize> =
                word.into_iter().map(|w| w % c.dfa.n_syms.max(1)).collect();
            prop_assert_eq!(c.dfa.accepts(&word), m.accepts(&word));
        }

        /// The two Moore/Hopcroft minimisers agree on size for the
        /// raw subset DFA (same equivalence, different algorithms).
        #[test]
        fn hopcroft_agrees_with_moore_on_raw_dfa(which in 0usize..5) {
            let a = &shapes()[which];
            let d = Dfa::from_automaton(a);
            let moore = d.minimise();
            let groups = merge_groups(&d);
            let merged: usize = groups.iter().map(|g| g.len() - 1).sum();
            prop_assert_eq!(moore.n_states(), d.n_states() - merged);
        }
    }
}
