//! The symbolic alphabet of TESLA automata.
//!
//! Automata do not consume raw program events; the instrumenter's
//! *event translators* (§4.2) first match each event against the
//! symbols an automaton references, checking static parameters
//! (constants, flag patterns) and extracting the dynamic
//! variable–value mapping. This module defines the symbols, the
//! concrete-event shape they match against, and that matching logic.

use serde::{Deserialize, Serialize};
use tesla_spec::{ArgPattern, CallKind, EventExpr, FieldOp, Value};

/// Index of a symbol within one automaton's alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

/// Function-event direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Function or method entry.
    Entry,
    /// Function or method exit (return).
    Exit,
}

/// Which side instrumentation is woven on for a function symbol
/// (§4.2): the callee's entry/return blocks, or around call sites in
/// callers (needed for libraries that cannot be recompiled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InstrSide {
    /// Callee-side (default for functions we compile).
    #[default]
    Callee,
    /// Caller-side.
    Caller,
}

/// A site-transition guard: a predicate evaluated when the assertion
/// site is reached rather than a temporal event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Guard {
    /// `incallstack(fn)` — `fn` is on the current thread's (shadow)
    /// call stack (fig. 7).
    InCallStack(String),
}

impl std::fmt::Display for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Guard::InCallStack(name) => write!(f, "incallstack({name})"),
        }
    }
}

/// What family of concrete events a symbol matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolKind {
    /// C function call or return with argument patterns.
    Function {
        /// Function name.
        name: String,
        /// Argument patterns; may be shorter than the callee's arity.
        args: Vec<ArgPattern>,
        /// Entry or exit.
        direction: Direction,
        /// Return-value pattern (exit only).
        ret: Option<ArgPattern>,
        /// Instrumentation side.
        side: InstrSide,
    },
    /// Structure-field assignment.
    FieldAssign {
        /// Structure type name; empty means "any structure with this
        /// field name" (used when the analyser had no type info).
        struct_name: String,
        /// Field name.
        field_name: String,
        /// Pattern for the containing object.
        object: ArgPattern,
        /// Assignment operator.
        op: FieldOp,
        /// Pattern for the assigned (right-hand side) value.
        value: ArgPattern,
    },
    /// Objective-C-style message send or return (§4.3).
    Message {
        /// Receiver pattern.
        receiver: ArgPattern,
        /// Full selector.
        selector: String,
        /// Argument patterns.
        args: Vec<ArgPattern>,
        /// Entry (send) or exit (method return).
        direction: Direction,
        /// Return-value pattern (exit only).
        ret: Option<ArgPattern>,
    },
    /// The automaton's assertion site (`TESLA_ASSERTION_SITE`).
    Site,
    /// The «init» bound event (function entry or exit of the bound
    /// start function, §3.3).
    BoundStart,
    /// The «cleanup» bound event.
    BoundEnd,
}

/// One letter of an automaton's alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Identity within the owning automaton.
    pub id: SymbolId,
    /// Event family and static patterns.
    pub kind: SymbolKind,
}

/// A single NFA transition: `from --symbol[guard]--> to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: u32,
    /// The symbol consumed.
    pub sym: SymbolId,
    /// Destination state.
    pub to: u32,
    /// Optional site-time guard (only on `Site` transitions).
    pub guard: Option<Guard>,
}

/// A concrete program event as exposed by instrumentation hooks.
///
/// Names are borrowed strings here; `tesla-runtime` interns them and
/// pre-compiles per-event dispatch tables (its analogue of the
/// generated event translators), but this form is what offline
/// analysis and the tests consume.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgEvent<'a> {
    /// Function entry.
    FnEntry {
        /// Callee name.
        name: &'a str,
        /// Argument values.
        args: &'a [Value],
    },
    /// Function exit.
    FnExit {
        /// Callee name.
        name: &'a str,
        /// Argument values (as at entry).
        args: &'a [Value],
        /// Return value.
        ret: Value,
    },
    /// Structure-field assignment. The event translator for a field
    /// assignment receives the structure, the field and the new value
    /// (§4.2); compound operators also carry the operator.
    FieldStore {
        /// Structure type name.
        struct_name: &'a str,
        /// Field name.
        field_name: &'a str,
        /// The containing object (address/handle).
        object: Value,
        /// Assignment operator used.
        op: FieldOp,
        /// Right-hand-side value.
        value: Value,
    },
    /// Message send (method entry).
    MsgEntry {
        /// Receiver object.
        receiver: Value,
        /// Full selector.
        selector: &'a str,
        /// Argument values.
        args: &'a [Value],
    },
    /// Method return.
    MsgExit {
        /// Receiver object.
        receiver: Value,
        /// Full selector.
        selector: &'a str,
        /// Argument values.
        args: &'a [Value],
        /// Return value.
        ret: Value,
    },
    /// The assertion site was reached with the scope's variable
    /// values (one per automaton variable, in variable-index order).
    Site {
        /// Values of the assertion's scope variables.
        bindings: &'a [Value],
    },
}

/// The result of matching a symbol against an event: the dynamic
/// variable–value pairs the event provides (empty when the symbol
/// binds no variables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchBindings {
    /// `(variable index, observed value)` pairs.
    pub pairs: Vec<(usize, Value)>,
}

impl Symbol {
    /// Does this symbol reference the given function name (either as a
    /// hook target or a bound)? Used by the instrumentation planner.
    pub fn function_name(&self) -> Option<(&str, Direction, InstrSide)> {
        match &self.kind {
            SymbolKind::Function {
                name,
                direction,
                side,
                ..
            } => Some((name.as_str(), *direction, *side)),
            _ => None,
        }
    }

    /// Match a concrete event against this symbol's static patterns.
    ///
    /// Returns `None` when the event does not match; otherwise the
    /// dynamic bindings extracted for the automaton's variables.
    /// Binding *consistency* (the same variable observed with two
    /// different values) is the instance store's job, not the
    /// translator's.
    pub fn matches(&self, ev: &ProgEvent<'_>) -> Option<MatchBindings> {
        match (&self.kind, ev) {
            (
                SymbolKind::Function {
                    name,
                    args,
                    direction: Direction::Entry,
                    ..
                },
                ProgEvent::FnEntry { name: en, args: ea },
            ) if name == en => match_args(args, ea, None, None),
            (
                SymbolKind::Function {
                    name,
                    args,
                    direction: Direction::Exit,
                    ret,
                    ..
                },
                ProgEvent::FnExit {
                    name: en,
                    args: ea,
                    ret: er,
                },
            ) if name == en => match_args(args, ea, ret.as_ref(), Some(*er)),
            (
                SymbolKind::FieldAssign {
                    struct_name,
                    field_name,
                    object,
                    op,
                    value,
                },
                ProgEvent::FieldStore {
                    struct_name: es,
                    field_name: ef,
                    object: eo,
                    op: eop,
                    value: ev,
                },
            ) if field_name == ef && (struct_name.is_empty() || struct_name == es) && op == eop => {
                let mut b = MatchBindings::default();
                if !match_one(object, *eo, &mut b) || !match_one(value, *ev, &mut b) {
                    return None;
                }
                Some(b)
            }
            (
                SymbolKind::Message {
                    receiver,
                    selector,
                    args,
                    direction: Direction::Entry,
                    ..
                },
                ProgEvent::MsgEntry {
                    receiver: er,
                    selector: es,
                    args: ea,
                },
            ) if selector == es => {
                let mut b = MatchBindings::default();
                if !match_one(receiver, *er, &mut b) {
                    return None;
                }
                match_args_into(args, ea, None, None, b)
            }
            (
                SymbolKind::Message {
                    receiver,
                    selector,
                    args,
                    direction: Direction::Exit,
                    ret,
                    ..
                },
                ProgEvent::MsgExit {
                    receiver: er,
                    selector: es,
                    args: ea,
                    ret: erv,
                },
            ) if selector == es => {
                let mut b = MatchBindings::default();
                if !match_one(receiver, *er, &mut b) {
                    return None;
                }
                match_args_into(args, ea, ret.as_ref(), Some(*erv), b)
            }
            (SymbolKind::Site, ProgEvent::Site { bindings }) => Some(MatchBindings {
                pairs: bindings.iter().enumerate().map(|(i, v)| (i, *v)).collect(),
            }),
            _ => None,
        }
    }
}

fn match_args(
    patterns: &[ArgPattern],
    values: &[Value],
    ret_pat: Option<&ArgPattern>,
    ret_val: Option<Value>,
) -> Option<MatchBindings> {
    match_args_into(patterns, values, ret_pat, ret_val, MatchBindings::default())
}

fn match_args_into(
    patterns: &[ArgPattern],
    values: &[Value],
    ret_pat: Option<&ArgPattern>,
    ret_val: Option<Value>,
    mut b: MatchBindings,
) -> Option<MatchBindings> {
    if patterns.len() > values.len() {
        // The event carries fewer arguments than the pattern expects:
        // cannot match.
        return None;
    }
    for (p, v) in patterns.iter().zip(values.iter()) {
        if !match_one(p, *v, &mut b) {
            return None;
        }
    }
    if let (Some(p), Some(v)) = (ret_pat, ret_val) {
        if !match_one(p, v, &mut b) {
            return None;
        }
    }
    Some(b)
}

fn match_one(p: &ArgPattern, v: Value, b: &mut MatchBindings) -> bool {
    if !p.matches_static(v) {
        return false;
    }
    if let Some(i) = p.var_index() {
        b.pairs.push((i, v));
    }
    true
}

/// Lower a [`tesla_spec::EventExpr`] into a symbol kind, applying the
/// ambient instrumentation side from `caller`/`callee` modifiers.
pub fn kind_from_event(e: &EventExpr, side: InstrSide) -> SymbolKind {
    match e {
        EventExpr::FunctionEvent { name, args, kind } => {
            let (direction, ret) = match kind {
                CallKind::Entry => (Direction::Entry, None),
                CallKind::Exit => (Direction::Exit, None),
                CallKind::ExitWithReturn(r) => (Direction::Exit, Some(r.clone())),
            };
            SymbolKind::Function {
                name: name.clone(),
                args: args.clone(),
                direction,
                ret,
                side,
            }
        }
        EventExpr::FieldAssignEvent {
            struct_name,
            field_name,
            object,
            op,
            value,
        } => SymbolKind::FieldAssign {
            struct_name: struct_name.clone(),
            field_name: field_name.clone(),
            object: object.clone(),
            op: *op,
            value: value.clone(),
        },
        EventExpr::MessageEvent {
            receiver,
            selector,
            args,
            kind,
        } => {
            let (direction, ret) = match kind {
                CallKind::Entry => (Direction::Entry, None),
                CallKind::Exit => (Direction::Exit, None),
                CallKind::ExitWithReturn(r) => (Direction::Exit, Some(r.clone())),
            };
            SymbolKind::Message {
                receiver: receiver.clone(),
                selector: selector.clone(),
                args: args.clone(),
                direction,
                ret,
            }
        }
    }
}

impl std::fmt::Display for SymbolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolKind::Function {
                name,
                args,
                direction,
                ret,
                ..
            } => {
                let dir = match direction {
                    Direction::Entry => "call ",
                    Direction::Exit => "",
                };
                write!(f, "{dir}{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(r) = ret {
                    write!(f, " == {r}")?;
                } else if *direction == Direction::Exit {
                    write!(f, " returns")?;
                }
                Ok(())
            }
            SymbolKind::FieldAssign {
                struct_name,
                field_name,
                object,
                op,
                value,
            } => {
                if struct_name.is_empty() {
                    write!(f, "{object}.{field_name} {op} {value}")
                } else {
                    write!(f, "{struct_name}({object}).{field_name} {op} {value}")
                }
            }
            SymbolKind::Message {
                receiver,
                selector,
                direction,
                ..
            } => {
                let dir = match direction {
                    Direction::Entry => "",
                    Direction::Exit => "return ",
                };
                write!(f, "{dir}[{receiver} {selector}]")
            }
            SymbolKind::Site => write!(f, "«assertion»"),
            SymbolKind::BoundStart => write!(f, "«init»"),
            SymbolKind::BoundEnd => write!(f, "«cleanup»"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_exit_sym(name: &str, args: Vec<ArgPattern>, ret: i64) -> Symbol {
        Symbol {
            id: SymbolId(0),
            kind: SymbolKind::Function {
                name: name.into(),
                args,
                direction: Direction::Exit,
                ret: Some(ArgPattern::Const(Value::from_i64(ret))),
                side: InstrSide::Callee,
            },
        }
    }

    #[test]
    fn function_exit_matches_name_args_and_return() {
        let s = fn_exit_sym(
            "mac_socket_check_poll",
            vec![
                ArgPattern::any_ptr(),
                ArgPattern::Var {
                    index: 0,
                    name: "so".into(),
                },
            ],
            0,
        );
        let args = [Value(11), Value(22)];
        let hit = s
            .matches(&ProgEvent::FnExit {
                name: "mac_socket_check_poll",
                args: &args,
                ret: Value(0),
            })
            .unwrap();
        assert_eq!(hit.pairs, vec![(0, Value(22))]);

        // Wrong return value: static check fails.
        assert!(s
            .matches(&ProgEvent::FnExit {
                name: "mac_socket_check_poll",
                args: &args,
                ret: Value::from_i64(-1),
            })
            .is_none());
        // Wrong function.
        assert!(s
            .matches(&ProgEvent::FnExit {
                name: "other",
                args: &args,
                ret: Value(0)
            })
            .is_none());
        // Entry events do not match exit symbols.
        assert!(s
            .matches(&ProgEvent::FnEntry {
                name: "mac_socket_check_poll",
                args: &args
            })
            .is_none());
    }

    #[test]
    fn shorter_patterns_ignore_trailing_args() {
        let s = fn_exit_sym("f", vec![ArgPattern::Const(Value(1))], 0);
        let args = [Value(1), Value(99), Value(100)];
        assert!(s
            .matches(&ProgEvent::FnExit {
                name: "f",
                args: &args,
                ret: Value(0)
            })
            .is_some());
        // But an event with *fewer* args than patterns cannot match.
        let s2 = fn_exit_sym("f", vec![ArgPattern::Const(Value(1)); 4], 0);
        assert!(s2
            .matches(&ProgEvent::FnExit {
                name: "f",
                args: &args,
                ret: Value(0)
            })
            .is_none());
    }

    #[test]
    fn field_assign_matches_struct_op_and_binds() {
        let s = Symbol {
            id: SymbolId(0),
            kind: SymbolKind::FieldAssign {
                struct_name: "proc".into(),
                field_name: "p_flag".into(),
                object: ArgPattern::Var {
                    index: 0,
                    name: "p".into(),
                },
                op: FieldOp::OrAssign,
                value: ArgPattern::Flags(0x100),
            },
        };
        let hit = s
            .matches(&ProgEvent::FieldStore {
                struct_name: "proc",
                field_name: "p_flag",
                object: Value(7),
                op: FieldOp::OrAssign,
                value: Value(0x300),
            })
            .unwrap();
        assert_eq!(hit.pairs, vec![(0, Value(7))]);

        // Wrong operator.
        assert!(s
            .matches(&ProgEvent::FieldStore {
                struct_name: "proc",
                field_name: "p_flag",
                object: Value(7),
                op: FieldOp::Assign,
                value: Value(0x300),
            })
            .is_none());
        // Wrong struct.
        assert!(s
            .matches(&ProgEvent::FieldStore {
                struct_name: "socket",
                field_name: "p_flag",
                object: Value(7),
                op: FieldOp::OrAssign,
                value: Value(0x300),
            })
            .is_none());
    }

    #[test]
    fn untyped_field_symbol_matches_any_struct() {
        let s = Symbol {
            id: SymbolId(0),
            kind: SymbolKind::FieldAssign {
                struct_name: String::new(),
                field_name: "refcount".into(),
                object: ArgPattern::any_ptr(),
                op: FieldOp::AddAssign,
                value: ArgPattern::Const(Value(1)),
            },
        };
        assert!(s
            .matches(&ProgEvent::FieldStore {
                struct_name: "whatever",
                field_name: "refcount",
                object: Value(1),
                op: FieldOp::AddAssign,
                value: Value(1),
            })
            .is_some());
    }

    #[test]
    fn message_symbols_match_selector_and_direction() {
        let s = Symbol {
            id: SymbolId(0),
            kind: SymbolKind::Message {
                receiver: ArgPattern::any_ptr(),
                selector: "drawWithFrame:inView:".into(),
                args: vec![ArgPattern::any_ptr(), ArgPattern::any_ptr()],
                direction: Direction::Entry,
                ret: None,
            },
        };
        let args = [Value(1), Value(2)];
        assert!(s
            .matches(&ProgEvent::MsgEntry {
                receiver: Value(9),
                selector: "drawWithFrame:inView:",
                args: &args,
            })
            .is_some());
        assert!(s
            .matches(&ProgEvent::MsgEntry {
                receiver: Value(9),
                selector: "push",
                args: &args
            })
            .is_none());
        assert!(s
            .matches(&ProgEvent::MsgExit {
                receiver: Value(9),
                selector: "drawWithFrame:inView:",
                args: &args,
                ret: Value(0),
            })
            .is_none());
    }

    #[test]
    fn site_symbol_binds_all_variables() {
        let s = Symbol {
            id: SymbolId(0),
            kind: SymbolKind::Site,
        };
        let vals = [Value(5), Value(6)];
        let hit = s.matches(&ProgEvent::Site { bindings: &vals }).unwrap();
        assert_eq!(hit.pairs, vec![(0, Value(5)), (1, Value(6))]);
    }

    #[test]
    fn return_value_can_bind_a_variable() {
        let s = Symbol {
            id: SymbolId(0),
            kind: SymbolKind::Function {
                name: "f".into(),
                args: vec![],
                direction: Direction::Exit,
                ret: Some(ArgPattern::Var {
                    index: 2,
                    name: "rv".into(),
                }),
                side: InstrSide::Callee,
            },
        };
        let hit = s
            .matches(&ProgEvent::FnExit {
                name: "f",
                args: &[],
                ret: Value(17),
            })
            .unwrap();
        assert_eq!(hit.pairs, vec![(2, Value(17))]);
    }

    #[test]
    fn display_forms() {
        let s = fn_exit_sym("f", vec![ArgPattern::any_ptr()], 0);
        assert_eq!(s.kind.to_string(), "f(ANY(ptr)) == 0");
        assert_eq!(SymbolKind::Site.to_string(), "«assertion»");
        assert_eq!(SymbolKind::BoundStart.to_string(), "«init»");
        assert_eq!(SymbolKind::BoundEnd.to_string(), "«cleanup»");
    }
}
