//! Automaton transition-coverage maps.
//!
//! Figure 9's weighted graphs already count how often each
//! (DFA state, symbol) edge fires; this module reinterprets those
//! counts as a *coverage map* — which cells of the dense
//! state × symbol matrix a workload has exercised at all. The
//! scenario fuzzer (`tesla scenario fuzz`) uses the map as its
//! guidance signal, in the spirit of LTL-guided greybox fuzzing: a
//! mutant timeline is interesting when it lights up a cell the corpus
//! has never reached.
//!
//! Coverage is keyed by *class name* (the assertion's human-readable
//! name) rather than [`crate::automaton::Automaton`] identity, so maps
//! from separate engine runs — each of which registers its own classes
//! and gets fresh class ids — can be merged meaningfully. Rows are
//! BFS-ordered DFA state ids, exactly the rows of the transition
//! weight tables and the node ids of the DOT rendering.

use std::collections::{BTreeMap, BTreeSet};

/// Covered cells of one automaton class's state × symbol matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassCoverage {
    /// Number of DFA state rows in the dense matrix.
    pub n_states: u32,
    /// Number of symbols (columns) in the dense matrix.
    pub n_symbols: u32,
    /// Cells `(state_row, symbol)` with at least one observed firing.
    pub cells: BTreeSet<(u32, u32)>,
}

impl ClassCoverage {
    /// A coverage matrix of the given shape with no covered cells.
    pub fn new(n_states: u32, n_symbols: u32) -> ClassCoverage {
        ClassCoverage {
            n_states,
            n_symbols,
            cells: BTreeSet::new(),
        }
    }

    /// Mark `(state, symbol)` as covered.
    pub fn mark(&mut self, state: u32, symbol: u32) {
        self.cells.insert((state, symbol));
    }

    /// Whether `(state, symbol)` has been covered.
    pub fn contains(&self, state: u32, symbol: u32) -> bool {
        self.cells.contains(&(state, symbol))
    }

    /// Number of covered cells.
    pub fn covered(&self) -> usize {
        self.cells.len()
    }

    /// Total cell count of the dense matrix.
    pub fn total_cells(&self) -> usize {
        self.n_states as usize * self.n_symbols as usize
    }
}

/// Transition coverage across automaton classes, keyed by class name.
///
/// Deterministically ordered (`BTreeMap`/`BTreeSet`) so renders and
/// diffs are byte-stable across runs — the fuzzer's determinism test
/// depends on that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    classes: BTreeMap<String, ClassCoverage>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Whether no class has any covered cell.
    pub fn is_empty(&self) -> bool {
        self.classes.values().all(|c| c.cells.is_empty())
    }

    /// The coverage matrix for `class`, creating it (with the given
    /// shape) if absent. If the class is already present the recorded
    /// shape grows to the maximum seen, so merging maps built against
    /// differently-compiled versions of an assertion stays lossless.
    pub fn class_mut(&mut self, class: &str, n_states: u32, n_symbols: u32) -> &mut ClassCoverage {
        let entry = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| ClassCoverage::new(n_states, n_symbols));
        entry.n_states = entry.n_states.max(n_states);
        entry.n_symbols = entry.n_symbols.max(n_symbols);
        entry
    }

    /// The coverage matrix for `class`, if present.
    pub fn class(&self, class: &str) -> Option<&ClassCoverage> {
        self.classes.get(class)
    }

    /// Iterate `(class name, coverage)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ClassCoverage)> {
        self.classes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorb every covered cell of `other` into `self`.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (name, theirs) in other.classes.iter() {
            let mine = self.class_mut(name, theirs.n_states, theirs.n_symbols);
            mine.cells.extend(theirs.cells.iter().copied());
        }
    }

    /// Cells covered by `other` but not by `self`, as
    /// `(class, state, symbol)` triples in deterministic order. This
    /// is the fuzzer's interestingness signal: non-empty means the
    /// candidate run reached somewhere the corpus never has.
    pub fn newly_covered(&self, other: &CoverageMap) -> Vec<(String, u32, u32)> {
        let mut novel = Vec::new();
        for (name, theirs) in other.classes.iter() {
            let base = self.classes.get(name);
            for &(state, sym) in theirs.cells.iter() {
                if base.map_or(true, |b| !b.cells.contains(&(state, sym))) {
                    novel.push((name.clone(), state, sym));
                }
            }
        }
        novel
    }

    /// `(covered, total)` cell counts summed over all classes.
    pub fn totals(&self) -> (usize, usize) {
        let covered = self.classes.values().map(ClassCoverage::covered).sum();
        let total = self.classes.values().map(ClassCoverage::total_cells).sum();
        (covered, total)
    }

    /// Human-readable per-class summary, one line per class plus a
    /// totals line — the `tesla scenario` reporting format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, cov) in self.classes.iter() {
            out.push_str(&format!(
                "{name}: {}/{} cells ({} states x {} symbols)\n",
                cov.covered(),
                cov.total_cells(),
                cov.n_states,
                cov.n_symbols
            ));
        }
        let (covered, total) = self.totals();
        out.push_str(&format!("total: {covered}/{total} cells\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_merge_and_totals() {
        let mut a = CoverageMap::new();
        a.class_mut("x", 3, 4).mark(0, 1);
        a.class_mut("x", 3, 4).mark(1, 2);
        let mut b = CoverageMap::new();
        b.class_mut("x", 3, 4).mark(1, 2);
        b.class_mut("x", 3, 4).mark(2, 3);
        b.class_mut("y", 2, 2).mark(0, 0);

        assert_eq!(a.totals(), (2, 12));
        let novel = a.newly_covered(&b);
        assert_eq!(
            novel,
            vec![("x".to_string(), 2, 3), ("y".to_string(), 0, 0)]
        );
        a.merge(&b);
        assert_eq!(a.totals(), (4, 16));
        assert!(a.newly_covered(&b).is_empty());
        assert!(a.class("x").unwrap().contains(2, 3));
        assert!(!a.class("x").unwrap().contains(0, 0));
    }

    #[test]
    fn shape_grows_on_remerge() {
        let mut a = CoverageMap::new();
        a.class_mut("x", 2, 2).mark(0, 0);
        a.class_mut("x", 4, 3).mark(3, 2);
        assert_eq!(a.class("x").unwrap().n_states, 4);
        assert_eq!(a.class("x").unwrap().n_symbols, 3);
        let render = a.render();
        assert!(render.contains("x: 2/12 cells"));
        assert!(render.contains("total: 2/12 cells"));
    }
}
