//! Automaton classes: compiled TESLA assertions.
//!
//! [`compile`] lowers a validated [`Assertion`] into an [`Automaton`]
//! — the *class* that libtesla instantiates per variable binding
//! (§4.4). The compilation pipeline:
//!
//! 1. take `assertion.expr_with_site()` (an implicit site is appended
//!    when the programmer wrote none, matching the macro expansions of
//!    §3.4.1);
//! 2. recursively lower the expression to an epsilon-free NFA
//!    fragment, interning symbols and threading `caller`/`callee`
//!    instrumentation-side modifiers;
//! 3. wrap with the temporal bounds: an «init» symbol for the bound's
//!    start event and a «cleanup» symbol for its end event (§3.3);
//! 4. compute the *cleanup-safe* state set: finalising an instance in
//!    a cleanup-safe state is acceptance (the bypass transitions of
//!    §4.1 for code paths that never reach the assertion site);
//!    anywhere else it is a violation (a pending `eventually`
//!    obligation).

use crate::bitset::{StateSet, MAX_STATES};
use crate::nfa::Frag;
use crate::symbol::{
    kind_from_event, Direction, Guard, InstrSide, ProgEvent, Symbol, SymbolId, SymbolKind,
    Transition,
};
use crate::CompileError;
use tesla_spec::{Assertion, BoolOp, Context, Expr, Modifier, SourceLoc, StaticEvent};

/// A temporal bound, resolved to concrete function entry/exit events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// Function whose event initialises instances.
    pub start_fn: String,
    /// Entry or exit of `start_fn`.
    pub start_dir: Direction,
    /// Function whose event finalises instances.
    pub end_fn: String,
    /// Entry or exit of `end_fn`.
    pub end_dir: Direction,
}

impl Bound {
    fn from_spec(b: &tesla_spec::Bounds) -> Bound {
        let (start_fn, start_dir) = match &b.start {
            StaticEvent::Call(f) => (f.clone(), Direction::Entry),
            StaticEvent::ReturnFrom(f) => (f.clone(), Direction::Exit),
        };
        let (end_fn, end_dir) = match &b.end {
            StaticEvent::Call(f) => (f.clone(), Direction::Entry),
            StaticEvent::ReturnFrom(f) => (f.clone(), Direction::Exit),
        };
        Bound {
            start_fn,
            start_dir,
            end_fn,
            end_dir,
        }
    }
}

/// A compiled automaton class.
#[derive(Debug, Clone)]
pub struct Automaton {
    /// Assertion name (diagnostics, coverage).
    pub name: String,
    /// Store context (§3.2).
    pub context: Context,
    /// Temporal bounds (§3.3).
    pub bound: Bound,
    /// The symbolic alphabet. `symbols[i].id == SymbolId(i)`.
    pub symbols: Vec<Symbol>,
    /// Number of body states.
    pub n_states: u32,
    /// State new instances start in (after «init»).
    pub start: u32,
    /// Body transitions (init/cleanup are implicit; see [`Bound`]).
    pub transitions: Vec<Transition>,
    /// States in which the whole behaviour has been observed.
    pub accepting: StateSet,
    /// States where finalisation at «cleanup» is acceptance: either
    /// accepting, or the assertion site is still ahead (the path never
    /// reached the site — the §4.1 bypass).
    pub cleanup_safe: StateSet,
    /// `strict` semantics: alphabet events with no transition from the
    /// current states are violations rather than ignored.
    pub strict: bool,
    /// Variable names, in variable-index order.
    pub var_names: Vec<String>,
    /// The assertion-site symbol.
    pub site_sym: SymbolId,
    /// The «init» symbol.
    pub init_sym: SymbolId,
    /// The «cleanup» symbol.
    pub cleanup_sym: SymbolId,
    /// Source location of the assertion.
    pub loc: SourceLoc,
    /// Pretty-printed source form.
    pub source: String,
    /// Per-symbol transition index: `by_symbol[sym][..]` are indices
    /// into `transitions`.
    by_symbol: Vec<Vec<u32>>,
}

struct Lowerer {
    symbols: Vec<Symbol>,
    strict: bool,
}

impl Lowerer {
    fn intern(&mut self, kind: SymbolKind) -> SymbolId {
        if let Some(s) = self.symbols.iter().find(|s| s.kind == kind) {
            return s.id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(Symbol { id, kind });
        id
    }

    fn lower(&mut self, e: &Expr, side: InstrSide) -> Result<Frag, CompileError> {
        match e {
            Expr::Event(ev) => {
                let sym = self.intern(kind_from_event(ev, side));
                Ok(Frag::event(sym, None))
            }
            Expr::AssertionSite => {
                let sym = self.intern(SymbolKind::Site);
                Ok(Frag::event(sym, None))
            }
            Expr::InCallStack(f) => {
                // A guarded assertion-site transition (fig. 7).
                let sym = self.intern(SymbolKind::Site);
                Ok(Frag::event(sym, Some(Guard::InCallStack(f.clone()))))
            }
            Expr::Sequence(es) => {
                let mut frag = Frag::empty();
                for e in es {
                    frag = frag.seq(self.lower(e, side)?);
                    self.check_size(&frag)?;
                }
                Ok(frag)
            }
            Expr::Bool {
                op: BoolOp::Or,
                exprs,
            } => {
                let mut it = exprs.iter();
                let first = it.next().ok_or(CompileError::EmptyAutomaton)?;
                let mut frag = self.lower(first, side)?;
                for e in it {
                    frag = frag.or(self.lower(e, side)?);
                    self.check_size(&frag)?;
                }
                Ok(frag)
            }
            Expr::Bool {
                op: BoolOp::Xor,
                exprs,
            } => {
                let frags = exprs
                    .iter()
                    .map(|e| self.lower(e, side))
                    .collect::<Result<Vec<_>, _>>()?;
                let frag = Frag::alt(frags);
                self.check_size(&frag)?;
                Ok(frag)
            }
            Expr::AtLeast { n, exprs } => {
                let frags = exprs
                    .iter()
                    .map(|e| self.lower(e, side))
                    .collect::<Result<Vec<_>, _>>()?;
                let frag = Frag::alt(frags).at_least(*n);
                self.check_size(&frag)?;
                Ok(frag)
            }
            Expr::Modified { modifier, expr } => match modifier {
                Modifier::Optional | Modifier::Conditional => {
                    Ok(self.lower(expr, side)?.optional())
                }
                Modifier::Strict => {
                    self.strict = true;
                    self.lower(expr, side)
                }
                Modifier::Caller => self.lower(expr, InstrSide::Caller),
                Modifier::Callee => self.lower(expr, InstrSide::Callee),
            },
        }
    }

    fn check_size(&self, f: &Frag) -> Result<(), CompileError> {
        if f.n_states as usize > MAX_STATES {
            Err(CompileError::TooManyStates(f.n_states as usize))
        } else {
            Ok(())
        }
    }
}

/// Compile an assertion into an automaton class.
///
/// # Errors
///
/// Returns [`CompileError`] if the assertion is structurally invalid
/// or the automaton would exceed [`MAX_STATES`].
pub fn compile(assertion: &Assertion) -> Result<Automaton, CompileError> {
    assertion.validate()?;
    let expr = assertion.expr_with_site();
    let mut lw = Lowerer {
        symbols: Vec::new(),
        strict: false,
    };
    let frag = lw.lower(&expr, InstrSide::Callee)?;
    if frag.n_states as usize > MAX_STATES {
        return Err(CompileError::TooManyStates(frag.n_states as usize));
    }
    let site_sym = lw.intern(SymbolKind::Site);
    let init_sym = lw.intern(SymbolKind::BoundStart);
    let cleanup_sym = lw.intern(SymbolKind::BoundEnd);

    let accepting: StateSet = frag.accepts.iter().copied().collect();
    let cleanup_safe = compute_cleanup_safe(&frag, site_sym, &accepting);

    let mut by_symbol = vec![Vec::new(); lw.symbols.len()];
    for (i, t) in frag.transitions.iter().enumerate() {
        by_symbol[t.sym.0 as usize].push(i as u32);
    }

    Ok(Automaton {
        name: assertion.name.clone(),
        context: assertion.context,
        bound: Bound::from_spec(&assertion.bounds),
        symbols: lw.symbols,
        n_states: frag.n_states,
        start: frag.start,
        transitions: frag.transitions,
        accepting,
        cleanup_safe,
        strict: lw.strict,
        var_names: assertion.variables.clone(),
        site_sym,
        init_sym,
        cleanup_sym,
        loc: assertion.loc.clone(),
        source: assertion.to_string(),
        by_symbol,
    })
}

/// Cleanup-safe states: accepting, or the assertion site is still
/// reachable ahead (the instance's path simply never went through the
/// site — §4.1's bypass transitions).
fn compute_cleanup_safe(frag: &Frag, site_sym: SymbolId, accepting: &StateSet) -> StateSet {
    let n = frag.n_states as usize;
    // States with an outgoing site transition can still legitimately
    // reach the site.
    let mut safe = vec![false; n];
    for t in &frag.transitions {
        if t.sym == site_sym {
            safe[t.from as usize] = true;
        }
    }
    // Reverse reachability: anything that can reach such a state.
    let mut changed = true;
    while changed {
        changed = false;
        for t in &frag.transitions {
            if safe[t.to as usize] && !safe[t.from as usize] {
                safe[t.from as usize] = true;
                changed = true;
            }
        }
    }
    let mut out = StateSet::EMPTY;
    for (i, s) in safe.iter().enumerate() {
        if *s {
            out.insert(i as u32);
        }
    }
    out.union_with(accepting);
    out
}

/// Outcome of symbolically simulating an automaton over a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Finalised in a cleanup-safe state.
    Accepted,
    /// An assertion-site event found no viable transition.
    SiteViolation,
    /// Finalised with a pending obligation (`eventually` unmet).
    CleanupViolation,
    /// Strict mode: an alphabet event had no transition.
    StrictViolation,
}

impl Automaton {
    /// Transitions consuming `sym`.
    pub fn transitions_on(&self, sym: SymbolId) -> impl Iterator<Item = &Transition> + '_ {
        self.by_symbol
            .get(sym.0 as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.transitions[i as usize])
    }

    /// Number of symbols in the alphabet.
    pub fn n_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The initial state set of a fresh instance.
    pub fn initial_states(&self) -> StateSet {
        StateSet::singleton(self.start)
    }

    /// Advance a state set by one symbol, with `guard_ok` deciding
    /// guarded transitions. Returns the successor set (possibly
    /// empty).
    pub fn step(
        &self,
        states: &StateSet,
        sym: SymbolId,
        mut guard_ok: impl FnMut(&Guard) -> bool,
    ) -> StateSet {
        let mut next = StateSet::EMPTY;
        for t in self.transitions_on(sym) {
            if states.contains(t.from) {
                let pass = match &t.guard {
                    None => true,
                    Some(g) => guard_ok(g),
                };
                if pass {
                    next.insert(t.to);
                }
            }
        }
        next
    }

    /// Is any state in `states` cleanup-safe?
    pub fn finalise_ok(&self, states: &StateSet) -> bool {
        self.cleanup_safe.intersects(states)
    }

    /// Symbolic whole-word simulation for tests and offline analysis:
    /// run one instance (no variable bindings, guards always pass)
    /// over a word of symbols, applying TESLA's update semantics —
    /// non-site events with no transition are ignored (unless strict),
    /// site events with no transition are violations — and finalise.
    pub fn simulate(&self, word: &[SymbolId]) -> Verdict {
        let mut states = self.initial_states();
        for &sym in word {
            if sym == self.cleanup_sym {
                return if self.finalise_ok(&states) {
                    Verdict::Accepted
                } else {
                    Verdict::CleanupViolation
                };
            }
            if sym == self.init_sym {
                continue;
            }
            let next = self.step(&states, sym, |_| true);
            if next.is_empty() {
                if sym == self.site_sym {
                    return Verdict::SiteViolation;
                }
                if self.strict {
                    return Verdict::StrictViolation;
                }
                // Irrelevant at this point: ignore (§4.4.1 — automata
                // "resume ignoring events" outside their progress).
            } else {
                states = next;
            }
        }
        if self.finalise_ok(&states) {
            Verdict::Accepted
        } else {
            Verdict::CleanupViolation
        }
    }

    /// Find the symbol matching a concrete event, if any, together
    /// with its extracted bindings. Linear scan — offline use only;
    /// the runtime builds interned dispatch tables instead.
    pub fn match_event<'s>(
        &'s self,
        ev: &ProgEvent<'_>,
    ) -> Vec<(SymbolId, crate::symbol::MatchBindings)> {
        self.symbols
            .iter()
            .filter_map(|s| s.matches(ev).map(|b| (s.id, b)))
            .collect()
    }

    /// All function names this automaton needs instrumented, with the
    /// side. Includes the bound functions (callee side) and any
    /// `incallstack` guard functions.
    pub fn instrumentation_targets(&self) -> Vec<(String, InstrSide)> {
        let mut out: Vec<(String, InstrSide)> = Vec::new();
        let mut push = |name: &str, side: InstrSide| {
            if !out.iter().any(|(n, s)| n == name && *s == side) {
                out.push((name.to_string(), side));
            }
        };
        for s in &self.symbols {
            if let Some((name, _dir, side)) = s.function_name() {
                push(name, side);
            }
        }
        push(&self.bound.start_fn, InstrSide::Callee);
        push(&self.bound.end_fn, InstrSide::Callee);
        for t in &self.transitions {
            if let Some(Guard::InCallStack(f)) = &t.guard {
                push(f, InstrSide::Callee);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_spec::{atleast, call, msg_send, AssertionBuilder, ExprBuilder};

    fn sym_named(a: &Automaton, needle: &str) -> SymbolId {
        a.symbols
            .iter()
            .find(|s| s.kind.to_string().contains(needle))
            .unwrap_or_else(|| panic!("no symbol containing `{needle}`"))
            .id
    }

    fn mac_poll_automaton() -> Automaton {
        // Figure 9's assertion.
        let a = AssertionBuilder::syscall()
            .named("mac_poll")
            .previously(
                call("mac_socket_check_poll")
                    .any_ptr()
                    .arg_var("so")
                    .returns(0),
            )
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn figure9_shape() {
        let m = mac_poll_automaton();
        // Alphabet: check symbol, site, init, cleanup.
        assert_eq!(m.n_symbols(), 4);
        assert_eq!(m.var_names, vec!["so".to_string()]);
        // previously(x): 3 body states in a chain.
        assert_eq!(m.n_states, 3);
        assert_eq!(m.bound.start_fn, "amd64_syscall");
        assert_eq!(m.bound.start_dir, Direction::Entry);
        assert_eq!(m.bound.end_dir, Direction::Exit);
    }

    #[test]
    fn previously_simulation_verdicts() {
        let m = mac_poll_automaton();
        let check = sym_named(&m, "mac_socket_check_poll");
        let (site, cleanup) = (m.site_sym, m.cleanup_sym);
        // check then site then cleanup: accepted.
        assert_eq!(m.simulate(&[check, site, cleanup]), Verdict::Accepted);
        // site with no prior check: violation at the site.
        assert_eq!(m.simulate(&[site]), Verdict::SiteViolation);
        // Path that never reaches the site: bypass, accepted.
        assert_eq!(m.simulate(&[cleanup]), Verdict::Accepted);
        assert_eq!(m.simulate(&[check, cleanup]), Verdict::Accepted);
        // Duplicate checks are ignored, not errors.
        assert_eq!(
            m.simulate(&[check, check, site, cleanup]),
            Verdict::Accepted
        );
    }

    #[test]
    fn eventually_cleanup_violation() {
        let a = AssertionBuilder::syscall()
            .named("sugid")
            .eventually(call("audit_event").arg_var("p").returns(0))
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        let audit = sym_named(&m, "audit_event");
        let (site, cleanup) = (m.site_sym, m.cleanup_sym);
        // Site reached, obligation met before cleanup.
        assert_eq!(m.simulate(&[site, audit, cleanup]), Verdict::Accepted);
        // Site reached but obligation unmet at cleanup.
        assert_eq!(m.simulate(&[site, cleanup]), Verdict::CleanupViolation);
        // Site never reached: bypass.
        assert_eq!(m.simulate(&[cleanup]), Verdict::Accepted);
    }

    #[test]
    fn disjunction_accepts_any_branch_and_both() {
        let a =
            AssertionBuilder::syscall()
                .previously(
                    ExprBuilder::from(call("check_open").any_ptr().arg_var("vp").returns(0))
                        .or(call("check_exec").any_ptr().arg_var("vp").returns(0)),
                )
                .build()
                .unwrap();
        let m = compile(&a).unwrap();
        let open = sym_named(&m, "check_open");
        let exec = sym_named(&m, "check_exec");
        let (site, cleanup) = (m.site_sym, m.cleanup_sym);
        assert_eq!(m.simulate(&[open, site, cleanup]), Verdict::Accepted);
        assert_eq!(m.simulate(&[exec, site, cleanup]), Verdict::Accepted);
        assert_eq!(m.simulate(&[open, exec, site, cleanup]), Verdict::Accepted);
        assert_eq!(m.simulate(&[site, cleanup]), Verdict::SiteViolation);
    }

    #[test]
    fn guarded_site_transition_consults_guard() {
        let a = AssertionBuilder::syscall()
            .body(ExprBuilder::in_callstack("ufs_readdir").or(
                ExprBuilder::from(call("mac_check").any_ptr().returns(0)).then(ExprBuilder::site()),
            ))
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        // With the guard passing, a bare site event is fine.
        let next = m.step(&m.initial_states(), m.site_sym, |_| true);
        assert!(!next.is_empty());
        // With the guard failing and no prior check, the site event
        // has no viable transition.
        let next = m.step(&m.initial_states(), m.site_sym, |_| false);
        assert!(next.is_empty());
    }

    #[test]
    fn strict_modifier_sets_class_flag() {
        let a = AssertionBuilder::within("f")
            .previously(ExprBuilder::from(call("g").returns(0)).strict())
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        assert!(m.strict);
        let g = sym_named(&m, "g()");
        let site = m.site_sym;
        // Out-of-order in strict mode: violation.
        assert_eq!(m.simulate(&[g, g, site]), Verdict::StrictViolation);
    }

    #[test]
    fn atleast_zero_tracing_automaton_never_fails_on_events() {
        // Figure 8: ATLEAST(0, push, pop, draw) — pure tracing.
        let a = AssertionBuilder::within("startDrawing")
            .previously(atleast(
                0,
                vec![
                    msg_send("push").into(),
                    msg_send("pop").into(),
                    msg_send("drawWithFrame:inView:")
                        .any("NSRect")
                        .any("id")
                        .into(),
                ],
            ))
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        let push = sym_named(&m, "push");
        let pop = sym_named(&m, "pop");
        let (site, cleanup) = (m.site_sym, m.cleanup_sym);
        assert_eq!(
            m.simulate(&[push, push, pop, site, cleanup]),
            Verdict::Accepted
        );
        assert_eq!(m.simulate(&[site, cleanup]), Verdict::Accepted);
    }

    #[test]
    fn caller_side_modifier_reaches_symbols() {
        let a = AssertionBuilder::within("main")
            .previously(
                ExprBuilder::from(
                    call("EVP_VerifyFinal")
                        .any_ptr()
                        .any_ptr()
                        .any("int")
                        .any_ptr()
                        .returns(1),
                )
                .caller(),
            )
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        let evp = m
            .symbols
            .iter()
            .find_map(|s| s.function_name().filter(|(n, ..)| *n == "EVP_VerifyFinal"))
            .unwrap();
        assert_eq!(evp.2, InstrSide::Caller);
    }

    #[test]
    fn instrumentation_targets_cover_bounds_guards_and_events() {
        let a = AssertionBuilder::syscall()
            .body(ExprBuilder::in_callstack("ufs_readdir").or(
                ExprBuilder::from(call("mac_check").any_ptr().returns(0)).then(ExprBuilder::site()),
            ))
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        let names: Vec<String> = m
            .instrumentation_targets()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"mac_check".to_string()));
        assert!(names.contains(&"amd64_syscall".to_string()));
        assert!(names.contains(&"ufs_readdir".to_string()));
    }

    #[test]
    fn symbols_are_deduplicated() {
        // The same event written twice interns to one symbol.
        let a = AssertionBuilder::within("f")
            .previously(
                ExprBuilder::from(call("g").returns(0))
                    .or(ExprBuilder::from(call("g").returns(0)).then(call("h").returns(0))),
            )
            .build()
            .unwrap();
        let m = compile(&a).unwrap();
        let g_syms = m
            .symbols
            .iter()
            .filter(|s| matches!(s.function_name(), Some(("g", ..))))
            .count();
        assert_eq!(g_syms, 1);
    }

    #[test]
    fn too_many_states_is_an_error() {
        // OR of many multi-state sequences: cross product blows up.
        let mut big = ExprBuilder::from(call("f0").returns(0)).then(call("g0").returns(0));
        for i in 1..8 {
            let e = ExprBuilder::from(call(&format!("f{i}")).returns(0))
                .then(call(&format!("g{i}")).returns(0));
            big = big.or(e);
        }
        let a = AssertionBuilder::within("main")
            .previously(big)
            .build()
            .unwrap();
        assert!(matches!(compile(&a), Err(CompileError::TooManyStates(_))));
    }

    #[test]
    fn match_event_extracts_bindings() {
        let m = mac_poll_automaton();
        let args = [tesla_spec::Value(1), tesla_spec::Value(42)];
        let hits = m.match_event(&ProgEvent::FnExit {
            name: "mac_socket_check_poll",
            args: &args,
            ret: tesla_spec::Value(0),
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.pairs, vec![(0, tesla_spec::Value(42))]);
        // Failed static check (non-zero return) matches nothing.
        let hits = m.match_event(&ProgEvent::FnExit {
            name: "mac_socket_check_poll",
            args: &args,
            ret: tesla_spec::Value::from_i64(-1),
        });
        assert!(hits.is_empty());
    }
}
