//! Shared automaton compile cache (§7).
//!
//! The paper's toolchain "re-load[s], re-pars[es], and re-interpret[s]
//! the same TESLA automaton description for every LLVM IR file it
//! instruments" — with 85 assertions and 20 units that is 1 700
//! automaton compilations per build where 85 would do. This module is
//! the fix the paper sketches but never built: assertions are compiled
//! to [`Automaton`] classes **once per content fingerprint** and
//! shared by `Arc` across every compilation unit, every incremental
//! rebuild, and every thread of the parallel back-end.
//!
//! The cache key is [`ManifestEntry::content_fingerprint`] — a stable
//! FNV-1a hash of the assertion's canonical serialisation — so an
//! edited assertion recompiles exactly itself while every untouched
//! assertion is a pointer copy. Compilation runs *outside* the map
//! lock: concurrent instrumentation threads never serialise on each
//! other's compiles, and a racing duplicate compile is resolved by
//! first-insert-wins (both results are identical by construction).

use crate::automaton::{compile, Automaton};
use crate::compiled::CompiledDfa;
use crate::manifest::{Manifest, ManifestEntry};
use crate::CompileError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memo table from assertion content fingerprints to compiled
/// automata. Cheap to share (`Arc<CompileCache>`), safe to call from
/// many threads.
#[derive(Debug, Default)]
pub struct CompileCache {
    map: Mutex<HashMap<u64, Arc<Automaton>>>,
    /// Dense transition matrices keyed by the same fingerprint.
    /// `Some(None)` records "this automaton is outside the compilable
    /// fragment" so repeated registrations skip re-running subset
    /// construction just to fail again.
    dfa_map: Mutex<HashMap<u64, Option<Arc<CompiledDfa>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Compile `entry`'s assertion, or return the shared compiled form
    /// if an identical assertion was compiled before.
    ///
    /// # Errors
    ///
    /// Returns the [`CompileError`] tagged with the assertion name,
    /// matching [`Manifest::compile_all`]. Failures are not cached:
    /// they are cheap to reproduce and keep the table small.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking thread.
    pub fn get_or_compile(
        &self,
        entry: &ManifestEntry,
    ) -> Result<Arc<Automaton>, (String, CompileError)> {
        let key = entry.content_fingerprint();
        if let Some(a) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(a));
        }
        // Compile outside the lock: automaton construction (NFA
        // lowering, cross-products, cleanup-safe analysis) is the
        // expensive part and must not serialise other threads.
        let automaton =
            Arc::new(compile(&entry.assertion).map_err(|e| (entry.assertion.name.clone(), e))?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        Ok(Arc::clone(map.entry(key).or_insert(automaton)))
    }

    /// Compile every entry of `manifest`, sharing previously compiled
    /// automata. The result is positionally aligned with
    /// `manifest.entries` — index *i* is runtime class *i*, exactly as
    /// in [`Manifest::compile_all`].
    ///
    /// # Errors
    ///
    /// Returns the first compile failure, tagged with its assertion
    /// name.
    pub fn compile_manifest(
        &self,
        manifest: &Manifest,
    ) -> Result<Vec<Arc<Automaton>>, (String, CompileError)> {
        manifest
            .entries
            .iter()
            .map(|e| self.get_or_compile(e))
            .collect()
    }

    /// Compile `entry`'s automaton *and* its dense transition matrix
    /// (when one exists), both memoised by content fingerprint. The
    /// matrix's `None` outcome (guards / state blow-up) is memoised
    /// too, so re-registering an uncompilable automaton costs one map
    /// probe, not a subset construction.
    ///
    /// # Errors
    ///
    /// As [`CompileCache::get_or_compile`].
    ///
    /// # Panics
    ///
    /// Panics if an internal lock was poisoned by a panicking thread.
    pub fn get_or_compile_with_dfa(
        &self,
        entry: &ManifestEntry,
    ) -> Result<(Arc<Automaton>, Option<Arc<CompiledDfa>>), (String, CompileError)> {
        let automaton = self.get_or_compile(entry)?;
        let key = entry.content_fingerprint();
        if let Some(d) = self.dfa_map.lock().unwrap().get(&key) {
            return Ok((automaton, d.clone()));
        }
        // Subset construction outside the lock, first-insert-wins —
        // same discipline as the automaton map.
        let dfa = CompiledDfa::build(&automaton).map(Arc::new);
        let mut map = self.dfa_map.lock().unwrap();
        Ok((automaton, map.entry(key).or_insert(dfa).clone()))
    }

    /// [`CompileCache::compile_manifest`], with each automaton paired
    /// with its memoised transition matrix (or `None` for automata
    /// outside the compilable fragment). Positionally aligned with
    /// `manifest.entries`.
    ///
    /// # Errors
    ///
    /// Returns the first compile failure, tagged with its assertion
    /// name.
    #[allow(clippy::type_complexity)]
    pub fn compile_manifest_with_dfas(
        &self,
        manifest: &Manifest,
    ) -> Result<Vec<(Arc<Automaton>, Option<Arc<CompiledDfa>>)>, (String, CompileError)> {
        manifest
            .entries
            .iter()
            .map(|e| self.get_or_compile_with_dfa(e))
            .collect()
    }

    /// Cache lookups that found an existing automaton.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct compiled automata retained.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking thread.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_spec::{call, AssertionBuilder};

    fn manifest_with(n: usize) -> Manifest {
        let mut m = Manifest::new();
        for i in 0..n {
            let a = AssertionBuilder::syscall()
                .named(&format!("a{i}"))
                .previously(call("check").arg_var("x").returns(0))
                .build()
                .unwrap();
            m.push(&format!("u{i}.c"), a);
        }
        m
    }

    #[test]
    fn second_compile_is_a_hit_and_shares_storage() {
        let cache = CompileCache::new();
        let m = manifest_with(1);
        let a1 = cache.get_or_compile(&m.entries[0]).unwrap();
        let a2 = cache.get_or_compile(&m.entries[0]).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compile_manifest_matches_compile_all() {
        let cache = CompileCache::new();
        let m = manifest_with(3);
        let shared = cache.compile_manifest(&m).unwrap();
        let owned = m.compile_all().unwrap();
        assert_eq!(shared.len(), owned.len());
        for (s, o) in shared.iter().zip(&owned) {
            assert_eq!(s.name, o.name);
            assert_eq!(s.n_states, o.n_states);
            assert_eq!(s.transitions, o.transitions);
        }
        // Re-running the whole manifest is all hits.
        cache.compile_manifest(&m).unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn distinct_assertions_get_distinct_slots() {
        let cache = CompileCache::new();
        let m = manifest_with(2);
        let a = cache.get_or_compile(&m.entries[0]).unwrap();
        let b = cache.get_or_compile(&m.entries[1]).unwrap();
        // Different names → different content → different automata.
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn dfa_memoisation_shares_matrices() {
        let cache = CompileCache::new();
        let m = manifest_with(1);
        let (a1, d1) = cache.get_or_compile_with_dfa(&m.entries[0]).unwrap();
        let (a2, d2) = cache.get_or_compile_with_dfa(&m.entries[0]).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let (d1, d2) = (d1.expect("guard-free"), d2.expect("guard-free"));
        assert!(Arc::ptr_eq(&d1, &d2));
        assert!(d1.n_states() >= 2);
    }

    #[test]
    fn concurrent_compiles_converge() {
        let cache = Arc::new(CompileCache::new());
        let m = Arc::new(manifest_with(8));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..8 {
                        cache.compile_manifest(&m).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
        // Racing first-compiles may duplicate work, but the table
        // keeps one automaton per fingerprint and later rounds hit.
        assert!(cache.hits() >= 8 * 4 * 8 - 8 * 4);
    }
}
