//! Compiled transition matrices: the dispatch representation behind
//! batched ingestion.
//!
//! The runtime's interpreted hot path steps the symbolic NFA directly:
//! every event walks the per-symbol transition list, testing `from`
//! membership bit by bit. That is the right engine for *guarded*
//! automata (guards need per-instance bindings), but most of the
//! paper's assertions compile to small guard-free automata whose whole
//! reachable configuration space fits in a few dozen subset-construction
//! states. [`CompiledDfa`] precomputes that space once, at registration
//! time, into a dense flat `(state × symbol) → next_state` matrix of
//! `u16` cells — one bounds-checked index per event, no `HashMap`, no
//! transition-list walk, no per-step allocation.
//!
//! Each compiled state remembers the NFA [`StateSet`] it stands for,
//! so the runtime can keep reporting lifecycle events (update
//! from/to sets, finalise verdicts) byte-identically to the
//! interpreted path: the matrix is an accelerator, never a semantic
//! fork. Automata with guards, or whose subset construction exceeds
//! [`MAX_DFA_STATES`], simply return `None` from [`CompiledDfa::build`]
//! and keep using the interpreter.

use crate::analysis::has_guards;
use crate::automaton::Automaton;
use crate::bitset::StateSet;
use crate::symbol::SymbolId;
use std::collections::HashMap;

/// Cap on subset-construction states a compiled matrix may hold.
///
/// Leaves headroom under the [`DEAD`] sentinel while bounding the
/// matrix at `MAX_DFA_STATES × n_symbols × 2` bytes; assertions from
/// the paper's corpora compile to well under a hundred states.
pub const MAX_DFA_STATES: usize = 4096;

/// The matrix cell meaning "no successor: the run died here".
pub const DEAD: u16 = u16::MAX;

/// A dense, guard-free transition matrix for one automaton class.
///
/// Built by subset construction over the automaton body (init and
/// cleanup pseudo-symbols excluded, exactly as [`crate::Dfa`] builds
/// its structural view), flattened row-major: state `s` on symbol `y`
/// steps to `matrix[s * n_symbols + y]`, with [`DEAD`] for "no
/// transition".
#[derive(Debug, Clone)]
pub struct CompiledDfa {
    matrix: Vec<u16>,
    /// For each compiled state, the NFA state set it represents.
    state_sets: Vec<StateSet>,
    /// NFA set → compiled state, for re-entering the matrix after an
    /// interpreted detour (e.g. a dedup union of two instances).
    index: HashMap<StateSet, u16>,
    start: u16,
    n_symbols: usize,
}

impl CompiledDfa {
    /// Compile `automaton` into a dense matrix, or `None` when the
    /// automaton is outside the compilable fragment: it has guarded
    /// transitions (guards consult per-instance bindings, which a
    /// state-only matrix cannot see) or its subset construction
    /// exceeds [`MAX_DFA_STATES`].
    pub fn build(automaton: &Automaton) -> Option<CompiledDfa> {
        if has_guards(automaton) {
            return None;
        }
        let n_symbols = automaton.n_symbols();
        let start_set = automaton.initial_states();
        let mut state_sets = vec![start_set];
        let mut index: HashMap<StateSet, u16> = HashMap::new();
        index.insert(start_set, 0);
        let mut matrix: Vec<u16> = Vec::new();
        // In-order BFS, as in `Dfa::from_automaton`: every state below
        // the cursor already has its matrix row.
        let mut i = 0;
        while i < state_sets.len() {
            let set = state_sets[i];
            let row_base = matrix.len();
            matrix.resize(row_base + n_symbols, DEAD);
            for sym in 0..n_symbols {
                let sym_id = SymbolId(sym as u32);
                // Init/cleanup are lifecycle events, not body
                // transitions; leave their cells DEAD. The runtime
                // never steps the matrix on them.
                if sym_id == automaton.init_sym || sym_id == automaton.cleanup_sym {
                    continue;
                }
                let next = automaton.step(&set, sym_id, |_| true);
                if next.is_empty() {
                    continue;
                }
                let ni = match index.get(&next) {
                    Some(&ni) => ni,
                    None => {
                        if state_sets.len() >= MAX_DFA_STATES {
                            return None;
                        }
                        let ni = state_sets.len() as u16;
                        state_sets.push(next);
                        index.insert(next, ni);
                        ni
                    }
                };
                matrix[row_base + sym] = ni;
            }
            i += 1;
        }
        Some(CompiledDfa {
            matrix,
            state_sets,
            index,
            start: 0,
            n_symbols,
        })
    }

    /// The compiled start state.
    pub fn start(&self) -> u16 {
        self.start
    }

    /// Number of compiled states.
    pub fn n_states(&self) -> usize {
        self.state_sets.len()
    }

    /// Width of each matrix row.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Step `state` on `sym`: one dense load. Returns [`DEAD`] when
    /// the run dies. `state` must be a live state previously returned
    /// by this matrix (or [`Self::start`]).
    #[inline]
    pub fn step(&self, state: u16, sym: SymbolId) -> u16 {
        self.matrix[state as usize * self.n_symbols + sym.0 as usize]
    }

    /// The NFA state set a compiled state stands for.
    #[inline]
    pub fn states(&self, state: u16) -> StateSet {
        self.state_sets[state as usize]
    }

    /// Re-enter the matrix from an arbitrary NFA set: `Some(state)`
    /// when the set is a reachable subset-construction state, `None`
    /// when it is not (the instance then falls back to interpretation
    /// for the rest of its life).
    pub fn resolve(&self, set: &StateSet) -> Option<u16> {
        self.index.get(set).copied()
    }

    /// Bytes held by the matrix itself (diagnostic surface for the
    /// cache).
    pub fn matrix_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile;
    use crate::dfa::Dfa;
    use proptest::prelude::*;
    use tesla_spec::{call, AssertionBuilder, ExprBuilder};

    fn guard_free_samples() -> Vec<Automaton> {
        let simple = AssertionBuilder::syscall()
            .previously(call("check").any_ptr().returns(0))
            .build()
            .unwrap();
        let or3 = AssertionBuilder::syscall()
            .previously(
                ExprBuilder::from(call("a").returns(0))
                    .or(call("b").returns(0))
                    .or(call("c").returns(0)),
            )
            .build()
            .unwrap();
        let seq = AssertionBuilder::within("main")
            .previously(
                ExprBuilder::from(call("x").returns(0))
                    .then(call("y").returns(0))
                    .or(ExprBuilder::from(call("z").returns(0))),
            )
            .build()
            .unwrap();
        let ev = AssertionBuilder::syscall()
            .eventually(call("audit").returns(0))
            .build()
            .unwrap();
        vec![
            compile(&simple).unwrap(),
            compile(&or3).unwrap(),
            compile(&seq).unwrap(),
            compile(&ev).unwrap(),
        ]
    }

    #[test]
    fn matrix_matches_dfa_structure() {
        for a in guard_free_samples() {
            let c = CompiledDfa::build(&a).expect("guard-free compiles");
            let d = Dfa::from_automaton(&a);
            assert_eq!(c.n_states(), d.n_states());
            assert_eq!(c.states(c.start()), a.initial_states());
            for s in 0..d.n_states() {
                // The compiled matrix and the structural DFA number
                // states identically (same BFS order).
                assert_eq!(c.states(s as u16), d.states[s]);
                for sym in 0..a.n_symbols() {
                    let expect = d.transitions[s][sym].map(|t| t as u16).unwrap_or(DEAD);
                    assert_eq!(c.step(s as u16, SymbolId(sym as u32)), expect);
                }
            }
        }
    }

    #[test]
    fn resolve_round_trips_every_state() {
        for a in guard_free_samples() {
            let c = CompiledDfa::build(&a).expect("compiles");
            for s in 0..c.n_states() as u16 {
                assert_eq!(c.resolve(&c.states(s)), Some(s));
            }
            assert_eq!(c.resolve(&StateSet::EMPTY), None);
        }
    }

    #[test]
    fn guarded_automata_stay_interpreted() {
        // `arg_var` produces binding work but no guard; an explicit
        // `where` clause does. Use the spec surface that compiles a
        // guard: incallstack-style guards come from analysis fixtures,
        // so instead assert directly off `has_guards`.
        for a in guard_free_samples() {
            assert!(!has_guards(&a));
            assert!(CompiledDfa::build(&a).is_some());
        }
    }

    proptest! {
        #[test]
        fn matrix_and_nfa_agree_on_random_words(
            which in 0usize..4,
            word in proptest::collection::vec(0u32..8, 0..16),
        ) {
            let a = &guard_free_samples()[which];
            let c = CompiledDfa::build(a).expect("compiles");
            let n = a.n_symbols() as u32;
            let word: Vec<SymbolId> = word
                .into_iter()
                .map(|w| SymbolId(w % n))
                .filter(|s| *s != a.init_sym && *s != a.cleanup_sym)
                .collect();
            let mut set = a.initial_states();
            let mut st = c.start();
            for &sym in &word {
                let next = a.step(&set, sym, |_| true);
                let nd = c.step(st, sym);
                if next.is_empty() {
                    prop_assert_eq!(nd, DEAD);
                    return Ok(());
                }
                prop_assert_ne!(nd, DEAD);
                prop_assert_eq!(c.states(nd), next);
                set = next;
                st = nd;
            }
        }
    }
}
