//! Graphviz rendering of automata (fig. 9).
//!
//! "TESLA can combine observations of dynamic behaviour with static
//! automata descriptions, producing weighted graphs … the programmer
//! can visually inspect the portions of the state graph that are
//! executed in practice, as well as their relative frequencies"
//! (§4.4.2). The weight source is `tesla-runtime`'s counting handler;
//! this module only needs a `(state, symbol) → count` lookup.

use crate::automaton::Automaton;
use crate::dfa::Dfa;
use crate::symbol::{SymbolId, SymbolKind};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Per-transition run-time weights for rendering.
pub trait WeightSource {
    /// How many times `from --sym-->` fired at run time.
    fn weight(&self, from: u32, sym: u32) -> u64;
}

/// No weights: uniform pen width.
pub struct Unweighted;

impl WeightSource for Unweighted {
    fn weight(&self, _from: u32, _sym: u32) -> u64 {
        0
    }
}

impl<F: Fn(u32, u32) -> u64> WeightSource for F {
    fn weight(&self, from: u32, sym: u32) -> u64 {
        self(from, sym)
    }
}

/// A dense `(state, symbol) → count` snapshot, decoupled from
/// whatever live counter structure produced it. The runtime's
/// telemetry registry exports its per-class transition tables in this
/// shape (state ids follow [`Dfa::from_automaton`]'s deterministic
/// BFS order, the same order `render` uses), so weighted fig. 9
/// graphs can be drawn from a frozen snapshot while dispatch
/// continues.
pub struct DenseWeights {
    n_symbols: usize,
    cells: Vec<u64>,
}

impl DenseWeights {
    /// Build from sparse `(from_state, symbol, count)` triples.
    pub fn from_triples(
        n_states: u32,
        n_symbols: usize,
        triples: impl IntoIterator<Item = (u32, u32, u64)>,
    ) -> Self {
        let mut cells = vec![0u64; n_states as usize * n_symbols];
        for (from, sym, count) in triples {
            if (from as usize) < n_states as usize && (sym as usize) < n_symbols {
                cells[from as usize * n_symbols + sym as usize] += count;
            }
        }
        DenseWeights { n_symbols, cells }
    }

    /// Total firings across all transitions.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }
}

impl WeightSource for DenseWeights {
    fn weight(&self, from: u32, sym: u32) -> u64 {
        self.cells
            .get(from as usize * self.n_symbols + sym as usize)
            .copied()
            .unwrap_or(0)
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the automaton body as a Graphviz digraph, in the style of
/// figure 9: a synthetic entry node for «init», cleanup edges from
/// every cleanup-safe state, and transitions weighted (pen width and
/// count labels) by run-time occurrence.
pub fn render(automaton: &Automaton, weights: &dyn WeightSource) -> String {
    render_inner(automaton, weights, None, &[])
}

/// Palette for merge-group fills: one colour per group, cycled.
const GROUP_COLORS: &[&str] = &[
    "lightsalmon",
    "lightskyblue",
    "palegreen",
    "plum",
    "khaki",
    "lightpink",
];

/// Render the automaton with the linter's mergeable-state groups
/// highlighted: every state in the same group (indistinguishable
/// under Hopcroft minimisation of the determinised automaton) is
/// filled with the same colour, so the redundancy is visible at a
/// glance. `groups` uses [`Dfa::from_automaton`] state indices — the
/// same deterministic BFS order `render` draws — as produced by
/// `analysis::merge_groups`.
pub fn render_with_merge_groups(automaton: &Automaton, groups: &[Vec<u32>]) -> String {
    render_inner(automaton, &Unweighted, None, groups)
}

/// The replayed counterexample path through the determinised
/// automaton, precomputed for highlighting.
struct Highlight {
    /// `(state, symbol)` body edges on the error path.
    hot: HashSet<(u32, u32)>,
    /// The «init» edge is on the path.
    init_hot: bool,
    /// The violating final step: source DFA state and edge label.
    violation: Option<(u32, String)>,
}

/// Render the automaton with a counterexample event trace (from the
/// flow-sensitive model checker) highlighted in red: every edge the
/// trace takes is bold, and the final — violating — step is drawn
/// into a synthetic `violation` node, since by definition the
/// automaton has no legal transition for it.
///
/// `trace` is the symbol sequence of the counterexample, starting
/// with the automaton's «init» symbol; symbols with no transition
/// from the current state are rendered as the violation and end the
/// walk.
pub fn render_with_trace(automaton: &Automaton, trace: &[SymbolId]) -> String {
    let dfa = Dfa::from_automaton(automaton);
    let mut hl = Highlight {
        hot: HashSet::new(),
        init_hot: false,
        violation: None,
    };
    let mut state = dfa.start;
    for (i, sym) in trace.iter().enumerate() {
        let last = i + 1 == trace.len();
        if *sym == automaton.init_sym {
            hl.init_hot = true;
            state = dfa.start;
            continue;
        }
        let label = if *sym == automaton.cleanup_sym {
            "«cleanup»".to_string()
        } else {
            match &automaton.symbols[sym.0 as usize].kind {
                SymbolKind::Site => "«assertion»".to_string(),
                k => k.to_string(),
            }
        };
        let next = if *sym == automaton.cleanup_sym {
            None
        } else {
            dfa.transitions[state as usize][sym.0 as usize]
        };
        match next {
            // The last trace step is the violation even when a
            // state-level transition exists (the failure may be at
            // the binding level: no instance can accept it).
            Some(next) if !last => {
                hl.hot.insert((state, sym.0));
                state = next;
            }
            _ => {
                hl.violation = Some((state, label));
                break;
            }
        }
    }
    render_inner(automaton, &Unweighted, Some(&hl), &[])
}

fn render_inner(
    automaton: &Automaton,
    weights: &dyn WeightSource,
    highlight: Option<&Highlight>,
    merge_groups: &[Vec<u32>],
) -> String {
    let dfa = Dfa::from_automaton(automaton);
    // state → merge-group colour, for the linter's redundancy view.
    let mut group_color = vec![None; dfa.states.len()];
    for (gi, group) in merge_groups.iter().enumerate() {
        for &s in group {
            if let Some(slot) = group_color.get_mut(s as usize) {
                *slot = Some(GROUP_COLORS[gi % GROUP_COLORS.len()]);
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", esc(&automaton.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"Helvetica\"];");
    let _ = writeln!(
        out,
        "  entry [label=\"{}\\n(Entry)\", shape=box];",
        esc(&format!("{}({})", automaton.bound.start_fn, ""))
    );
    let _ = writeln!(
        out,
        "  exit [label=\"{}\\n(Exit)\", shape=box];",
        esc(&automaton.bound.end_fn)
    );
    for (i, _set) in dfa.states.iter().enumerate() {
        let style = if dfa.accepting[i] {
            ", peripheries=2"
        } else {
            ""
        };
        let fill = match group_color[i] {
            Some(color) => format!(", style=filled, fillcolor={color}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  s{i} [label=\"state {i}\\n\\\"{}\\\"\"{style}{fill}];",
            esc(&dfa.label(i as u32))
        );
    }
    // «init» edge.
    let init_hot = highlight.map(|h| h.init_hot).unwrap_or(false);
    if init_hot {
        let _ = writeln!(
            out,
            "  entry -> s0 [label=\"«init»\", style=dashed, color=red, penwidth=3.00];"
        );
    } else {
        let _ = writeln!(out, "  entry -> s0 [label=\"«init»\", style=dashed];");
    }
    // Body transitions.
    let max_w = {
        let mut m = 1u64;
        for (i, row) in dfa.transitions.iter().enumerate() {
            for (sym, tgt) in row.iter().enumerate() {
                if tgt.is_some() {
                    m = m.max(weights.weight(i as u32, sym as u32));
                }
            }
        }
        m
    };
    for (i, row) in dfa.transitions.iter().enumerate() {
        for (sym, tgt) in row.iter().enumerate() {
            let Some(tgt) = tgt else { continue };
            let label = match &automaton.symbols[sym].kind {
                SymbolKind::Site => "«assertion»".to_string(),
                k => k.to_string(),
            };
            let w = weights.weight(i as u32, sym as u32);
            let hot = highlight
                .map(|h| h.hot.contains(&(i as u32, sym as u32)))
                .unwrap_or(false);
            let pen = if hot {
                3.0
            } else {
                1.0 + 4.0 * (w as f64) / (max_w as f64)
            };
            let color = if hot { ", color=red" } else { "" };
            let wl = if w > 0 {
                format!(" ({w}×)")
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  s{i} -> s{tgt} [label=\"{}{}\", penwidth={pen:.2}{color}];",
                esc(&label),
                wl
            );
        }
    }
    // «cleanup» edges from cleanup-safe states.
    for (i, safe) in dfa.cleanup_safe.iter().enumerate() {
        if *safe {
            let _ = writeln!(out, "  s{i} -> exit [label=\"«cleanup»\", style=dashed];");
        }
    }
    // The violating step of a highlighted counterexample trace: by
    // construction the automaton cannot accept it, so it targets a
    // synthetic error node.
    if let Some((from, label)) = highlight.and_then(|h| h.violation.as_ref()) {
        let _ = writeln!(
            out,
            "  violation [label=\"violation\", shape=octagon, color=red, fontcolor=red];"
        );
        let _ = writeln!(
            out,
            "  s{from} -> violation [label=\"{}\", color=red, penwidth=3.00, style=bold];",
            esc(label)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile;
    use tesla_spec::{call, AssertionBuilder, ExprBuilder};

    fn mac_poll() -> Automaton {
        let a = AssertionBuilder::syscall()
            .named("figure9")
            .previously(
                call("mac_socket_check_poll")
                    .any_ptr()
                    .arg_var("so")
                    .returns(0),
            )
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn renders_figure9_structure() {
        let dot = render(&mac_poll(), &Unweighted);
        assert!(dot.contains("digraph \"figure9\""));
        assert!(dot.contains("«init»"));
        assert!(dot.contains("«cleanup»"));
        assert!(dot.contains("«assertion»"));
        assert!(dot.contains("mac_socket_check_poll"));
        assert!(dot.contains("NFA:"));
        assert!(dot.contains("amd64_syscall"));
        // Balanced braces — parseable by graphviz.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn weights_scale_pen_width() {
        let weigher = |from: u32, _sym: u32| if from == 0 { 100u64 } else { 1 };
        let dot = render(&mac_poll(), &weigher);
        assert!(dot.contains("(100×)"));
        assert!(dot.contains("penwidth=5.00"));
    }

    #[test]
    fn dense_weights_snapshot_renders_like_closure() {
        let a = mac_poll();
        let dfa = Dfa::from_automaton(&a);
        // Weight 100 on every symbol out of state 0, mirroring the
        // closure in `weights_scale_pen_width`; out-of-range triples
        // are dropped rather than panicking.
        let triples = (0..a.n_symbols() as u32)
            .map(|sym| (0u32, sym, 100u64))
            .chain([(u32::MAX, 0, 5), (0, u32::MAX, 5)]);
        let dense = DenseWeights::from_triples(dfa.states.len() as u32, a.n_symbols(), triples);
        assert_eq!(dense.weight(0, 0), 100);
        assert_eq!(dense.weight(u32::MAX, 0), 0);
        assert_eq!(dense.total(), 100 * a.n_symbols() as u64);
        let dot = render(&mac_poll(), &dense);
        assert!(dot.contains("(100×)"));
        assert!(dot.contains("penwidth=5.00"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn trace_highlights_error_path() {
        let a = mac_poll();
        // «init» straight to the assertion site with no prior check:
        // the site step is the violation.
        let dot = render_with_trace(&a, &[a.init_sym, a.site_sym]);
        assert!(dot.contains("entry -> s0 [label=\"«init»\", style=dashed, color=red"));
        assert!(dot.contains("violation [label=\"violation\", shape=octagon"));
        assert!(dot.contains("-> violation [label=\"«assertion»\", color=red"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn matched_trace_steps_are_bold_red() {
        let a = mac_poll();
        let check = a
            .symbols
            .iter()
            .find(|s| s.kind.to_string().contains("mac_socket_check_poll"))
            .expect("check symbol")
            .id;
        let dot = render_with_trace(&a, &[a.init_sym, check, a.site_sym]);
        // The check edge is walked (red, bold), and the final site
        // step still ends in the violation node: a site event can
        // fail at the binding level even where a state transition
        // exists.
        assert!(dot.contains("penwidth=3.00, color=red"));
        assert!(dot.contains("-> violation [label=\"«assertion»\""));
    }

    #[test]
    fn plain_render_is_unchanged_by_highlight_machinery() {
        let dot = render(&mac_poll(), &Unweighted);
        assert!(!dot.contains("violation ["));
        assert!(!dot.contains("color=red"));
        assert!(!dot.contains("fillcolor"));
    }

    #[test]
    fn merge_groups_share_a_fill_color() {
        // An exclusive-or of two one-event branches determinises into
        // two indistinguishable post-event states — the linter's
        // dead-state pathology.
        let a = AssertionBuilder::within("f")
            .named("xor")
            .previously(
                ExprBuilder::from(call("push").any("int").returns(1))
                    .xor(call("pop").any("int").returns(1)),
            )
            .build()
            .unwrap();
        let auto = compile(&a).unwrap();
        let dfa = Dfa::from_automaton(&auto);
        let groups = crate::analysis::merge_groups(&dfa);
        assert!(!groups.is_empty(), "xor shape should have mergeable states");
        let dot = render_with_merge_groups(&auto, &groups);
        // Every state in the first group carries the same fill.
        let color = GROUP_COLORS[0];
        for &s in &groups[0] {
            assert!(
                dot.contains(&format!("s{s} [label=")) && dot.contains(color),
                "state s{s} should be filled {color}"
            );
        }
        assert_eq!(
            dot.matches(&format!("fillcolor={color}")).count(),
            groups[0].len()
        );
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
