//! Graphviz rendering of automata (fig. 9).
//!
//! "TESLA can combine observations of dynamic behaviour with static
//! automata descriptions, producing weighted graphs … the programmer
//! can visually inspect the portions of the state graph that are
//! executed in practice, as well as their relative frequencies"
//! (§4.4.2). The weight source is `tesla-runtime`'s counting handler;
//! this module only needs a `(state, symbol) → count` lookup.

use crate::automaton::Automaton;
use crate::dfa::Dfa;
use crate::symbol::SymbolKind;
use std::fmt::Write as _;

/// Per-transition run-time weights for rendering.
pub trait WeightSource {
    /// How many times `from --sym-->` fired at run time.
    fn weight(&self, from: u32, sym: u32) -> u64;
}

/// No weights: uniform pen width.
pub struct Unweighted;

impl WeightSource for Unweighted {
    fn weight(&self, _from: u32, _sym: u32) -> u64 {
        0
    }
}

impl<F: Fn(u32, u32) -> u64> WeightSource for F {
    fn weight(&self, from: u32, sym: u32) -> u64 {
        self(from, sym)
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the automaton body as a Graphviz digraph, in the style of
/// figure 9: a synthetic entry node for «init», cleanup edges from
/// every cleanup-safe state, and transitions weighted (pen width and
/// count labels) by run-time occurrence.
pub fn render(automaton: &Automaton, weights: &dyn WeightSource) -> String {
    let dfa = Dfa::from_automaton(automaton);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", esc(&automaton.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"Helvetica\"];");
    let _ = writeln!(
        out,
        "  entry [label=\"{}\\n(Entry)\", shape=box];",
        esc(&format!("{}({})", automaton.bound.start_fn, ""))
    );
    let _ = writeln!(out, "  exit [label=\"{}\\n(Exit)\", shape=box];", esc(&automaton.bound.end_fn));
    for (i, _set) in dfa.states.iter().enumerate() {
        let style = if dfa.accepting[i] { ", peripheries=2" } else { "" };
        let _ = writeln!(
            out,
            "  s{i} [label=\"state {i}\\n\\\"{}\\\"\"{style}];",
            esc(&dfa.label(i as u32))
        );
    }
    // «init» edge.
    let _ = writeln!(out, "  entry -> s0 [label=\"«init»\", style=dashed];");
    // Body transitions.
    let max_w = {
        let mut m = 1u64;
        for (i, row) in dfa.transitions.iter().enumerate() {
            for (sym, tgt) in row.iter().enumerate() {
                if tgt.is_some() {
                    m = m.max(weights.weight(i as u32, sym as u32));
                }
            }
        }
        m
    };
    for (i, row) in dfa.transitions.iter().enumerate() {
        for (sym, tgt) in row.iter().enumerate() {
            let Some(tgt) = tgt else { continue };
            let label = match &automaton.symbols[sym].kind {
                SymbolKind::Site => "«assertion»".to_string(),
                k => k.to_string(),
            };
            let w = weights.weight(i as u32, sym as u32);
            let pen = 1.0 + 4.0 * (w as f64) / (max_w as f64);
            let wl = if w > 0 { format!(" ({w}×)") } else { String::new() };
            let _ = writeln!(
                out,
                "  s{i} -> s{tgt} [label=\"{}{}\", penwidth={pen:.2}];",
                esc(&label),
                wl
            );
        }
    }
    // «cleanup» edges from cleanup-safe states.
    for (i, safe) in dfa.cleanup_safe.iter().enumerate() {
        if *safe {
            let _ = writeln!(out, "  s{i} -> exit [label=\"«cleanup»\", style=dashed];");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile;
    use tesla_spec::{call, AssertionBuilder};

    fn mac_poll() -> Automaton {
        let a = AssertionBuilder::syscall()
            .named("figure9")
            .previously(call("mac_socket_check_poll").any_ptr().arg_var("so").returns(0))
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn renders_figure9_structure() {
        let dot = render(&mac_poll(), &Unweighted);
        assert!(dot.contains("digraph \"figure9\""));
        assert!(dot.contains("«init»"));
        assert!(dot.contains("«cleanup»"));
        assert!(dot.contains("«assertion»"));
        assert!(dot.contains("mac_socket_check_poll"));
        assert!(dot.contains("NFA:"));
        assert!(dot.contains("amd64_syscall"));
        // Balanced braces — parseable by graphviz.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn weights_scale_pen_width() {
        let weigher = |from: u32, _sym: u32| if from == 0 { 100u64 } else { 1 };
        let dot = render(&mac_poll(), &weigher);
        assert!(dot.contains("(100×)"));
        assert!(dot.contains("penwidth=5.00"));
    }
}
