//! Subset construction: symbolic NFA → DFA.
//!
//! Figure 9 of the paper shows DFA states labelled with the NFA state
//! sets they stand for ("NFA:1,3"); this module produces exactly that
//! structure. The runtime simulates the NFA directly (instances need
//! independent per-binding branching), but the DFA is used for offline
//! analysis, state-graph rendering and as a differential-testing
//! oracle: a property test checks NFA and DFA acceptance agree on
//! random words.
//!
//! Guards are ignored here (treated as always passing): the DFA is a
//! *structural* view.

use crate::automaton::Automaton;
use crate::bitset::StateSet;
use crate::symbol::SymbolId;
use std::collections::HashMap;

/// A determinised view of an [`Automaton`]'s body.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// For each DFA state, the NFA state set it represents (the
    /// "NFA:…" labels of fig. 9).
    pub states: Vec<StateSet>,
    /// `transitions[state][symbol]` → successor DFA state, if any.
    pub transitions: Vec<Vec<Option<u32>>>,
    /// DFA start state (always 0).
    pub start: u32,
    /// DFA states containing at least one accepting NFA state.
    pub accepting: Vec<bool>,
    /// DFA states containing at least one cleanup-safe NFA state.
    pub cleanup_safe: Vec<bool>,
}

impl Dfa {
    /// Determinise `automaton`'s body via subset construction.
    pub fn from_automaton(automaton: &Automaton) -> Dfa {
        let n_syms = automaton.n_symbols();
        let start_set = automaton.initial_states();
        let mut states = vec![start_set];
        let mut index: HashMap<StateSet, u32> = HashMap::new();
        index.insert(start_set, 0);
        let mut transitions: Vec<Vec<Option<u32>>> = Vec::new();
        // In-order BFS: `states` grows as successors are discovered;
        // every state at index < i already has its row built.
        let mut i = 0;
        while i < states.len() {
            let set = states[i];
            let mut row = vec![None; n_syms];
            for sym in 0..n_syms {
                let sym = SymbolId(sym as u32);
                // Skip the pseudo-symbols: init/cleanup are handled by
                // the instance lifecycle, not by body transitions.
                if sym == automaton.init_sym || sym == automaton.cleanup_sym {
                    continue;
                }
                let next = automaton.step(&set, sym, |_| true);
                if next.is_empty() {
                    continue;
                }
                let ni = *index.entry(next).or_insert_with(|| {
                    states.push(next);
                    states.len() as u32 - 1
                });
                row[sym.0 as usize] = Some(ni);
            }
            transitions.push(row);
            i += 1;
        }
        let accepting = states
            .iter()
            .map(|s| automaton.accepting.intersects(s))
            .collect();
        let cleanup_safe = states
            .iter()
            .map(|s| automaton.cleanup_safe.intersects(s))
            .collect();
        Dfa {
            states,
            transitions,
            start: 0,
            accepting,
            cleanup_safe,
        }
    }

    /// Number of DFA states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Run a word; `None` means the run died (no transition).
    pub fn run(&self, word: &[SymbolId]) -> Option<u32> {
        let mut s = self.start;
        for sym in word {
            s = self.transitions[s as usize]
                .get(sym.0 as usize)
                .copied()
                .flatten()?;
        }
        Some(s)
    }

    /// Does the DFA accept the word (ignoring TESLA's
    /// ignore-unmatched-events semantics — pure regular-language
    /// acceptance)?
    pub fn accepts(&self, word: &[SymbolId]) -> bool {
        self.run(word)
            .map(|s| self.accepting[s as usize])
            .unwrap_or(false)
    }

    /// The fig. 9 style label of a DFA state: `"NFA:1,3"`.
    pub fn label(&self, state: u32) -> String {
        let members: Vec<String> = self.states[state as usize]
            .iter()
            .map(|s| s.to_string())
            .collect();
        format!("NFA:{}", members.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile;
    use proptest::prelude::*;
    use tesla_spec::{call, AssertionBuilder, ExprBuilder};

    fn nfa_accepts(a: &Automaton, word: &[SymbolId]) -> bool {
        let mut states = a.initial_states();
        for &sym in word {
            let next = a.step(&states, sym, |_| true);
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        a.accepting.intersects(&states)
    }

    fn sample_automata() -> Vec<Automaton> {
        let simple = AssertionBuilder::syscall()
            .previously(call("check").any_ptr().returns(0))
            .build()
            .unwrap();
        let or3 = AssertionBuilder::syscall()
            .previously(
                ExprBuilder::from(call("a").returns(0))
                    .or(call("b").returns(0))
                    .or(call("c").returns(0)),
            )
            .build()
            .unwrap();
        let seq_or = AssertionBuilder::within("main")
            .previously(
                ExprBuilder::from(call("x").returns(0))
                    .then(call("y").returns(0))
                    .or(ExprBuilder::from(call("z").returns(0))),
            )
            .build()
            .unwrap();
        let ev = AssertionBuilder::syscall()
            .eventually(call("audit").returns(0))
            .build()
            .unwrap();
        vec![
            compile(&simple).unwrap(),
            compile(&or3).unwrap(),
            compile(&seq_or).unwrap(),
            compile(&ev).unwrap(),
        ]
    }

    #[test]
    fn dfa_start_is_initial_singleton() {
        for a in sample_automata() {
            let d = Dfa::from_automaton(&a);
            assert_eq!(d.states[0], a.initial_states());
            assert!(d.n_states() >= 2);
        }
    }

    #[test]
    fn dfa_labels_name_nfa_sets() {
        let a = &sample_automata()[0];
        let d = Dfa::from_automaton(a);
        assert!(d.label(0).starts_with("NFA:"));
    }

    #[test]
    fn dfa_is_deterministic() {
        for a in sample_automata() {
            let d = Dfa::from_automaton(&a);
            // Exactly one row per state, one successor per symbol.
            assert_eq!(d.transitions.len(), d.n_states());
            for row in &d.transitions {
                assert_eq!(row.len(), a.n_symbols());
            }
        }
    }

    proptest! {
        #[test]
        fn dfa_and_nfa_agree_on_random_words(
            which in 0usize..4,
            word in proptest::collection::vec(0u32..6, 0..12),
        ) {
            let a = &sample_automata()[which];
            let n = a.n_symbols() as u32;
            let word: Vec<SymbolId> = word
                .into_iter()
                .map(|w| SymbolId(w % n))
                .filter(|s| *s != a.init_sym && *s != a.cleanup_sym)
                .collect();
            let d = Dfa::from_automaton(a);
            prop_assert_eq!(d.accepts(&word), nfa_accepts(a, &word));
        }
    }
}

/// Moore-style partition refinement: merge DFA states that are
/// behaviourally indistinguishable (same acceptance, same
/// cleanup-safety, same successor blocks on every symbol). Used by
/// offline analysis and graph rendering; the paper's fig. 9 graphs
/// are already minimal for chain automata, but OR cross-products
/// frequently are not.
impl Dfa {
    /// Produce the minimal equivalent DFA. State labels (NFA sets) of
    /// merged states are unioned so rendering stays meaningful.
    pub fn minimise(&self) -> Dfa {
        let n = self.n_states();
        let n_syms = self.transitions.first().map(Vec::len).unwrap_or(0);
        // Initial partition: by (accepting, cleanup_safe).
        let mut block: Vec<usize> = (0..n)
            .map(|i| match (self.accepting[i], self.cleanup_safe[i]) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            })
            .collect();
        loop {
            // Signature of each state: (block, successor block per
            // symbol, with None for missing transitions).
            let mut sigs: Vec<(usize, Vec<Option<usize>>)> = Vec::with_capacity(n);
            for i in 0..n {
                let succ: Vec<Option<usize>> = (0..n_syms)
                    .map(|s| self.transitions[i][s].map(|t| block[t as usize]))
                    .collect();
                sigs.push((block[i], succ));
            }
            // Renumber by distinct signature.
            let mut index: std::collections::HashMap<&(usize, Vec<Option<usize>>), usize> =
                std::collections::HashMap::new();
            let mut next_block = Vec::with_capacity(n);
            for sig in &sigs {
                let id = index.len();
                next_block.push(*index.entry(sig).or_insert(id));
            }
            if next_block == block {
                break;
            }
            block = next_block;
        }
        let n_blocks = block.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        // Representative-based rebuild, with start mapped to block 0
        // by renumbering blocks in order of first appearance from the
        // start block.
        let mut order = vec![usize::MAX; n_blocks];
        let mut next = 0usize;
        let mut renum = |b: usize, order: &mut Vec<usize>| {
            if order[b] == usize::MAX {
                order[b] = next;
                next += 1;
            }
            order[b]
        };
        let start_block = renum(block[self.start as usize], &mut order);
        let mut states = vec![StateSet::EMPTY; n_blocks];
        let mut accepting = vec![false; n_blocks];
        let mut cleanup_safe = vec![false; n_blocks];
        let mut transitions: Vec<Vec<Option<u32>>> = vec![vec![None; n_syms]; n_blocks];
        // First pass: ensure deterministic numbering (walk states in
        // order).
        for i in 0..n {
            renum(block[i], &mut order);
        }
        for i in 0..n {
            let b = order[block[i]];
            states[b].union_with(&self.states[i]);
            accepting[b] |= self.accepting[i];
            cleanup_safe[b] |= self.cleanup_safe[i];
            for s in 0..n_syms {
                if let Some(t) = self.transitions[i][s] {
                    transitions[b][s] = Some(order[block[t as usize]] as u32);
                }
            }
        }
        Dfa {
            states,
            transitions,
            start: start_block as u32,
            accepting,
            cleanup_safe,
        }
    }
}

#[cfg(test)]
mod minimise_tests {
    use super::*;
    use crate::automaton::compile;
    use proptest::prelude::*;
    use tesla_spec::{call, AssertionBuilder, ExprBuilder};

    fn dfa_of(e: ExprBuilder) -> (crate::Automaton, Dfa) {
        let a = AssertionBuilder::within("f").previously(e).build().unwrap();
        let auto = compile(&a).unwrap();
        let d = Dfa::from_automaton(&auto);
        (auto, d)
    }

    #[test]
    fn minimise_shrinks_or_products() {
        // a||b||c: the cross product has redundant states once any
        // branch has completed.
        let (_a, d) = dfa_of(
            ExprBuilder::from(call("a").returns(0))
                .or(call("b").returns(0))
                .or(call("c").returns(0)),
        );
        let m = d.minimise();
        assert!(m.n_states() <= d.n_states());
        assert!(m.n_states() >= 2);
    }

    #[test]
    fn minimise_preserves_language_on_chain() {
        let (a, d) = dfa_of(ExprBuilder::from(call("x").returns(0)).then(call("y").returns(0)));
        let m = d.minimise();
        let syms: Vec<SymbolId> = (0..a.n_symbols() as u32).map(SymbolId).collect();
        // Enumerate all words up to length 3 over the alphabet.
        let mut words = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &words {
                for s in &syms {
                    if *s == a.init_sym || *s == a.cleanup_sym {
                        continue;
                    }
                    let mut w2 = w.clone();
                    w2.push(*s);
                    next.push(w2);
                }
            }
            words.extend(next);
        }
        for w in &words {
            assert_eq!(d.accepts(w), m.accepts(w), "word {w:?}");
        }
    }

    proptest! {
        #[test]
        fn minimise_preserves_language_randomly(
            shape in 0usize..4,
            word in proptest::collection::vec(0u32..6, 0..10),
        ) {
            let e = match shape {
                0 => ExprBuilder::from(call("a").returns(0)).or(call("b").returns(0)),
                1 => ExprBuilder::from(call("a").returns(0))
                    .then(call("b").returns(0))
                    .or(ExprBuilder::from(call("c").returns(0))),
                2 => ExprBuilder::from(call("a").returns(0)).xor(call("b").returns(0)),
                _ => tesla_spec::atleast(
                    1,
                    vec![call("a").returns(0).into(), call("b").returns(0).into()],
                ),
            };
            let (a, d) = dfa_of(e);
            let m = d.minimise();
            prop_assert!(m.n_states() <= d.n_states());
            let n = a.n_symbols() as u32;
            let w: Vec<SymbolId> = word
                .into_iter()
                .map(|x| SymbolId(x % n))
                .filter(|s| *s != a.init_sym && *s != a.cleanup_sym)
                .collect();
            prop_assert_eq!(d.accepts(&w), m.accepts(&w));
        }
    }
}
