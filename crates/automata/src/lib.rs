//! # tesla-automata — from temporal assertions to finite-state automata
//!
//! TESLA assertions "have a natural expression as finite-state
//! automata that can be mechanically woven into a program" (§3). This
//! crate is that translation: it lowers a [`tesla_spec::Assertion`]
//! into an [`Automaton`] *class* — a symbolic NFA whose alphabet is
//! program-event patterns — ready for the instrumenter to drive and
//! for libtesla to instantiate.
//!
//! The pieces, mapped to the paper:
//!
//! * [`symbol`] — the symbolic alphabet: each [`symbol::Symbol`]
//!   matches a family of concrete program events (function call or
//!   return with argument patterns, structure-field assignment,
//!   Objective-C-style message send, or the assertion site itself) and
//!   says which variables it binds (§3.4.1).
//! * [`nfa`] — Thompson-style construction over *epsilon-free*
//!   fragments: sequences, exclusive alternation (`^`), the inclusive
//!   OR (`||`) as a cross-product automaton exactly per the equations
//!   of §3.4.2, `ATLEAST(n, ...)` repetition, and `optional`.
//! * [`automaton`] — bounds wrapping (§3.3): «init» on the start
//!   event, «cleanup» on the end event, *bypass* finalisation for code
//!   paths that never reach the assertion site (§4.1), and the
//!   cleanup-safety analysis that decides whether finalising an
//!   instance in a given state is acceptance or a violation (the
//!   `eventually` case).
//! * [`dfa`] — subset construction; figure 9's states are labelled
//!   with NFA state sets ("NFA:1,3") exactly as this module produces.
//! * [`analysis`] — the automaton algebra behind `tesla lint`:
//!   complete-DFA complement, synchronized product, emptiness within
//!   the temporal bound, Hopcroft-style minimisation and language
//!   inclusion via product-with-complement, plus the within-bound
//!   closure construction that makes TESLA's ignore/site/strict
//!   semantics amenable to that algebra.
//! * [`manifest`] — the on-disk `.tesla` interchange format (§4.1).
//!   The paper uses protocol buffers; we use `serde_json` (see
//!   DESIGN.md). Manifests from many compilation units are merged into
//!   one program-wide description, which is what makes incremental
//!   rebuilds one-to-many (§5.1).
//! * [`dot`] — Graphviz rendering, optionally weighted by run-time
//!   transition counts (fig. 9, §4.4.2).
//! * [`cache`] — the shared automaton compile cache: assertions are
//!   compiled once per content fingerprint and shared by `Arc` across
//!   compilation units and threads, fixing the §7 "re-loading,
//!   re-parsing, and re-interpreting" inefficiency.
//!
//! ## Example
//!
//! ```
//! use tesla_automata::{compile, Dfa};
//! use tesla_spec::parse_assertion;
//!
//! let a = parse_assertion(
//!     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)",
//! ).unwrap();
//! let auto = compile(&a).unwrap();
//! assert_eq!(auto.n_states, 3);                 // the fig. 9 chain
//! assert_eq!(auto.bound.start_fn, "amd64_syscall");
//! let dfa = Dfa::from_automaton(&auto);
//! assert_eq!(dfa.label(0), "NFA:0");            // fig. 9's state labels
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod automaton;
pub mod bitset;
pub mod cache;
pub mod compiled;
pub mod coverage;
pub mod dfa;
pub mod dot;
pub mod manifest;
pub mod nfa;
pub mod symbol;

pub use analysis::{
    body_alphabet, compare_languages, has_guards, merge_groups, union_alphabet, unreachable_states,
    Closure, CompleteDfa, LanguageRelation,
};
pub use automaton::{compile, Automaton, Bound};
pub use bitset::StateSet;
pub use cache::CompileCache;
pub use compiled::CompiledDfa;
pub use coverage::{ClassCoverage, CoverageMap};
pub use dfa::Dfa;
pub use manifest::{fnv1a, Fnv64, Manifest};
pub use symbol::{
    Direction, Guard, InstrSide, ProgEvent, Symbol, SymbolId, SymbolKind, Transition,
};

/// Maximum number of NFA states per automaton. Cross-product (`||`)
/// state counts multiply, so the compiler enforces a cap rather than
/// letting a pathological assertion exhaust memory; the paper's
/// assertions compile to well under this.
pub const MAX_STATES: usize = bitset::MAX_STATES;

/// Errors from assertion-to-automaton compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The assertion failed structural validation.
    Spec(tesla_spec::SpecError),
    /// The automaton would exceed [`MAX_STATES`] states.
    TooManyStates(usize),
    /// The expression was empty after lowering (e.g. only modifiers).
    EmptyAutomaton,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Spec(e) => write!(f, "invalid assertion: {e}"),
            CompileError::TooManyStates(n) => {
                write!(
                    f,
                    "automaton needs {n} states, more than the maximum {MAX_STATES}"
                )
            }
            CompileError::EmptyAutomaton => write!(f, "assertion lowered to an empty automaton"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<tesla_spec::SpecError> for CompileError {
    fn from(e: tesla_spec::SpecError) -> CompileError {
        CompileError::Spec(e)
    }
}
