//! Epsilon-free NFA fragments and the combinators that build them.
//!
//! Every combinator here consumes and produces *epsilon-free*
//! fragments, so the inclusive-OR cross product (§3.4.2) can be
//! applied directly:
//!
//! ```text
//! states(a ∨ b) = { a_i b_j | a_i ∈ a and b_j ∈ b }
//! ∀ b_j . a_i --e--> a_k  implies  a_i b_j --e--> a_k b_j
//! ∀ a_i . b_j --e--> b_k  implies  a_i b_j --e--> a_i b_k
//! ```
//!
//! Fragments are little graphs with a start state and a set of
//! accepting states; they are pruned (unreachable states dropped,
//! states renumbered) after expensive combinators.

use crate::symbol::{Guard, SymbolId, Transition};
use std::collections::BTreeSet;

/// An epsilon-free NFA fragment.
#[derive(Debug, Clone)]
pub struct Frag {
    /// Number of states, numbered `0..n_states`.
    pub n_states: u32,
    /// Start state.
    pub start: u32,
    /// Accepting states.
    pub accepts: BTreeSet<u32>,
    /// Transitions.
    pub transitions: Vec<Transition>,
}

impl Frag {
    /// A fragment matching exactly one occurrence of `sym`.
    pub fn event(sym: SymbolId, guard: Option<Guard>) -> Frag {
        Frag {
            n_states: 2,
            start: 0,
            accepts: [1].into(),
            transitions: vec![Transition {
                from: 0,
                sym,
                to: 1,
                guard,
            }],
        }
    }

    /// A fragment accepting only the empty word.
    pub fn empty() -> Frag {
        Frag {
            n_states: 1,
            start: 0,
            accepts: [0].into(),
            transitions: Vec::new(),
        }
    }

    /// Outgoing transitions of `state`.
    fn outgoing(&self, state: u32) -> impl Iterator<Item = &Transition> + '_ {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Renumber `self`'s states by adding `offset`.
    fn offset(mut self, offset: u32) -> Frag {
        for t in &mut self.transitions {
            t.from += offset;
            t.to += offset;
        }
        Frag {
            n_states: self.n_states + offset,
            start: self.start + offset,
            accepts: self.accepts.iter().map(|s| s + offset).collect(),
            transitions: std::mem::take(&mut self.transitions),
        }
    }

    /// Concatenation: `self` then `b`.
    ///
    /// Epsilon-free construction: every accepting state of `self`
    /// gains copies of `b.start`'s outgoing transitions; `self`'s
    /// accepts remain accepting only if `b` accepts the empty word.
    pub fn seq(self, b: Frag) -> Frag {
        let base = self.n_states;
        let b = b.offset(base);
        let mut transitions = self.transitions;
        let b_start_out: Vec<Transition> = b.outgoing(b.start).cloned().collect();
        for &acc in &self.accepts {
            for t in &b_start_out {
                transitions.push(Transition {
                    from: acc,
                    sym: t.sym,
                    to: t.to,
                    guard: t.guard.clone(),
                });
            }
        }
        let mut accepts: BTreeSet<u32> = b.accepts.clone();
        if b.accepts.contains(&b.start) {
            accepts.extend(self.accepts.iter().copied());
        }
        transitions.extend(b.transitions);
        Frag {
            n_states: b.n_states,
            start: self.start,
            accepts,
            transitions,
        }
        .prune()
    }

    /// Exclusive alternation (`^`, and the branching inside
    /// `ATLEAST`): one fresh start state with copies of every
    /// operand's start-outgoing transitions.
    pub fn alt(frags: Vec<Frag>) -> Frag {
        let mut n_states = 1u32; // fresh start = 0
        let mut transitions = Vec::new();
        let mut accepts = BTreeSet::new();
        let mut start_accepting = false;
        for f in frags {
            let f = f.offset(n_states);
            start_accepting |= f.accepts.contains(&f.start);
            for t in f.outgoing(f.start) {
                transitions.push(Transition {
                    from: 0,
                    sym: t.sym,
                    to: t.to,
                    guard: t.guard.clone(),
                });
            }
            accepts.extend(f.accepts.iter().copied());
            transitions.extend(f.transitions);
            n_states = f.n_states;
        }
        if start_accepting {
            accepts.insert(0);
        }
        Frag {
            n_states,
            start: 0,
            accepts,
            transitions,
        }
        .prune()
    }

    /// Inclusive OR (`||`): the cross-product automaton of §3.4.2.
    /// Accepts when *at least one* operand's behaviour has occurred;
    /// it is not an error for both to occur.
    pub fn or(self, b: Frag) -> Frag {
        let (na, nb) = (self.n_states, b.n_states);
        let idx = |i: u32, j: u32| i * nb + j;
        let mut transitions = Vec::with_capacity(
            self.transitions.len() as usize * nb as usize + b.transitions.len() * na as usize,
        );
        for t in &self.transitions {
            for j in 0..nb {
                transitions.push(Transition {
                    from: idx(t.from, j),
                    sym: t.sym,
                    to: idx(t.to, j),
                    guard: t.guard.clone(),
                });
            }
        }
        for t in &b.transitions {
            for i in 0..na {
                transitions.push(Transition {
                    from: idx(i, t.from),
                    sym: t.sym,
                    to: idx(i, t.to),
                    guard: t.guard.clone(),
                });
            }
        }
        let mut accepts = BTreeSet::new();
        for i in 0..na {
            for j in 0..nb {
                if self.accepts.contains(&i) || b.accepts.contains(&j) {
                    accepts.insert(idx(i, j));
                }
            }
        }
        Frag {
            n_states: na * nb,
            start: idx(self.start, b.start),
            accepts,
            transitions,
        }
        .prune()
    }

    /// `optional(e)`: additionally accept the empty word.
    pub fn optional(mut self) -> Frag {
        self.accepts.insert(self.start);
        self
    }

    /// Kleene star: zero or more repetitions.
    pub fn star(self) -> Frag {
        let start_out: Vec<Transition> = self.outgoing(self.start).cloned().collect();
        let mut transitions = self.transitions.clone();
        for &acc in &self.accepts {
            if acc == self.start {
                continue;
            }
            for t in &start_out {
                transitions.push(Transition {
                    from: acc,
                    sym: t.sym,
                    to: t.to,
                    guard: t.guard.clone(),
                });
            }
        }
        let mut accepts = self.accepts;
        accepts.insert(self.start);
        Frag {
            n_states: self.n_states,
            start: self.start,
            accepts,
            transitions,
        }
        .prune()
    }

    /// `ATLEAST(n, e)`: `n` mandatory copies followed by a star.
    pub fn at_least(self, n: usize) -> Frag {
        let mut out = Frag::empty();
        for _ in 0..n {
            out = out.seq(self.clone());
        }
        out.seq(self.star())
    }

    /// Drop unreachable states and renumber densely. Also deduplicates
    /// transitions (cross products and copied start edges can create
    /// duplicates).
    pub fn prune(self) -> Frag {
        let n = self.n_states as usize;
        let mut order = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = vec![self.start];
        order[self.start as usize] = {
            let v = next;
            next += 1;
            v
        };
        // Adjacency for the walk.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for t in &self.transitions {
            adj[t.from as usize].push(t.to);
        }
        while let Some(s) = stack.pop() {
            for &t in &adj[s as usize] {
                if order[t as usize] == u32::MAX {
                    order[t as usize] = next;
                    next += 1;
                    stack.push(t);
                }
            }
        }
        let mut transitions: Vec<Transition> = self
            .transitions
            .into_iter()
            .filter(|t| order[t.from as usize] != u32::MAX)
            .map(|t| Transition {
                from: order[t.from as usize],
                sym: t.sym,
                to: order[t.to as usize],
                guard: t.guard,
            })
            .collect();
        transitions.sort_by(|a, b| {
            (a.from, a.sym, a.to)
                .cmp(&(b.from, b.sym, b.to))
                .then_with(|| a.guard.cmp(&b.guard))
        });
        transitions.dedup();
        let accepts = self
            .accepts
            .into_iter()
            .filter(|s| order[*s as usize] != u32::MAX)
            .map(|s| order[s as usize])
            .collect();
        Frag {
            n_states: next,
            start: order[self.start as usize],
            accepts,
            transitions,
        }
    }

    /// Simulate the fragment on a word of symbols (guards pass),
    /// returning whether it accepts. Test helper.
    #[cfg(test)]
    pub fn accepts_word(&self, word: &[SymbolId]) -> bool {
        let mut states: BTreeSet<u32> = [self.start].into();
        for &sym in word {
            let mut next = BTreeSet::new();
            for t in &self.transitions {
                if t.sym == sym && states.contains(&t.from) {
                    next.insert(t.to);
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|s| self.accepts.contains(s))
    }
}

// `Guard` needs `Ord` for transition dedup; derive-by-hand here to
// keep `symbol.rs` focused.
impl PartialOrd for Guard {
    fn partial_cmp(&self, other: &Guard) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Guard {
    fn cmp(&self, other: &Guard) -> std::cmp::Ordering {
        match (self, other) {
            (Guard::InCallStack(a), Guard::InCallStack(b)) => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn ev(i: u32) -> Frag {
        Frag::event(s(i), None)
    }

    #[test]
    fn event_accepts_single_symbol() {
        let f = ev(1);
        assert!(f.accepts_word(&[s(1)]));
        assert!(!f.accepts_word(&[]));
        assert!(!f.accepts_word(&[s(2)]));
        assert!(!f.accepts_word(&[s(1), s(1)]));
    }

    #[test]
    fn seq_orders_events() {
        let f = ev(1).seq(ev(2));
        assert!(f.accepts_word(&[s(1), s(2)]));
        assert!(!f.accepts_word(&[s(2), s(1)]));
        assert!(!f.accepts_word(&[s(1)]));
    }

    #[test]
    fn seq_with_empty_is_identity() {
        let f = Frag::empty().seq(ev(1)).seq(Frag::empty());
        assert!(f.accepts_word(&[s(1)]));
        assert!(!f.accepts_word(&[]));
    }

    #[test]
    fn alt_is_exclusive_choice() {
        let f = Frag::alt(vec![ev(1), ev(2)]);
        assert!(f.accepts_word(&[s(1)]));
        assert!(f.accepts_word(&[s(2)]));
        assert!(!f.accepts_word(&[s(1), s(2)]));
        assert!(!f.accepts_word(&[]));
    }

    #[test]
    fn or_accepts_either_and_both() {
        // a || b where a = [1], b = [2]: any interleaving containing
        // at least one of them is accepted; extra occurrences of the
        // other operand's behaviour are fine.
        let f = ev(1).or(ev(2));
        assert!(f.accepts_word(&[s(1)]));
        assert!(f.accepts_word(&[s(2)]));
        assert!(f.accepts_word(&[s(1), s(2)]));
        assert!(f.accepts_word(&[s(2), s(1)]));
        assert!(!f.accepts_word(&[]));
    }

    #[test]
    fn or_of_sequences_tracks_operands_independently() {
        // (1·2) || (3·4): both operands progress independently
        // (cross-product); completing either accepts.
        let f = ev(1).seq(ev(2)).or(ev(3).seq(ev(4)));
        assert!(f.accepts_word(&[s(1), s(2)]));
        assert!(f.accepts_word(&[s(3), s(4)]));
        assert!(f.accepts_word(&[s(1), s(3), s(2)]));
        assert!(f.accepts_word(&[s(1), s(3), s(4)]));
        assert!(!f.accepts_word(&[s(1), s(4)]));
        assert!(!f.accepts_word(&[s(2)]));
    }

    #[test]
    fn optional_accepts_empty() {
        let f = ev(1).optional();
        assert!(f.accepts_word(&[]));
        assert!(f.accepts_word(&[s(1)]));
        assert!(!f.accepts_word(&[s(2)]));
    }

    #[test]
    fn star_accepts_repetition() {
        let f = ev(1).star();
        assert!(f.accepts_word(&[]));
        assert!(f.accepts_word(&[s(1)]));
        assert!(f.accepts_word(&[s(1), s(1), s(1)]));
        assert!(!f.accepts_word(&[s(2)]));
    }

    #[test]
    fn star_of_sequence_loops_whole_body() {
        let f = ev(1).seq(ev(2)).star();
        assert!(f.accepts_word(&[]));
        assert!(f.accepts_word(&[s(1), s(2)]));
        assert!(f.accepts_word(&[s(1), s(2), s(1), s(2)]));
        assert!(!f.accepts_word(&[s(1), s(2), s(1)]));
    }

    #[test]
    fn at_least_counts_minimum() {
        let f = Frag::alt(vec![ev(1), ev(2)]).at_least(2);
        assert!(!f.accepts_word(&[]));
        assert!(!f.accepts_word(&[s(1)]));
        assert!(f.accepts_word(&[s(1), s(2)]));
        assert!(f.accepts_word(&[s(2), s(2), s(1)]));
    }

    #[test]
    fn at_least_zero_is_free_repetition() {
        // Figure 8's ATLEAST(0, ...): "some (or none) of the API
        // methods should have been called", in any order.
        let f = Frag::alt(vec![ev(1), ev(2), ev(3)]).at_least(0);
        assert!(f.accepts_word(&[]));
        assert!(f.accepts_word(&[s(3), s(1), s(1), s(2)]));
        assert!(!f.accepts_word(&[s(4)]));
    }

    #[test]
    fn prune_drops_unreachable_states() {
        // Build an OR then check the state count is the pruned
        // product, not the raw product.
        let f = ev(1).or(ev(2));
        assert!(f.n_states <= 4);
        // All states reachable from start.
        let reachable = {
            let mut seen = vec![false; f.n_states as usize];
            seen[f.start as usize] = true;
            let mut stack = vec![f.start];
            while let Some(st) = stack.pop() {
                for t in &f.transitions {
                    if t.from == st && !seen[t.to as usize] {
                        seen[t.to as usize] = true;
                        stack.push(t.to);
                    }
                }
            }
            seen
        };
        assert!(reachable.iter().all(|r| *r));
    }

    #[test]
    fn paper_or_example_both_checks_not_an_error() {
        // previously(check(x) || check(y)) from §3.4.2: it is not an
        // error for both checks to be performed. Model check(x)=1,
        // check(y)=2, site=9.
        let f = ev(1).or(ev(2)).seq(ev(9));
        assert!(f.accepts_word(&[s(1), s(9)]));
        assert!(f.accepts_word(&[s(2), s(9)]));
        assert!(f.accepts_word(&[s(1), s(2), s(9)]));
        assert!(!f.accepts_word(&[s(9)]));
    }

    #[test]
    fn guards_survive_combinators() {
        let g = Some(Guard::InCallStack("ufs_readdir".into()));
        let f = Frag::event(s(9), g.clone()).or(ev(1).seq(ev(9)));
        let guarded: Vec<_> = f.transitions.iter().filter(|t| t.guard.is_some()).collect();
        assert!(!guarded.is_empty());
        assert!(guarded.iter().all(|t| t.guard == g));
    }
}
