//! The `.tesla` manifest format (§4.1).
//!
//! The paper's analyser writes parsed assertions to disk as automaton
//! descriptions, "formatted using Google Protocol Buffers", one
//! `.tesla` file per compilation unit; these are then *combined into a
//! larger file describing all parts of the program that may need
//! instrumentation*. We use `serde_json` as the interchange encoding
//! (see DESIGN.md) but keep the workflow identical — including its
//! awkward consequence: because assertions in any file can name events
//! defined in any other file, a change to one source file changes the
//! combined manifest and forces re-instrumentation of *every* IR file
//! (§5.1, fig. 10).

use crate::automaton::{compile, Automaton};
use crate::symbol::InstrSide;
use crate::CompileError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tesla_spec::Assertion;

/// Streaming FNV-1a hasher — the content-fingerprint primitive used
/// by manifests, the automaton compile cache, and the pipeline's
/// object-cache keys. Deliberately not `std::hash::Hasher`: fingerprint
/// values must be stable across runs and platforms, which `Hash`
/// implementations do not promise.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a `u32` in (little-endian), without formatting.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Fold a `u64` in (little-endian), without formatting.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a byte string in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One assertion as stored in a manifest, with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The source file (compilation unit) the assertion came from.
    pub source_file: String,
    /// The assertion itself.
    pub assertion: Assertion,
}

impl ManifestEntry {
    /// Content fingerprint of the *assertion* (not the provenance
    /// file): two entries with equal fingerprints compile to identical
    /// automata. This is the key of the shared
    /// [`CompileCache`](crate::CompileCache).
    pub fn content_fingerprint(&self) -> u64 {
        let text =
            serde_json::to_string(&self.assertion).expect("assertion serialisation cannot fail");
        fnv1a(text.as_bytes())
    }
}

/// A `.tesla` manifest: the automata descriptions extracted from one
/// compilation unit, or (after [`Manifest::merge`]) a whole program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The assertions, in deterministic order.
    pub entries: Vec<ManifestEntry>,
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            entries: Vec::new(),
        }
    }

    /// Add an assertion extracted from `source_file`.
    pub fn push(&mut self, source_file: &str, assertion: Assertion) {
        self.entries.push(ManifestEntry {
            source_file: source_file.to_string(),
            assertion,
        });
    }

    /// Combine per-unit manifests into a program-wide manifest.
    /// Deterministic: entries are sorted by (file, assertion name,
    /// line) and duplicates dropped.
    pub fn merge(manifests: &[Manifest]) -> Manifest {
        Manifest::merge_refs(&manifests.iter().collect::<Vec<_>>())
    }

    /// [`Manifest::merge`] over borrowed manifests — the incremental
    /// pipeline merges the cached per-unit manifests on every build,
    /// and should not have to clone each `Manifest` wholesale first.
    pub fn merge_refs(manifests: &[&Manifest]) -> Manifest {
        let mut entries: Vec<ManifestEntry> = manifests
            .iter()
            .flat_map(|m| m.entries.iter().cloned())
            .collect();
        entries.sort_by(|a, b| {
            (&a.source_file, &a.assertion.name, a.assertion.loc.line).cmp(&(
                &b.source_file,
                &b.assertion.name,
                b.assertion.loc.line,
            ))
        });
        entries.dedup();
        Manifest {
            version: MANIFEST_VERSION,
            entries,
        }
    }

    /// Serialise to the on-disk `.tesla` encoding.
    ///
    /// # Panics
    ///
    /// Never panics: all manifest types serialise infallibly.
    pub fn to_tesla(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialisation cannot fail")
    }

    /// Parse a `.tesla` file.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_tesla(s: &str) -> Result<Manifest, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Compile every assertion to its automaton class.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`], tagged with the assertion
    /// name.
    pub fn compile_all(&self) -> Result<Vec<Automaton>, (String, CompileError)> {
        self.entries
            .iter()
            .map(|e| compile(&e.assertion).map_err(|err| (e.assertion.name.clone(), err)))
            .collect()
    }

    /// The program-wide instrumentation plan: which functions need
    /// hooks, on which side, according to *all* assertions. This is
    /// the set the instrumenter consults for every IR file — the
    /// reason one assertion edit re-instruments the world.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors as in [`Manifest::compile_all`].
    pub fn instrumentation_plan(
        &self,
    ) -> Result<BTreeMap<String, InstrSide>, (String, CompileError)> {
        let mut plan = BTreeMap::new();
        for a in self.compile_all()? {
            for (name, side) in a.instrumentation_targets() {
                // Caller-side requests win: they are needed when the
                // callee cannot be recompiled.
                plan.entry(name)
                    .and_modify(|s| {
                        if side == InstrSide::Caller {
                            *s = InstrSide::Caller;
                        }
                    })
                    .or_insert(side);
            }
        }
        Ok(plan)
    }

    /// A content fingerprint: two manifests with equal fingerprints
    /// produce identical instrumentation. Drives incremental-rebuild
    /// decisions in the pipeline.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the canonical serialisation.
        fnv1a(self.to_tesla().as_bytes())
    }

    /// Per-entry `(source_file, content fingerprint)` pairs, in entry
    /// order. The delta-aware pipeline diffs these instead of
    /// re-serialising the whole manifest: an edited assertion changes
    /// exactly its own fingerprint.
    pub fn entry_fingerprints(&self) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .map(|e| (e.source_file.clone(), e.content_fingerprint()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_spec::{call, parse_assertion, AssertionBuilder};

    fn sample() -> Assertion {
        AssertionBuilder::syscall()
            .named("mac_poll")
            .previously(
                call("mac_socket_check_poll")
                    .any_ptr()
                    .arg_var("so")
                    .returns(0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_through_tesla_format() {
        let mut m = Manifest::new();
        m.push("kern/uipc_socket.c", sample());
        m.push(
            "ufs/ufs_vnops.c",
            parse_assertion(
                "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_open(ANY(ptr), vp, ANY(int)) == 0)",
            )
            .unwrap(),
        );
        let text = m.to_tesla();
        let back = Manifest::from_tesla(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn merge_is_deterministic_and_dedups() {
        let mut a = Manifest::new();
        a.push("b.c", sample());
        let mut b = Manifest::new();
        b.push("a.c", sample());
        b.push("b.c", sample()); // duplicate of a's entry
        let m1 = Manifest::merge(&[a.clone(), b.clone()]);
        let m2 = Manifest::merge(&[b, a]);
        assert_eq!(m1, m2);
        assert_eq!(m1.entries.len(), 2);
        assert_eq!(m1.entries[0].source_file, "a.c");
    }

    #[test]
    fn compile_all_and_plan() {
        let mut m = Manifest::new();
        m.push("kern.c", sample());
        let autos = m.compile_all().unwrap();
        assert_eq!(autos.len(), 1);
        let plan = m.instrumentation_plan().unwrap();
        assert!(plan.contains_key("mac_socket_check_poll"));
        assert!(plan.contains_key("amd64_syscall"));
    }

    #[test]
    fn caller_side_wins_in_plan() {
        use tesla_spec::ExprBuilder;
        let callee = AssertionBuilder::within("main")
            .previously(call("EVP_VerifyFinal").returns(1))
            .build()
            .unwrap();
        let caller = AssertionBuilder::within("main")
            .previously(ExprBuilder::from(call("EVP_VerifyFinal").returns(1)).caller())
            .build()
            .unwrap();
        let mut m = Manifest::new();
        m.push("a.c", callee);
        m.push("b.c", caller);
        let plan = m.instrumentation_plan().unwrap();
        assert_eq!(plan["EVP_VerifyFinal"], InstrSide::Caller);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = Manifest::new();
        a.push("a.c", sample());
        let f1 = a.fingerprint();
        assert_eq!(f1, a.clone().fingerprint());
        a.push("b.c", sample());
        assert_ne!(f1, a.fingerprint());
    }
}
