//! A fixed-capacity state set.
//!
//! Automaton instances carry their current NFA state set in every
//! libtesla instance (§4.4.1), so the representation must be `Copy`,
//! allocation-free and cheap to union — a fixed array of words.

/// Number of 64-bit words in a [`StateSet`].
const WORDS: usize = 4;

/// Maximum representable state index + 1.
pub const MAX_STATES: usize = WORDS * 64;

/// A set of NFA states, capacity [`MAX_STATES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StateSet {
    bits: [u64; WORDS],
}

impl StateSet {
    /// The empty set.
    pub const EMPTY: StateSet = StateSet { bits: [0; WORDS] };

    /// A singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `state >= MAX_STATES`; the automaton compiler enforces
    /// the cap before any set is built.
    #[inline]
    pub fn singleton(state: u32) -> StateSet {
        let mut s = StateSet::EMPTY;
        s.insert(state);
        s
    }

    /// Insert a state.
    ///
    /// # Panics
    ///
    /// Panics if `state >= MAX_STATES`.
    #[inline]
    pub fn insert(&mut self, state: u32) {
        let i = state as usize;
        assert!(
            i < MAX_STATES,
            "state {i} exceeds StateSet capacity {MAX_STATES}"
        );
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Remove a state.
    #[inline]
    pub fn remove(&mut self, state: u32) {
        let i = state as usize;
        if i < MAX_STATES {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, state: u32) -> bool {
        let i = state as usize;
        i < MAX_STATES && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Number of states in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &StateSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Does the intersection with `other` contain anything?
    #[inline]
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterate over member states in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            let base = (wi * 64) as u32;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(base + b)
                }
            })
        })
    }
}

impl FromIterator<u32> for StateSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> StateSet {
        let mut s = StateSet::EMPTY;
        for st in iter {
            s.insert(st);
        }
        s
    }
}

impl std::fmt::Display for StateSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_ops() {
        let mut s = StateSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64) && s.contains(255));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 255]);
    }

    #[test]
    fn union_and_intersect() {
        let a: StateSet = [1u32, 5, 100].into_iter().collect();
        let b: StateSet = [5u32, 200].into_iter().collect();
        assert!(a.intersects(&b));
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 100, 200]);
        let c: StateSet = [2u32].into_iter().collect();
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "exceeds StateSet capacity")]
    fn insert_beyond_capacity_panics() {
        let mut s = StateSet::EMPTY;
        s.insert(MAX_STATES as u32);
    }

    #[test]
    fn display_lists_members() {
        let s: StateSet = [1u32, 3].into_iter().collect();
        assert_eq!(s.to_string(), "{1,3}");
    }

    proptest! {
        #[test]
        fn iter_roundtrips(mut states in proptest::collection::vec(0u32..256, 0..40)) {
            let set: StateSet = states.iter().copied().collect();
            states.sort_unstable();
            states.dedup();
            prop_assert_eq!(set.iter().collect::<Vec<_>>(), states.clone());
            prop_assert_eq!(set.len(), states.len());
        }

        #[test]
        fn union_is_commutative(
            a in proptest::collection::vec(0u32..256, 0..30),
            b in proptest::collection::vec(0u32..256, 0..30),
        ) {
            let sa: StateSet = a.iter().copied().collect();
            let sb: StateSet = b.iter().copied().collect();
            let mut ab = sa;
            ab.union_with(&sb);
            let mut ba = sb;
            ba.union_with(&sa);
            prop_assert_eq!(ab, ba);
        }
    }
}
