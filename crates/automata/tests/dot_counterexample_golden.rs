//! Golden-file test for counterexample DOT export: the model
//! checker's error trace, replayed over the figure-9 automaton, must
//! render byte-for-byte as the checked-in graph. Regenerate with the
//! snippet below if the renderer intentionally changes:
//!
//! ```ignore
//! let dot = render_with_trace(&auto, &[auto.init_sym, auto.site_sym]);
//! std::fs::write("tests/golden/counterexample.dot", dot).unwrap();
//! ```

use tesla_automata::{compile, dot::render_with_trace};
use tesla_spec::{call, AssertionBuilder};

#[test]
fn counterexample_dot_matches_golden() {
    let a = AssertionBuilder::syscall()
        .named("figure9")
        .previously(
            call("mac_socket_check_poll")
                .any_ptr()
                .arg_var("so")
                .returns(0),
        )
        .build()
        .unwrap();
    let auto = compile(&a).unwrap();
    // The shortest definite violation: «init» straight to the
    // assertion site with no prior mac_socket_check_poll.
    let dot = render_with_trace(&auto, &[auto.init_sym, auto.site_sym]);
    let golden = include_str!("golden/counterexample.dot");
    assert_eq!(dot, golden, "counterexample DOT drifted from golden file");
}

#[test]
fn golden_highlights_are_present() {
    let golden = include_str!("golden/counterexample.dot");
    assert!(golden.contains("color=red, penwidth=3.00"));
    assert!(golden.contains("violation [label=\"violation\", shape=octagon"));
    assert_eq!(golden.matches('{').count(), golden.matches('}').count());
}
