//! Property tests over the automaton construction: algebraic laws of
//! the combinators (`||` commutes, `TSEQUENCE` associates), agreement
//! between NFA simulation and the DFA produced by subset
//! construction, and structural invariants of compiled assertions.

use proptest::prelude::*;
use tesla_automata::{compile, Automaton, Dfa, SymbolId};
use tesla_spec::{call, AssertionBuilder, ExprBuilder};

const FNS: [&str; 4] = ["a", "b", "c", "d"];

/// A tiny expression language whose leaves are distinct function
/// events, so symbol identity is easy to reason about.
#[derive(Debug, Clone)]
enum E {
    Leaf(usize),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Seq(Box<E>, Box<E>),
    Opt(Box<E>),
    AtLeast(usize, Box<E>),
}

fn e_strategy() -> impl Strategy<Value = E> {
    let leaf = (0usize..FNS.len()).prop_map(E::Leaf);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Seq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Opt(Box::new(a))),
            (0usize..2, inner).prop_map(|(n, a)| E::AtLeast(n, Box::new(a))),
        ]
    })
}

fn build(e: &E) -> ExprBuilder {
    match e {
        E::Leaf(i) => call(FNS[*i]).returns(0).into(),
        E::Or(a, b) => build(a).or(build(b)),
        E::Xor(a, b) => build(a).xor(build(b)),
        E::Seq(a, b) => build(a).then(build(b)),
        E::Opt(a) => build(a).optional(),
        E::AtLeast(n, a) => tesla_spec::atleast(*n, vec![build(a)]),
    }
}

fn automaton(e: &E) -> Option<Automaton> {
    let a = AssertionBuilder::within("f")
        .previously(build(e))
        .build()
        .unwrap();
    compile(&a).ok() // None when the state cap is exceeded
}

/// Pure regular-language acceptance by NFA simulation (dies on
/// missing transition).
fn nfa_accepts(a: &Automaton, word: &[SymbolId]) -> bool {
    let mut states = a.initial_states();
    for &sym in word {
        let next = a.step(&states, sym, |_| true);
        if next.is_empty() {
            return false;
        }
        states = next;
    }
    a.accepting.intersects(&states)
}

/// The symbol id for leaf function `i` in `a`, if the automaton
/// references it.
fn sym_for(a: &Automaton, i: usize) -> Option<SymbolId> {
    a.symbols
        .iter()
        .find(|s| matches!(s.function_name(), Some((n, ..)) if n == FNS[i]))
        .map(|s| s.id)
}

/// Translate a word over leaf indices (plus usize::MAX = site) into
/// `a`'s symbol ids; `None` when `a` does not reference some leaf.
fn word_for(a: &Automaton, word: &[usize]) -> Option<Vec<SymbolId>> {
    word.iter()
        .map(|&i| {
            if i == usize::MAX {
                Some(a.site_sym)
            } else {
                sym_for(a, i)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `a || b` and `b || a` accept the same words.
    #[test]
    fn or_is_commutative(
        a in e_strategy(),
        b in e_strategy(),
        word in proptest::collection::vec(0usize..FNS.len(), 0..8),
    ) {
        let (Some(ab), Some(ba)) = (
            automaton(&E::Or(Box::new(a.clone()), Box::new(b.clone()))),
            automaton(&E::Or(Box::new(b), Box::new(a))),
        ) else {
            return Ok(()); // state cap: skip
        };
        let mut w1 = word.clone();
        w1.push(usize::MAX); // the site terminates the behaviour
        if let (Some(w_ab), Some(w_ba)) = (word_for(&ab, &w1), word_for(&ba, &w1)) {
            prop_assert_eq!(nfa_accepts(&ab, &w_ab), nfa_accepts(&ba, &w_ba));
        }
    }

    /// `(a ; b) ; c` and `a ; (b ; c)` accept the same words.
    #[test]
    fn seq_is_associative(
        a in e_strategy(),
        b in e_strategy(),
        c in e_strategy(),
        word in proptest::collection::vec(0usize..FNS.len(), 0..10),
    ) {
        let left = E::Seq(
            Box::new(E::Seq(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        let right = E::Seq(Box::new(a), Box::new(E::Seq(Box::new(b), Box::new(c))));
        let (Some(l), Some(r)) = (automaton(&left), automaton(&right)) else {
            return Ok(());
        };
        let mut w = word.clone();
        w.push(usize::MAX);
        if let (Some(wl), Some(wr)) = (word_for(&l, &w), word_for(&r, &w)) {
            prop_assert_eq!(nfa_accepts(&l, &wl), nfa_accepts(&r, &wr));
        }
    }

    /// Subset construction preserves the language.
    #[test]
    fn dfa_equals_nfa(
        e in e_strategy(),
        word in proptest::collection::vec(0usize..FNS.len() + 1, 0..10),
    ) {
        let Some(a) = automaton(&e) else { return Ok(()) };
        let dfa = Dfa::from_automaton(&a);
        let word: Vec<usize> =
            word.into_iter().map(|i| if i == FNS.len() { usize::MAX } else { i }).collect();
        if let Some(w) = word_for(&a, &word) {
            prop_assert_eq!(dfa.accepts(&w), nfa_accepts(&a, &w));
        }
    }

    /// Structural invariants of every compiled assertion:
    /// * all transition endpoints are valid states;
    /// * accepting states are cleanup-safe;
    /// * the start state is cleanup-safe (the empty path never reached
    ///   the site — the §4.1 bypass);
    /// * exactly one site / init / cleanup symbol each.
    #[test]
    fn compiled_invariants(e in e_strategy()) {
        let Some(a) = automaton(&e) else { return Ok(()) };
        for t in &a.transitions {
            prop_assert!(t.from < a.n_states);
            prop_assert!(t.to < a.n_states);
            prop_assert!((t.sym.0 as usize) < a.symbols.len());
        }
        for s in a.accepting.iter() {
            prop_assert!(a.cleanup_safe.contains(s), "accepting {s} must be cleanup-safe");
        }
        prop_assert!(a.cleanup_safe.contains(a.start));
        let sites = a
            .symbols
            .iter()
            .filter(|s| matches!(s.kind, tesla_automata::SymbolKind::Site))
            .count();
        prop_assert_eq!(sites, 1);
        // Site violations are detectable: some state has an outgoing
        // site transition.
        prop_assert!(a.transitions.iter().any(|t| t.sym == a.site_sym));
    }

    /// `optional(e)` accepts everything `e` accepts, plus the empty
    /// behaviour.
    #[test]
    fn optional_is_superset(
        e in e_strategy(),
        word in proptest::collection::vec(0usize..FNS.len(), 0..8),
    ) {
        let plain = automaton(&e);
        let opt = automaton(&E::Opt(Box::new(e)));
        let (Some(p), Some(o)) = (plain, opt) else { return Ok(()) };
        let mut w = word.clone();
        w.push(usize::MAX);
        if let (Some(wp), Some(wo)) = (word_for(&p, &w), word_for(&o, &w)) {
            if nfa_accepts(&p, &wp) {
                prop_assert!(nfa_accepts(&o, &wo), "optional lost a word");
            }
        }
        // Empty behaviour: just the site.
        let site_only = vec![o.site_sym];
        prop_assert!(nfa_accepts(&o, &site_only));
    }
}
