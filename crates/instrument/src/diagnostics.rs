//! Diagnostics layer over the static analyses.
//!
//! Wraps the name-level findings of [`crate::static_check`], the
//! flow-sensitive verdicts of [`crate::model_check`] and the
//! specification-level lints of [`crate::lint`] into a single stream
//! of [`Diagnostic`]s with stable codes and severities, and renders
//! that stream as human-readable text, line-oriented JSON, or SARIF
//! 2.1.0 for editor/CI ingestion.
//!
//! Stable codes — the `S` family diagnoses the *program* against the
//! specification, the `L` family diagnoses the specification itself:
//!
//! | code         | meaning                                    | severity |
//! |--------------|--------------------------------------------|----------|
//! | `TESLA-S001` | bound function never entered (dormant)     | warning  |
//! | `TESLA-S002` | assertion site unreachable from the bound  | warning  |
//! | `TESLA-S003` | automaton requires events no code emits    | error    |
//! | `TESLA-S004` | definite violation on every feasible path  | error    |
//! | `TESLA-S005` | proved safe (instrumentation elidable)     | note     |
//! | `TESLA-S006` | undecided — dynamic instrumentation stays  | note     |
//! | `TESLA-L001` | vacuous: assertion can never fail          | warning  |
//! | `TESLA-L002` | contradiction: assertion can never pass    | error    |
//! | `TESLA-L003` | subsumed by a strictly stronger assertion  | warning  |
//! | `TESLA-L004` | automaton has dead or mergeable states     | warning  |
//! | `TESLA-L005` | temporal bound can never close             | error    |
//! | `TESLA-L006` | incompatible matchers on the same callee   | warning  |

use crate::lint::LintFinding;
use crate::model_check::{AssertionReport, CheckVerdict};
use crate::static_check::StaticFinding;
use std::collections::HashMap;
use tesla_spec::SourceLoc;

/// Every diagnostic code this crate can construct, in table order.
///
/// The codes are a public contract: scripts grep for them, CI matches
/// on them, and the module-doc table above documents them. A
/// self-consistency test asserts the three stay in sync.
pub fn all_codes() -> &'static [&'static str] {
    &[
        "TESLA-S001",
        "TESLA-S002",
        "TESLA-S003",
        "TESLA-S004",
        "TESLA-S005",
        "TESLA-S006",
        "TESLA-L001",
        "TESLA-L002",
        "TESLA-L003",
        "TESLA-L004",
        "TESLA-L005",
        "TESLA-L006",
    ]
}

/// How serious a diagnostic is.
///
/// `--deny` treats warnings and errors as fatal; notes are
/// informational and never affect exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A contradiction: the program cannot satisfy the assertion.
    Error,
    /// Suspicious but not necessarily wrong (e.g. dead assertion).
    Warning,
    /// Informational (proofs, undecided verdicts).
    Note,
}

impl Severity {
    /// SARIF `level` string for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// A single static-analysis finding with a stable code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`TESLA-S001` …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Name of the assertion the diagnostic concerns.
    pub assertion: String,
    /// Human-readable one-line message.
    pub message: String,
    /// Source location of the assertion, when known.
    pub loc: Option<SourceLoc>,
    /// Counterexample event trace (only for `TESLA-S004`).
    pub trace: Vec<String>,
}

/// Output format for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Compiler-style human-readable text.
    Text,
    /// A single JSON array of diagnostic objects.
    Json,
    /// SARIF 2.1.0 (consumable by GitHub code scanning et al.).
    Sarif,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            "sarif" => Ok(OutputFormat::Sarif),
            other => Err(format!(
                "unknown format `{other}` (expected text|json|sarif)"
            )),
        }
    }
}

fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Note => 2,
    }
}

/// Combine name-level findings and flow-sensitive verdicts into one
/// ordered diagnostic stream (errors first, then warnings, then
/// notes; stable by code and assertion name within a class).
///
/// `reports` double as the source-location oracle: name-level
/// findings carry no location of their own, so each is attached to
/// the location of the like-named assertion when one exists.
pub fn diagnose(findings: &[StaticFinding], reports: &[AssertionReport]) -> Vec<Diagnostic> {
    let locs: HashMap<&str, &SourceLoc> =
        reports.iter().map(|r| (r.name.as_str(), &r.loc)).collect();
    let loc_of = |name: &str| locs.get(name).map(|l| (*l).clone());

    let mut out = Vec::new();
    for f in findings {
        let (code, severity, assertion) = match f {
            StaticFinding::BoundNeverEntered { assertion, .. } => {
                ("TESLA-S001", Severity::Warning, assertion.clone())
            }
            StaticFinding::SiteNeverReached { assertion } => {
                ("TESLA-S002", Severity::Warning, assertion.clone())
            }
            StaticFinding::Unsatisfiable { assertion, .. } => {
                ("TESLA-S003", Severity::Error, assertion.clone())
            }
        };
        out.push(Diagnostic {
            code,
            severity,
            loc: loc_of(&assertion),
            assertion,
            message: f.to_string(),
            trace: Vec::new(),
        });
    }
    for r in reports {
        let (code, severity, message, trace) = match &r.verdict {
            CheckVerdict::ProvedSafe { elide } => (
                "TESLA-S005",
                Severity::Note,
                if *elide {
                    "proved safe on every feasible path; instrumentation elided".to_string()
                } else {
                    "proved safe on every feasible path; instrumentation kept \
                     (shared events feed other assertions)"
                        .to_string()
                },
                Vec::new(),
            ),
            CheckVerdict::DefiniteViolation { trace } => (
                "TESLA-S004",
                Severity::Error,
                "assertion violated on every feasible path".to_string(),
                trace.iter().map(|s| s.desc.clone()).collect(),
            ),
            CheckVerdict::Unknown { reason } => (
                "TESLA-S006",
                Severity::Note,
                format!("undecided statically ({reason}); dynamic instrumentation retained"),
                Vec::new(),
            ),
        };
        out.push(Diagnostic {
            code,
            severity,
            assertion: r.name.clone(),
            message,
            loc: Some(r.loc.clone()),
            trace,
        });
    }
    sort_diagnostics(&mut out);
    out
}

/// Wrap specification-level lint findings as diagnostics.
///
/// Vacuity, subsumption, dead states and incompatible matchers are
/// warnings: the specification is suspicious but a run could still
/// behave sensibly. Contradictions and bounds that never close are
/// errors: the assertion (or its instance lifetime) can never
/// complete, so the specification is certainly wrong.
pub fn diagnose_lints(lints: &[LintFinding]) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = lints
        .iter()
        .map(|l| {
            let severity = match l {
                LintFinding::Contradiction { .. } | LintFinding::BoundNeverCloses { .. } => {
                    Severity::Error
                }
                _ => Severity::Warning,
            };
            Diagnostic {
                code: l.code(),
                severity,
                assertion: l.assertion().to_string(),
                message: l.to_string(),
                loc: Some(l.loc().clone()),
                trace: Vec::new(),
            }
        })
        .collect();
    sort_diagnostics(&mut out);
    out
}

/// Combine program-level findings/verdicts and specification-level
/// lints into one ordered stream (the union of [`diagnose`] and
/// [`diagnose_lints`] under the shared sort).
pub fn diagnose_with_lints(
    findings: &[StaticFinding],
    reports: &[AssertionReport],
    lints: &[LintFinding],
) -> Vec<Diagnostic> {
    let mut out = diagnose(findings, reports);
    out.extend(diagnose_lints(lints));
    sort_diagnostics(&mut out);
    out
}

fn sort_diagnostics(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (severity_rank(a.severity), a.code, a.assertion.as_str()).cmp(&(
            severity_rank(b.severity),
            b.code,
            b.assertion.as_str(),
        ))
    });
}

/// Should `--deny` fail the build for this diagnostic set?
pub fn has_denials(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity != Severity::Note)
}

/// Render diagnostics in the requested format.
pub fn render(diags: &[Diagnostic], format: OutputFormat) -> String {
    match format {
        OutputFormat::Text => render_text(diags),
        OutputFormat::Json => render_json(diags),
        OutputFormat::Sarif => render_sarif(diags),
    }
}

fn render_text(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!(
            "{}[{}]: `{}`: {}\n",
            d.severity, d.code, d.assertion, d.message
        ));
        if let Some(loc) = &d.loc {
            s.push_str(&format!("  --> {}:{}\n", loc.file, loc.line));
        }
        if !d.trace.is_empty() {
            s.push_str("  counterexample trace:\n");
            for (i, step) in d.trace.iter().enumerate() {
                s.push_str(&format!("    {:>2}. {}\n", i + 1, step));
            }
        }
    }
    let n = |sev| diags.iter().filter(|d| d.severity == sev).count();
    s.push_str(&format!(
        "{} error(s), {} warning(s), {} note(s)\n",
        n(Severity::Error),
        n(Severity::Warning),
        n(Severity::Note)
    ));
    s
}

/// Escape `s` for inclusion inside a JSON string literal.
///
/// Hand-rolled (rather than pulling a serialisation crate into the
/// instrumenter) because diagnostics are the only JSON this crate
/// ever emits and the value space is just strings and integers.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn json_str_list(items: impl Iterator<Item = String>) -> String {
    let body: Vec<String> = items.collect();
    format!("[{}]", body.join(", "))
}

fn render_json(diags: &[Diagnostic]) -> String {
    let objs = diags.iter().map(|d| {
        let (file, line) = match &d.loc {
            Some(l) => (json_str(&l.file), l.line.to_string()),
            None => ("null".to_string(), "null".to_string()),
        };
        format!(
            "  {{\"code\": {}, \"severity\": {}, \"assertion\": {}, \"message\": {}, \
             \"file\": {}, \"line\": {}, \"trace\": {}}}",
            json_str(d.code),
            json_str(&d.severity.to_string()),
            json_str(&d.assertion),
            json_str(&d.message),
            file,
            line,
            json_str_list(d.trace.iter().map(|t| json_str(t))),
        )
    });
    let body: Vec<String> = objs.collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn render_sarif(diags: &[Diagnostic]) -> String {
    let rules = {
        let mut codes: Vec<&'static str> = diags.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        json_str_list(codes.into_iter().map(|c| {
            format!(
                "{{\"id\": {}, \"name\": {}}}",
                json_str(c),
                json_str(&c.replace('-', ""))
            )
        }))
    };
    let results = json_str_list(diags.iter().map(|d| {
        let mut message = d.message.clone();
        if !d.trace.is_empty() {
            message.push_str("; trace: ");
            message.push_str(&d.trace.join(" → "));
        }
        let locations = match &d.loc {
            Some(loc) => format!(
                ", \"locations\": [{{\"physicalLocation\": {{\
                 \"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]",
                json_str(&loc.file),
                loc.line.max(1)
            ),
            None => String::new(),
        };
        format!(
            "{{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}{}}}",
            json_str(d.code),
            json_str(d.severity.sarif_level()),
            json_str(&format!("`{}`: {}", d.assertion, message)),
            locations
        )
    }));
    format!(
        "{{\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", \
         \"version\": \"2.1.0\", \"runs\": [{{\
         \"tool\": {{\"driver\": {{\"name\": \"tesla-static-check\", \
         \"informationUri\": \"https://github.com/tesla-repro/tesla-rs\", \
         \"rules\": {rules}}}}}, \
         \"results\": {results}}}]}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_check::TraceStep;
    use tesla_automata::SymbolId;

    fn loc(line: u32) -> SourceLoc {
        SourceLoc {
            file: "demo.c".into(),
            line,
        }
    }

    fn sample() -> Vec<Diagnostic> {
        diagnose(
            &[
                StaticFinding::SiteNeverReached {
                    assertion: "dead".into(),
                },
                StaticFinding::Unsatisfiable {
                    assertion: "impossible".into(),
                    missing_events: vec!["call foo(…)".into()],
                },
            ],
            &[
                AssertionReport {
                    class: 0,
                    name: "safe_one".into(),
                    loc: loc(10),
                    verdict: CheckVerdict::ProvedSafe { elide: true },
                },
                AssertionReport {
                    class: 1,
                    name: "broken".into(),
                    loc: loc(20),
                    verdict: CheckVerdict::DefiniteViolation {
                        trace: vec![
                            TraceStep {
                                sym: SymbolId(0),
                                desc: "«init»".into(),
                            },
                            TraceStep {
                                sym: SymbolId(2),
                                desc: "«assertion»".into(),
                            },
                        ],
                    },
                },
                AssertionReport {
                    class: 2,
                    name: "maybe".into(),
                    loc: loc(30),
                    verdict: CheckVerdict::Unknown {
                        reason: "indirect call".into(),
                    },
                },
            ],
        )
    }

    #[test]
    fn errors_sort_first_and_codes_are_stable() {
        let diags = sample();
        assert_eq!(diags[0].code, "TESLA-S003");
        assert_eq!(diags[1].code, "TESLA-S004");
        assert_eq!(diags[2].code, "TESLA-S002");
        assert!(diags.iter().skip(3).all(|d| d.severity == Severity::Note));
        assert!(has_denials(&diags));
        assert!(!has_denials(&diags[3..]));
    }

    #[test]
    fn text_render_includes_trace_and_summary() {
        let text = render(&sample(), OutputFormat::Text);
        assert!(text.contains("error[TESLA-S004]: `broken`"));
        assert!(text.contains("counterexample trace:"));
        assert!(text.contains("«init»"));
        assert!(text.contains("--> demo.c:20"));
        assert!(text.contains("2 error(s), 1 warning(s), 2 note(s)"));
    }

    #[test]
    fn json_render_is_complete_and_escaped() {
        let text = render(&sample(), OutputFormat::Json);
        assert_eq!(text.matches("\"code\":").count(), 5);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("]\n"));
        assert!(text.contains("\"code\": \"TESLA-S003\""));
        assert!(text.contains("\"file\": \"demo.c\", \"line\": 20"));
        // The counterexample trace rides along on the S004 entry.
        assert!(text.contains("\"trace\": [\"«init»\", \"«assertion»\"]"));
        // Quotes and backslashes in messages must be escaped.
        let quoted = vec![Diagnostic {
            code: "TESLA-S006",
            severity: Severity::Note,
            assertion: "q".into(),
            message: "saw \"quote\" and \\slash\nnewline".into(),
            loc: None,
            trace: Vec::new(),
        }];
        let text = render(&quoted, OutputFormat::Json);
        assert!(text.contains(r#"saw \"quote\" and \\slash\nnewline"#));
        assert!(text.contains("\"file\": null, \"line\": null"));
    }

    #[test]
    fn sarif_render_is_schema_shaped() {
        let text = render(&sample(), OutputFormat::Sarif);
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("sarif-2.1.0.json"));
        assert!(text.contains("\"name\": \"tesla-static-check\""));
        assert_eq!(text.matches("\"ruleId\":").count(), 5);
        // Every distinct code appears once in the rules table.
        for code in [
            "TESLA-S002",
            "TESLA-S003",
            "TESLA-S004",
            "TESLA-S005",
            "TESLA-S006",
        ] {
            assert!(
                text.contains(&format!("{{\"id\": \"{code}\"")),
                "missing rule {code}"
            );
        }
        assert!(text.contains("\"startLine\": 20"));
        assert!(text.contains("trace: «init» → «assertion»"));
        // "impossible" has no like-named report, so no location attaches
        // to its result; its rule id still must.
        assert!(text.contains("`impossible`"));
    }

    fn lint_loc(file: &str, line: u32) -> SourceLoc {
        SourceLoc {
            file: file.into(),
            line,
        }
    }

    fn sample_lints() -> Vec<LintFinding> {
        vec![
            LintFinding::Vacuous {
                assertion: "vac".into(),
                loc: lint_loc("lint.c", 3),
            },
            LintFinding::Contradiction {
                assertion: "contra".into(),
                loc: lint_loc("lint.c", 4),
            },
            LintFinding::Subsumed {
                assertion: "weak".into(),
                loc: lint_loc("lint.c", 5),
                by: "strong".into(),
            },
            LintFinding::DeadStates {
                assertion: "xor".into(),
                loc: lint_loc("lint.c", 6),
                groups: vec![vec![1, 2]],
                unreachable: vec![7],
            },
            LintFinding::BoundNeverCloses {
                assertion: "stuck".into(),
                loc: lint_loc("lint.c", 7),
                function: "f".into(),
            },
            LintFinding::IncompatibleMatchers {
                function: "ioctl".into(),
                first: "one".into(),
                second: "two".into(),
                position: 0,
                first_pattern: "1".into(),
                second_pattern: "2".into(),
                loc: lint_loc("lint.c", 8),
            },
        ]
    }

    #[test]
    fn lints_map_to_stable_codes_and_severities() {
        let diags = diagnose_lints(&sample_lints());
        assert_eq!(diags.len(), 6);
        // Errors (L002, L005) sort before the four warnings.
        assert_eq!(diags[0].code, "TESLA-L002");
        assert_eq!(diags[1].code, "TESLA-L005");
        assert!(diags[..2].iter().all(|d| d.severity == Severity::Error));
        assert!(diags[2..].iter().all(|d| d.severity == Severity::Warning));
        assert!(has_denials(&diags));
        // Every lint diagnostic carries its assertion's location.
        assert!(diags.iter().all(|d| d.loc.is_some()));
        // Messages carry the cross-references reviewers need.
        let weak = diags.iter().find(|d| d.code == "TESLA-L003").unwrap();
        assert!(weak.message.contains("`strong`"));
        let m = diags.iter().find(|d| d.code == "TESLA-L006").unwrap();
        assert!(m.message.contains("`ioctl`") && m.message.contains("1 vs 2"));
        let dead = diags.iter().find(|d| d.code == "TESLA-L004").unwrap();
        assert!(dead.message.contains("{s1, s2}") && dead.message.contains("{n7}"));
    }

    #[test]
    fn combined_stream_shares_one_sort() {
        let diags = diagnose_with_lints(
            &[StaticFinding::Unsatisfiable {
                assertion: "imp".into(),
                missing_events: vec!["call foo(…)".into()],
            }],
            &[],
            &sample_lints(),
        );
        // L-errors before S-errors (code order), then warnings.
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            [
                "TESLA-L002",
                "TESLA-L005",
                "TESLA-S003",
                "TESLA-L001",
                "TESLA-L003",
                "TESLA-L004",
                "TESLA-L006"
            ]
        );
    }

    #[test]
    fn every_constructible_code_is_documented_and_registered() {
        // Construct one diagnostic of every variant the crate can
        // emit, and check the set of produced codes is exactly
        // `all_codes()`.
        let mut produced: Vec<&'static str> = sample()
            .iter()
            .chain(
                diagnose(
                    &[StaticFinding::BoundNeverEntered {
                        assertion: "dormant".into(),
                        bound_fn: "f".into(),
                    }],
                    &[],
                )
                .iter(),
            )
            .map(|d| d.code)
            .chain(diagnose_lints(&sample_lints()).iter().map(|d| d.code))
            .collect();
        produced.sort_unstable();
        produced.dedup();
        let mut registered: Vec<&'static str> = all_codes().to_vec();
        registered.sort_unstable();
        assert_eq!(
            produced, registered,
            "all_codes() out of sync with diagnose*"
        );

        // And every registered code appears as a row of the
        // module-doc table at the top of this file.
        let source = include_str!("diagnostics.rs");
        for code in all_codes() {
            assert!(
                source.contains(&format!("//! | `{code}` |")),
                "{code} missing from the module-doc table"
            );
        }
    }

    #[test]
    fn format_parses_from_str() {
        assert_eq!("text".parse::<OutputFormat>().unwrap(), OutputFormat::Text);
        assert_eq!(
            "sarif".parse::<OutputFormat>().unwrap(),
            OutputFormat::Sarif
        );
        assert!("xml".parse::<OutputFormat>().is_err());
    }
}
