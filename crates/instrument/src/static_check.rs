//! Compile-time assertion checking (§7).
//!
//! "We have focused exclusively on dynamic analysis. A natural next
//! direction would be to explore cases where static analysis could be
//! used … A further advantage would be compile-time reporting of
//! potential failures." This module is that direction, scoped to what
//! is sound on TIR:
//!
//! * **dormant assertions** — the temporal bound's start function
//!   never occurs in the program: no instance will ever exist;
//! * **unchecked assertions** — no assertion site was woven: the
//!   property is never evaluated (the compile-time version of the
//!   §3.5.2 coverage analysis);
//! * **unsatisfiable assertions** — the site is present, but after
//!   deleting automaton transitions whose events *cannot occur* in
//!   this program (their function is neither defined nor called), no
//!   assertion-site transition remains reachable from the start
//!   state: every site visit is guaranteed to be a violation.
//!
//! All three are warnings a CI build can fail on, long before a
//! workload would have to trigger the path at run time.

use std::collections::HashSet;
use tesla_automata::{Manifest, SymbolKind};
use tesla_ir::{Callee, Inst, Module};

/// A finding from the static pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticFinding {
    /// The bound's start function never occurs: the assertion can
    /// never be instantiated.
    BoundNeverEntered {
        /// Assertion name.
        assertion: String,
        /// The missing bound function.
        bound_fn: String,
    },
    /// No site instruction exists for this assertion.
    SiteNeverReached {
        /// Assertion name.
        assertion: String,
    },
    /// Every reachable path to the assertion site requires an event
    /// that cannot occur in this program: the site always violates.
    Unsatisfiable {
        /// Assertion name.
        assertion: String,
        /// Functions the automaton needs but the program never
        /// defines or calls.
        missing_events: Vec<String>,
    },
}

impl std::fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticFinding::BoundNeverEntered {
                assertion,
                bound_fn,
            } => write!(
                f,
                "`{assertion}`: temporal bound `{bound_fn}` never occurs — assertion is dormant"
            ),
            StaticFinding::SiteNeverReached { assertion } => {
                write!(
                    f,
                    "`{assertion}`: assertion site is never reached — property unchecked"
                )
            }
            StaticFinding::Unsatisfiable {
                assertion,
                missing_events,
            } => write!(
                f,
                "`{assertion}`: unsatisfiable — required events {missing_events:?} cannot occur \
                 in this program; every site visit will be a violation"
            ),
        }
    }
}

/// Function names that can produce events in `module`: defined
/// functions (callee-side hooks), anything called directly or as an
/// unresolved external (caller-side hooks), and any address-taken
/// function (`FnAddr` — reachable through an indirect call even when
/// its name appears at no direct call site).
pub fn occurring_functions(module: &Module) -> HashSet<String> {
    let mut out: HashSet<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    for f in &module.functions {
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::Call {
                        callee: Callee::External(n),
                        ..
                    } => {
                        out.insert(n.clone());
                    }
                    Inst::Call {
                        callee: Callee::Direct(g),
                        ..
                    } => {
                        out.insert(module.functions[g.0 as usize].name.clone());
                    }
                    Inst::FnAddr { func, .. } => {
                        out.insert(module.functions[func.0 as usize].name.clone());
                    }
                    Inst::TeslaHookCallPre { name, .. } => {
                        out.insert(name.clone());
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Does the module perform any indirect call? Function pointers may
/// be forged from values the IR cannot trace (parameters, loads), so
/// in their presence "this event cannot occur" reasoning is unsound:
/// an indirect call could invoke a function whose name never appears
/// at any direct call site.
fn has_indirect_calls(module: &Module) -> bool {
    module.functions.iter().any(|f| {
        f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Indirect(_),
                        ..
                    }
                )
            })
        })
    })
}

/// Classes whose site instruction exists in `module` (after
/// instrumentation; also recognises un-instrumented placeholders by
/// assertion index when the module has not been woven yet).
fn sites_present(module: &Module) -> HashSet<u32> {
    let mut out = HashSet::new();
    for f in &module.functions {
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::TeslaSite { class, .. } => {
                        out.insert(*class);
                    }
                    Inst::TeslaPseudoAssert { assertion, .. } => {
                        out.insert(*assertion);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Run the static pass over a (linked, instrumented or analysed)
/// module and the program manifest.
///
/// # Errors
///
/// Returns the manifest-compilation error message if an assertion
/// fails to compile.
pub fn static_check(module: &Module, manifest: &Manifest) -> Result<Vec<StaticFinding>, String> {
    let automata = manifest
        .compile_all()
        .map_err(|(n, e)| format!("{n}: {e}"))?;
    let occurring = occurring_functions(module);
    let sites = sites_present(module);
    let mut findings = Vec::new();
    for (idx, auto) in automata.iter().enumerate() {
        let name = auto.name.clone();
        if !occurring.contains(&auto.bound.start_fn) {
            findings.push(StaticFinding::BoundNeverEntered {
                assertion: name,
                bound_fn: auto.bound.start_fn.clone(),
            });
            continue;
        }
        if !sites.contains(&(idx as u32)) {
            findings.push(StaticFinding::SiteNeverReached { assertion: name });
            continue;
        }
        // Delete transitions on impossible events; is a site
        // transition still reachable from the start? With indirect
        // calls present, no event is provably impossible.
        if has_indirect_calls(module) {
            continue;
        }
        let impossible: HashSet<u32> = auto
            .symbols
            .iter()
            .filter_map(|s| match &s.kind {
                SymbolKind::Function { name, .. } if !occurring.contains(name) => Some(s.id.0),
                _ => None,
            })
            .collect();
        if impossible.is_empty() {
            continue;
        }
        let mut reach = vec![false; auto.n_states as usize];
        reach[auto.start as usize] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for t in &auto.transitions {
                if impossible.contains(&t.sym.0) {
                    continue;
                }
                if reach[t.from as usize] && !reach[t.to as usize] {
                    reach[t.to as usize] = true;
                    changed = true;
                }
            }
        }
        let site_reachable = auto
            .transitions
            .iter()
            .any(|t| t.sym == auto.site_sym && reach[t.from as usize]);
        if !site_reachable {
            let mut missing: Vec<String> = auto
                .symbols
                .iter()
                .filter(|s| impossible.contains(&s.id.0))
                .filter_map(|s| s.function_name().map(|(n, ..)| n.to_string()))
                .collect();
            missing.sort();
            missing.dedup();
            findings.push(StaticFinding::Unsatisfiable {
                assertion: auto.name.clone(),
                missing_events: missing,
            });
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_automata::Manifest;

    fn build(src: &str) -> (Module, Manifest) {
        let out = tesla_cc::compile_unit(src, "t.c").unwrap();
        let manifest = Manifest::merge(&[out.manifest]);
        let mut m = out.module;
        crate::instrument(&mut m, &manifest).unwrap();
        (m, manifest)
    }

    #[test]
    fn healthy_program_has_no_findings() {
        let (m, man) = build(
            "int check(int x) { return 0; }\n\
             int main(int x) {\n\
                 check(x);\n\
                 TESLA_WITHIN(main, previously(check(x) == 0));\n\
                 return 0;\n\
             }",
        );
        assert_eq!(static_check(&m, &man).unwrap(), vec![]);
    }

    #[test]
    fn missing_event_function_is_unsatisfiable() {
        // The assertion requires ghost_check, which is neither
        // defined nor called anywhere.
        let (m, man) = build(
            "int main(int x) {\n\
                 TESLA_WITHIN(main, previously(ghost_check(x) == 0));\n\
                 return 0;\n\
             }",
        );
        let fs = static_check(&m, &man).unwrap();
        assert_eq!(fs.len(), 1);
        match &fs[0] {
            StaticFinding::Unsatisfiable { missing_events, .. } => {
                assert_eq!(missing_events, &vec!["ghost_check".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The message is CI-friendly.
        assert!(fs[0].to_string().contains("unsatisfiable"));
    }

    #[test]
    fn indirect_call_suppresses_unsatisfiable() {
        // Without the indirect call, ghost_check is provably absent
        // and the assertion is Unsatisfiable (previous test). With a
        // function pointer in play the same conclusion is unsound —
        // the pointer could reach code whose name appears nowhere —
        // so the conservative pass stays quiet.
        let (m, man) = build(
            "int helper(int x) { return 0; }\n\
             int main(int x) {\n\
                 int (*fp)(int) = &helper;\n\
                 fp(x);\n\
                 TESLA_WITHIN(main, previously(ghost_check(x) == 0));\n\
                 return 0;\n\
             }",
        );
        assert!(has_indirect_calls(&m));
        assert!(occurring_functions(&m).contains("helper"));
        assert_eq!(static_check(&m, &man).unwrap(), vec![]);
    }

    #[test]
    fn disjunction_with_one_possible_branch_is_fine() {
        // ghost() can never occur, but check() can: the OR is
        // satisfiable via the live branch.
        let (m, man) = build(
            "int check(int x) { return 0; }\n\
             int main(int x) {\n\
                 check(x);\n\
                 TESLA_WITHIN(main, previously(check(x) == 0 || ghost(x) == 0));\n\
                 return 0;\n\
             }",
        );
        assert_eq!(static_check(&m, &man).unwrap(), vec![]);
    }

    #[test]
    fn dormant_bound_is_reported() {
        // Assertion bounded by a syscall that this program never has.
        let (m, man) = build(
            "int check(int x) { return 0; }\n\
             int helper(int x) {\n\
                 TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);\n\
                 return check(x);\n\
             }\n\
             int main(int x) { return helper(x); }",
        );
        let fs = static_check(&m, &man).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(matches!(
            &fs[0],
            StaticFinding::BoundNeverEntered { bound_fn, .. } if bound_fn == "amd64_syscall"
        ));
    }

    #[test]
    fn unwoven_site_is_reported() {
        // Manifest carries an assertion from another unit; this
        // module never contains its site.
        let out = tesla_cc::compile_unit(
            "int check(int x) { return 0; }\n\
             int main(int x) { return check(x); }",
            "main.c",
        )
        .unwrap();
        let other = tesla_cc::compile_unit(
            "int check(int x);\n\
             int helper(int x) {\n\
                 TESLA_WITHIN(main, previously(check(x) == 0));\n\
                 return 0;\n\
             }",
            "lib.c",
        )
        .unwrap();
        let manifest = Manifest::merge(&[other.manifest]);
        let mut m = out.module;
        crate::instrument(&mut m, &manifest).unwrap();
        let fs = static_check(&m, &manifest).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(matches!(fs[0], StaticFinding::SiteNeverReached { .. }));
    }

    #[test]
    fn works_pre_instrumentation_via_placeholders() {
        let out = tesla_cc::compile_unit(
            "int main(int x) {\n\
                 TESLA_WITHIN(main, previously(ghost(x) == 0));\n\
                 return 0;\n\
             }",
            "t.c",
        )
        .unwrap();
        let manifest = Manifest::merge(&[out.manifest]);
        // No instrumentation: placeholders still mark sites.
        let fs = static_check(&out.module, &manifest).unwrap();
        assert_eq!(fs.len(), 1);
        assert!(matches!(fs[0], StaticFinding::Unsatisfiable { .. }));
    }
}
