//! # tesla-instrument — weaving TESLA hooks into TIR
//!
//! The instrumenter "modifies compiled code to turn program events
//! into automaton transitions" (§4.2). Given a TIR module and the
//! program-wide merged `.tesla` manifest, [`instrument`] adds the two
//! kinds of code the paper describes:
//!
//! * **program hooks** — callee-side instrumentation in the target
//!   function's entry block and before every return instruction;
//!   caller-side instrumentation immediately before and after call
//!   sites (needed for libraries that cannot be recompiled); and
//!   field-assignment hooks after each relevant `Store`;
//! * **assertion-site rewriting** — every
//!   `__tesla_inline_assertion` placeholder
//!   ([`tesla_ir::Inst::TeslaPseudoAssert`]) is replaced with a real
//!   site event bound to its runtime automaton class.
//!
//! The *event translators* the paper generates as code are compiled
//! dispatch tables inside `tesla-runtime` (see its docs); the
//! [`RuntimeSink`] here bridges the interpreter's hook stream into
//! them.
//!
//! Because assertions anywhere in the program can name events
//! anywhere else, the manifest passed in must be the *merged* one;
//! instrumenting any unit therefore depends on every unit's
//! assertions — the one-to-many property that makes incremental
//! rebuilds expensive (§5.1, fig. 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod lint;
pub mod model_check;
pub mod static_check;

pub use diagnostics::{
    all_codes, diagnose, diagnose_lints, diagnose_with_lints, has_denials, render, Diagnostic,
    OutputFormat, Severity,
};
pub use lint::{lint_compiled, lint_manifest, LintFinding};
pub use model_check::{model_check, AssertionReport, CheckVerdict, TraceStep};
pub use static_check::{occurring_functions, static_check, StaticFinding};

use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use tesla_automata::{Automaton, InstrSide, Manifest, SymbolKind};
use tesla_ir::{Callee, FuncId, Inst, Module, Terminator};
use tesla_runtime::{ClassId, IngressEventRef, NameCache, Tesla, TraceWriter};
use tesla_spec::Value;

/// Instrumentation statistics (drives the build-time experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InstrStats {
    /// Functions that received callee-side entry/exit hooks.
    pub hooked_functions: usize,
    /// Entry hooks inserted.
    pub entry_hooks: usize,
    /// Exit hooks inserted.
    pub exit_hooks: usize,
    /// Caller-side pre/post pairs inserted.
    pub call_site_hooks: usize,
    /// Field-assignment hooks inserted.
    pub field_hooks: usize,
    /// Assertion placeholders replaced with site events.
    pub sites_replaced: usize,
    /// Assertion placeholders removed because the model checker
    /// proved the assertion safe ([`model_check`]).
    pub sites_elided: usize,
}

/// An instrumentation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentError {
    /// An assertion in the module has no matching manifest entry —
    /// the manifest is stale (a unit was edited without re-running
    /// the analyser).
    StaleManifest {
        /// The unmatched assertion's name.
        assertion: String,
    },
    /// Manifest compilation failed.
    Compile(String),
}

impl std::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstrumentError::StaleManifest { assertion } => {
                write!(
                    f,
                    "assertion `{assertion}` not in the merged manifest; re-run analysis"
                )
            }
            InstrumentError::Compile(e) => write!(f, "automaton compilation failed: {e}"),
        }
    }
}

impl std::error::Error for InstrumentError {}

/// Instrument `module` against the merged program `manifest`.
///
/// Runtime class ids are assigned by manifest order: entry *i*
/// becomes class *i*, matching [`register_manifest`].
///
/// # Errors
///
/// Returns [`InstrumentError`] on stale manifests or un-compilable
/// assertions.
pub fn instrument(module: &mut Module, manifest: &Manifest) -> Result<InstrStats, InstrumentError> {
    instrument_with_elision(module, manifest, &HashSet::new())
}

/// [`instrument`], minus the assertions the model checker proved
/// safe.
///
/// `elided` holds runtime class ids (manifest indices) whose verdict
/// was [`CheckVerdict::ProvedSafe`] with `elide` set. For those
/// classes no hooks are woven on their behalf and their assertion-site
/// placeholders are *removed* rather than rewritten, so the running
/// program pays nothing for them. Class ids of the remaining automata
/// are untouched — [`register_manifest`] still registers the full
/// manifest, and `residual_safe` in [`model_check`] has already
/// guaranteed that whatever event subset still reaches an elided
/// class (via hooks shared with live automata) can never take it out
/// of its safe states.
///
/// # Errors
///
/// Returns [`InstrumentError`] on stale manifests or un-compilable
/// assertions.
pub fn instrument_with_elision(
    module: &mut Module,
    manifest: &Manifest,
    elided: &HashSet<u32>,
) -> Result<InstrStats, InstrumentError> {
    let automata = manifest
        .compile_all()
        .map_err(|(name, e)| InstrumentError::Compile(format!("{name}: {e}")))?;
    instrument_precompiled(module, manifest, &automata, elided)
}

/// The program-wide weave plan derived from the *live* (non-elided)
/// automata: which functions need hooks on which side, and which
/// structure fields need store hooks. Everything the instrumenter
/// consults besides the module itself and the site class ids — which
/// makes it the exact dependency set for delta-aware rebuild
/// invalidation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeavePlan {
    /// Function name → instrumentation side, merged caller-wins
    /// exactly as [`Manifest::instrumentation_plan`] does.
    pub functions: BTreeMap<String, InstrSide>,
    /// Field events referenced by any live automaton:
    /// `(struct name or "", field name)`.
    pub fields: BTreeSet<(String, String)>,
}

/// Compute the [`WeavePlan`] of the live automata. `automata` is
/// positionally aligned with manifest entries (index = runtime class
/// id); classes in `elided` contribute nothing.
pub fn weave_plan<A: Borrow<Automaton>>(automata: &[A], elided: &HashSet<u32>) -> WeavePlan {
    let mut plan = WeavePlan::default();
    for (idx, a) in automata.iter().enumerate() {
        if elided.contains(&(idx as u32)) {
            continue;
        }
        let a = a.borrow();
        for (name, side) in a.instrumentation_targets() {
            plan.functions
                .entry(name)
                .and_modify(|s| {
                    if side == InstrSide::Caller {
                        *s = InstrSide::Caller;
                    }
                })
                .or_insert(side);
        }
        for s in &a.symbols {
            if let SymbolKind::FieldAssign {
                struct_name,
                field_name,
                ..
            } = &s.kind
            {
                plan.fields
                    .insert((struct_name.clone(), field_name.clone()));
            }
        }
    }
    // Message events are instrumented by runtime interposition
    // (§4.3), not by this IR pass.
    plan
}

/// [`instrument_with_elision`] against **already compiled** automata —
/// the §7 optimised toolchain's entry point. The naive workflow
/// re-parses the merged `.tesla` description and recompiles every
/// automaton once *per unit*; here the shared
/// [`tesla_automata::CompileCache`] compiles each assertion once per
/// program build and every unit (and every back-end thread) weaves
/// against the same `Arc`-shared classes.
///
/// `automata` must be positionally aligned with `manifest.entries`
/// (index = runtime class id), as
/// [`tesla_automata::CompileCache::compile_manifest`] produces.
///
/// # Errors
///
/// Returns [`InstrumentError`] on stale manifests.
pub fn instrument_precompiled<A: Borrow<Automaton>>(
    module: &mut Module,
    manifest: &Manifest,
    automata: &[A],
    elided: &HashSet<u32>,
) -> Result<InstrStats, InstrumentError> {
    let mut stats = InstrStats::default();
    let WeavePlan {
        functions: plan,
        fields: field_targets,
    } = weave_plan(automata, elided);

    // Assertion index → runtime class id, by manifest identity.
    let mut class_of: Vec<u32> = Vec::with_capacity(module.assertions.len());
    for a in &module.assertions {
        let idx = manifest
            .entries
            .iter()
            .position(|e| {
                e.assertion.name == a.assertion.name && e.assertion.loc == a.assertion.loc
            })
            .ok_or_else(|| InstrumentError::StaleManifest {
                assertion: a.assertion.name.clone(),
            })?;
        class_of.push(idx as u32);
    }

    let callee_hooked: HashSet<String> = plan
        .iter()
        .filter(|(_, side)| **side == InstrSide::Callee)
        .map(|(n, _)| n.clone())
        .collect();
    let caller_hooked: HashSet<String> = plan
        .iter()
        .filter(|(_, side)| **side == InstrSide::Caller)
        .map(|(n, _)| n.clone())
        .collect();

    let fn_names: Vec<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    let struct_names: Vec<String> = module.structs.iter().map(|s| s.name.clone()).collect();
    let struct_fields: Vec<Vec<String>> = module.structs.iter().map(|s| s.fields.clone()).collect();

    for (fi, f) in module.functions.iter_mut().enumerate() {
        let fid = FuncId(fi as u32);
        let callee_side = callee_hooked.contains(&f.name);
        if callee_side {
            stats.hooked_functions += 1;
            // Entry hook at the top of the entry block.
            f.blocks[0]
                .insts
                .insert(0, Inst::TeslaHookEntry { func: fid });
            stats.entry_hooks += 1;
            // Exit hooks before every return.
            for b in &mut f.blocks {
                if let Terminator::Ret(r) = &b.term {
                    b.insts.push(Inst::TeslaHookExit { func: fid, ret: *r });
                    stats.exit_hooks += 1;
                }
            }
        }
        // Walk instructions: caller-side call hooks, field hooks, and
        // placeholder replacement.
        for b in &mut f.blocks {
            let mut i = 0;
            while i < b.insts.len() {
                match &b.insts[i] {
                    Inst::Call { dst, callee, args } => {
                        let name = match callee {
                            Callee::Direct(g) => Some(fn_names[g.0 as usize].clone()),
                            Callee::External(n) => Some(n.clone()),
                            Callee::Indirect(_) => None, // §7: not yet expressible
                        };
                        if let Some(name) = name {
                            if caller_hooked.contains(&name) {
                                let pre = Inst::TeslaHookCallPre {
                                    name: name.clone(),
                                    args: args.clone(),
                                };
                                let post = Inst::TeslaHookCallPost {
                                    name,
                                    args: args.clone(),
                                    ret: *dst,
                                };
                                b.insts.insert(i, pre);
                                b.insts.insert(i + 2, post);
                                stats.call_site_hooks += 1;
                                i += 3;
                                continue;
                            }
                        }
                    }
                    Inst::Store {
                        obj,
                        field,
                        op,
                        value,
                    } => {
                        let sname = &struct_names[field.strct.0 as usize];
                        let fname = &struct_fields[field.strct.0 as usize][field.field as usize];
                        let hit = field_targets.contains(&(sname.clone(), fname.clone()))
                            || field_targets.contains(&(String::new(), fname.clone()));
                        if hit {
                            let hook = Inst::TeslaHookField {
                                obj: *obj,
                                field: *field,
                                op: *op,
                                value: *value,
                            };
                            b.insts.insert(i + 1, hook);
                            stats.field_hooks += 1;
                            i += 2;
                            continue;
                        }
                    }
                    Inst::TeslaPseudoAssert { assertion, args } => {
                        let class = class_of[*assertion as usize];
                        if elided.contains(&class) {
                            b.insts.remove(i);
                            stats.sites_elided += 1;
                            continue;
                        }
                        let args = args.clone();
                        b.insts[i] = Inst::TeslaSite { class, args };
                        stats.sites_replaced += 1;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    Ok(stats)
}

/// Register every automaton in the manifest with a libtesla engine,
/// in manifest order — the class-id assignment [`instrument`] bakes
/// into `TeslaSite` instructions.
///
/// # Errors
///
/// Returns a description of the first compilation or registration
/// failure.
pub fn register_manifest(tesla: &Tesla, manifest: &Manifest) -> Result<Vec<ClassId>, String> {
    let automata = manifest
        .compile_all()
        .map_err(|(n, e)| format!("{n}: {e}"))?;
    // One batch: the engine clones and publishes a single dispatch
    // snapshot for the whole manifest instead of one per class.
    tesla.register_batch(automata).map_err(|e| e.to_string())
}

/// [`register_manifest`], resolving automata *and* their compiled
/// transition matrices through a shared
/// [`tesla_automata::CompileCache`]: the build's memoised subset
/// constructions are reused instead of re-run per engine, so a
/// `run` + `replay` pair (or repeated runs under one build system)
/// pays for each DFA exactly once.
///
/// # Errors
///
/// Returns a description of the first compilation or registration
/// failure.
pub fn register_manifest_cached(
    tesla: &Tesla,
    manifest: &Manifest,
    cache: &tesla_automata::CompileCache,
) -> Result<Vec<ClassId>, String> {
    let pairs = cache
        .compile_manifest_with_dfas(manifest)
        .map_err(|(n, e)| format!("{n}: {e}"))?;
    tesla.register_batch_compiled(pairs).map_err(|e| e.to_string())
}

/// Bridges interpreter hook events into a libtesla engine: the
/// deployed-program configuration (compiler weaves hooks → hooks call
/// libtesla).
///
/// This is the in-process [`tesla_runtime::EventSource`]-shaped
/// transport: each interpreter hook becomes an
/// [`IngressEventRef`] dispatched through [`Tesla::ingest`], the same
/// boundary `tesla replay` and `tesla attach` feed — so a live run
/// and a replayed recording of it take the identical path into the
/// engine.
pub struct RuntimeSink<'t> {
    tesla: &'t Tesla,
    cache: NameCache,
}

impl<'t> RuntimeSink<'t> {
    /// Wrap an engine.
    pub fn new(tesla: &'t Tesla) -> RuntimeSink<'t> {
        RuntimeSink {
            tesla,
            cache: NameCache::new(),
        }
    }

    fn ingest(&mut self, ev: IngressEventRef<'_>) -> Result<(), String> {
        self.tesla
            .ingest(&mut self.cache, ev)
            .map_err(|v| v.to_string())
    }
}

impl tesla_ir::HookSink for RuntimeSink<'_> {
    fn fn_entry(&mut self, name: &str, args: &[Value]) -> Result<(), String> {
        self.ingest(IngressEventRef::FnEntry { name, args })
    }

    fn fn_exit(&mut self, name: &str, args: &[Value], ret: Value) -> Result<(), String> {
        self.ingest(IngressEventRef::FnExit { name, args, ret })
    }

    fn field_store(
        &mut self,
        struct_name: &str,
        field_name: &str,
        object: Value,
        op: tesla_spec::FieldOp,
        value: Value,
    ) -> Result<(), String> {
        self.ingest(IngressEventRef::FieldStore {
            strct: struct_name,
            field: field_name,
            object,
            op,
            value,
        })
    }

    fn assertion_site(&mut self, class: u32, values: &[Value]) -> Result<(), String> {
        self.ingest(IngressEventRef::AssertionSite { class, values })
    }
}

/// A [`tesla_ir::HookSink`] tee: records every hook event to a JSONL
/// trace ([`TraceWriter`]) and then forwards it to an inner sink.
///
/// Events are written *before* dispatch, so when a forwarded event
/// fail-stops the run, the offending event is the trace's last line —
/// a recorded violating run replays to the same violation.
pub struct RecordingSink<S, W: std::io::Write> {
    inner: S,
    writer: TraceWriter<W>,
}

impl<S, W: std::io::Write> RecordingSink<S, W> {
    /// Tee `inner`'s event stream into a trace written to `out`.
    pub fn new(inner: S, out: W) -> RecordingSink<S, W> {
        RecordingSink {
            inner,
            writer: TraceWriter::new(out),
        }
    }

    fn record(&mut self, ev: &IngressEventRef<'_>) -> Result<(), String> {
        self.writer
            .record(ev)
            .map_err(|e| format!("trace write: {e}"))
    }

    /// Finish the trace (flushing the header even for an empty run)
    /// and return the inner sink plus the written-out trace sink.
    ///
    /// # Errors
    ///
    /// The write/flush error, stringified, if the trace could not be
    /// finalised.
    pub fn finish(self) -> Result<(S, W), String> {
        let out = self
            .writer
            .finish()
            .map_err(|e| format!("trace write: {e}"))?;
        Ok((self.inner, out))
    }
}

impl<S: tesla_ir::HookSink, W: std::io::Write> tesla_ir::HookSink for RecordingSink<S, W> {
    fn fn_entry(&mut self, name: &str, args: &[Value]) -> Result<(), String> {
        self.record(&IngressEventRef::FnEntry { name, args })?;
        self.inner.fn_entry(name, args)
    }

    fn fn_exit(&mut self, name: &str, args: &[Value], ret: Value) -> Result<(), String> {
        self.record(&IngressEventRef::FnExit { name, args, ret })?;
        self.inner.fn_exit(name, args, ret)
    }

    fn field_store(
        &mut self,
        struct_name: &str,
        field_name: &str,
        object: Value,
        op: tesla_spec::FieldOp,
        value: Value,
    ) -> Result<(), String> {
        self.record(&IngressEventRef::FieldStore {
            strct: struct_name,
            field: field_name,
            object,
            op,
            value,
        })?;
        self.inner
            .field_store(struct_name, field_name, object, op, value)
    }

    fn assertion_site(&mut self, class: u32, values: &[Value]) -> Result<(), String> {
        self.record(&IngressEventRef::AssertionSite { class, values })?;
        self.inner.assertion_site(class, values)
    }
}

/// What a compilation unit's woven form can depend on, extracted from
/// its *pristine* (un-instrumented) module. Built on the same
/// occurring-functions analysis as [`static_check`]: the instrumenter
/// only touches a unit where the [`WeavePlan`] intersects this set, so
/// a plan change outside it provably cannot alter the unit's object —
/// the soundness core of the pipeline's delta-aware invalidation (see
/// DESIGN.md §10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitTouchSet {
    /// Functions the unit defines (candidates for callee-side
    /// entry/exit hooks).
    pub defined: BTreeSet<String>,
    /// Function names appearing at the unit's direct or external call
    /// sites (candidates for caller-side call-site wrapping).
    pub called: BTreeSet<String>,
    /// `(struct name, field name)` pairs the unit stores to
    /// (candidates for field-assignment hooks).
    pub stored: BTreeSet<(String, String)>,
}

impl UnitTouchSet {
    /// Is a plan entry for `name` with `side` relevant to this unit —
    /// i.e. could the instrumenter weave a hook for it here?
    pub fn function_relevant(&self, name: &str, side: InstrSide) -> bool {
        match side {
            InstrSide::Callee => self.defined.contains(name),
            InstrSide::Caller => self.called.contains(name),
        }
    }

    /// Does a field target `(struct name or "", field name)` match any
    /// store in this unit? Mirrors the instrumenter's match rule: an
    /// empty struct name is a wildcard.
    pub fn field_relevant(&self, target: &(String, String)) -> bool {
        if target.0.is_empty() {
            self.stored.iter().any(|(_, f)| *f == target.1)
        } else {
            self.stored.contains(target)
        }
    }
}

/// Extract a unit's [`UnitTouchSet`] from its pristine module.
pub fn unit_touch_set(module: &Module) -> UnitTouchSet {
    let mut out = UnitTouchSet::default();
    for f in &module.functions {
        out.defined.insert(f.name.clone());
    }
    for f in &module.functions {
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::Call {
                        callee: Callee::External(n),
                        ..
                    } => {
                        out.called.insert(n.clone());
                    }
                    Inst::Call {
                        callee: Callee::Direct(g),
                        ..
                    } => {
                        out.called
                            .insert(module.functions[g.0 as usize].name.clone());
                    }
                    Inst::Store { field, .. } => {
                        let s = &module.structs[field.strct.0 as usize];
                        out.stored
                            .insert((s.name.clone(), s.fields[field.field as usize].clone()));
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Check whether a module still needs instrumentation (contains
/// placeholders) — used by pipeline caching.
pub fn has_placeholders(m: &Module) -> bool {
    m.functions.iter().any(|f| {
        f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, Inst::TeslaPseudoAssert { .. }))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_ir::verify::{verify, Stage};
    use tesla_ir::{Interp, NullSink};
    use tesla_runtime::Config;

    /// The figure-4 scenario in mini-C: syscall → optional MAC check →
    /// sopoll_generic with the assertion.
    fn kernel_source(do_check: i64) -> String {
        format!(
            "struct socket {{ int so_state; }};\n\
             int mac_socket_check_poll(int cred, struct socket *so) {{ return 0; }}\n\
             int sopoll_generic(int cred, struct socket *so) {{\n\
                 TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(int), so) == 0);\n\
                 return 1;\n\
             }}\n\
             int amd64_syscall(int cred, struct socket *so) {{\n\
                 if ({do_check}) {{ mac_socket_check_poll(cred, so); }}\n\
                 return sopoll_generic(cred, so);\n\
             }}\n\
             int kernel_main(int cred) {{\n\
                 struct socket *so = malloc(sizeof(struct socket));\n\
                 return amd64_syscall(cred, so);\n\
             }}"
        )
    }

    fn build(src: &str) -> (Module, Manifest) {
        let out = tesla_cc::compile_unit(src, "kern.c").unwrap();
        let manifest = Manifest::merge(&[out.manifest]);
        (out.module, manifest)
    }

    #[test]
    fn instrumenting_adds_hooks_and_replaces_sites() {
        let (mut m, manifest) = build(&kernel_source(1));
        let stats = instrument(&mut m, &manifest).unwrap();
        assert!(stats.hooked_functions >= 2); // check fn + syscall bound
        assert!(stats.entry_hooks >= 2);
        assert!(stats.exit_hooks >= 2);
        assert_eq!(stats.sites_replaced, 1);
        assert!(!has_placeholders(&m));
        verify(&m, Stage::Linked).unwrap();
    }

    #[test]
    fn satisfied_run_passes_violating_run_failstops() {
        for (do_check, expect_ok) in [(1i64, true), (0, false)] {
            let (mut m, manifest) = build(&kernel_source(do_check));
            instrument(&mut m, &manifest).unwrap();
            let tesla = Tesla::new(Config::default());
            register_manifest(&tesla, &manifest).unwrap();
            let mut sink = RuntimeSink::new(&tesla);
            let mut interp = Interp::new(&m, 1_000_000);
            let r = interp.run_named("kernel_main", &[7], &mut sink);
            if expect_ok {
                assert_eq!(r.unwrap(), 1);
                assert!(tesla.violations().is_empty());
            } else {
                let err = r.unwrap_err();
                assert!(
                    matches!(err, tesla_ir::ExecError::Violation(ref v) if v.contains("kern.c")),
                    "unexpected {err:?}"
                );
            }
        }
    }

    #[test]
    fn uninstrumented_placeholders_trap_at_runtime() {
        let (m, _manifest) = build(&kernel_source(1));
        let mut interp = Interp::new(&m, 1_000_000);
        assert!(interp
            .run_named("kernel_main", &[7], &mut NullSink)
            .is_err());
    }

    #[test]
    fn caller_side_instrumentation_wraps_call_sites() {
        let src = "int lib_fn(int x);\n\
                   int main_fn(int x) {\n\
                       TESLA_WITHIN(main_fn, previously(caller(lib_fn(x) == 0)));\n\
                       return 0;\n\
                   }";
        let (mut m, manifest) = build(src);
        // A separate unit calls lib_fn: its call site gets wrapped
        // even though lib_fn itself cannot be recompiled.
        let src2 = "int lib_fn(int x);\n\
                    int driver(int x) { return lib_fn(x); }";
        let out2 = tesla_cc::compile_unit(src2, "driver.c").unwrap();
        let mut m2 = out2.module;
        let stats2 = instrument(&mut m2, &manifest).unwrap();
        assert_eq!(stats2.call_site_hooks, 1);
        let stats = instrument(&mut m, &manifest).unwrap();
        assert_eq!(stats.sites_replaced, 1);
        assert_eq!(stats.call_site_hooks, 0); // main_fn has no lib_fn call
    }

    #[test]
    fn field_hooks_follow_stores() {
        let src = "#define P_SUGID 0x100\n\
                   struct proc { int p_flag; int p_uid; };\n\
                   int sys_setuid(struct proc *p, int uid) {\n\
                       TESLA_SYSCALL(eventually(p.p_flag |= P_SUGID));\n\
                       p->p_uid = uid;\n\
                       p->p_flag |= P_SUGID;\n\
                       return 0;\n\
                   }";
        let (mut m, manifest) = build(src);
        let stats = instrument(&mut m, &manifest).unwrap();
        // Only the p_flag store is hooked; p_uid is not referenced.
        assert_eq!(stats.field_hooks, 1);
    }

    #[test]
    fn stale_manifest_is_rejected() {
        let (mut m, _good) = build(&kernel_source(1));
        let empty = Manifest::new();
        match instrument(&mut m, &empty) {
            Err(InstrumentError::StaleManifest { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn elision_removes_sites_and_skips_hooks() {
        let (mut full_m, manifest) = build(&kernel_source(1));
        let full = instrument(&mut full_m, &manifest).unwrap();
        assert!(full.entry_hooks > 0);

        let (mut elided_m, _) = build(&kernel_source(1));
        let elided: HashSet<u32> = [0u32].into_iter().collect();
        let stats = instrument_with_elision(&mut elided_m, &manifest, &elided).unwrap();
        assert_eq!(stats.sites_elided, 1);
        assert_eq!(stats.sites_replaced, 0);
        assert_eq!(stats.entry_hooks, 0);
        assert_eq!(stats.hooked_functions, 0);
        assert!(!has_placeholders(&elided_m));
        verify(&elided_m, Stage::Linked).unwrap();

        // The elided program runs with zero hook traffic against a
        // fully registered engine.
        let tesla = Tesla::new(Config::default());
        register_manifest(&tesla, &manifest).unwrap();
        let mut sink = RuntimeSink::new(&tesla);
        let mut interp = Interp::new(&elided_m, 1_000_000);
        assert_eq!(interp.run_named("kernel_main", &[7], &mut sink).unwrap(), 1);
        assert!(tesla.violations().is_empty());
    }

    #[test]
    fn recorded_run_replays_to_identical_verdicts() {
        use tesla_runtime::{EventSource, JsonlSource};

        for do_check in [1i64, 0] {
            let (mut m, manifest) = build(&kernel_source(do_check));
            instrument(&mut m, &manifest).unwrap();

            // Live run, teed into an in-memory JSONL trace. Log mode
            // so a violating run still drains completely.
            let live = Tesla::new(Config {
                fail_mode: tesla_runtime::FailMode::Log,
                ..Config::default()
            });
            register_manifest(&live, &manifest).unwrap();
            let mut sink = RecordingSink::new(RuntimeSink::new(&live), Vec::new());
            let mut interp = Interp::new(&m, 1_000_000);
            interp.run_named("kernel_main", &[7], &mut sink).unwrap();
            let (_, trace) = sink.finish().unwrap();

            // Replay the trace into a fresh engine: byte-identical
            // violation lists.
            let replayed = Tesla::new(Config {
                fail_mode: tesla_runtime::FailMode::Log,
                ..Config::default()
            });
            register_manifest(&replayed, &manifest).unwrap();
            let mut src = JsonlSource::new(&trace[..]);
            let stats = replayed.drive(&mut src).unwrap();
            assert!(stats.events > 0);
            let fmt = |t: &Tesla| {
                t.violations()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            };
            assert_eq!(fmt(&live), fmt(&replayed));
            assert_eq!(live.violations().len(), usize::from(do_check == 0));

            // The trace is schema-clean: every line after the header
            // parses back, and a second decode agrees with the first.
            let mut src2 = JsonlSource::new(&trace[..]);
            let mut n = 0;
            while src2.next_event().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, stats.events);
        }
    }

    #[test]
    fn instrumentation_is_stable_across_reruns() {
        // Instrumenting two identical modules with the same manifest
        // yields identical output (determinism matters for the
        // build-caching experiments).
        let (mut a, manifest) = build(&kernel_source(1));
        let (mut b, _) = build(&kernel_source(1));
        instrument(&mut a, &manifest).unwrap();
        instrument(&mut b, &manifest).unwrap();
        assert_eq!(a, b);
    }
}
