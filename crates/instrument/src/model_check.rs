//! Flow-sensitive static model checking: CFG × automaton product.
//!
//! For each compiled assertion automaton, this module abstracts every
//! TIR function body reachable from the assertion's temporal bound
//! into its sequence/branching structure of observable events —
//! function entries/exits, field stores, assertion-site visits — and
//! explores the product of that interprocedural event flow with the
//! automaton, using the *same* symbol-matching rules the runtime
//! event translators apply (`tesla-automata`) and the same instance
//! semantics as the runtime store.
//!
//! Three verdicts per assertion (a small lattice, see DESIGN.md):
//!
//! * [`CheckVerdict::ProvedSafe`] — the exploration was exhaustive
//!   and no path violates. If the automaton is additionally
//!   *residual-safe* (no reachable state over non-site symbols can
//!   fail cleanup), the instrumenter may elide the assertion's hooks
//!   entirely (`elide: true`).
//! * [`CheckVerdict::DefiniteViolation`] — the exploration was
//!   exhaustive and **every** terminal path violates; a concrete
//!   counterexample event trace is attached.
//! * [`CheckVerdict::Unknown`] — anything else: the analysis bailed
//!   (indirect calls, budget, strict automata, …) or some paths
//!   violate and some don't. Dynamic instrumentation stays on.
//!
//! ## Faithfulness
//!
//! The abstract machine mirrors the deployed configuration byte for
//! byte where it matters: events fire exactly where `instrument`
//! would weave hooks (callee-side entry/exit, caller-side call
//! wrapping per the merged plan, field hooks, site rewriting);
//! translator order is automaton symbol order; instance updates copy
//! `tesla-runtime`'s store algorithm (binding compatibility,
//! specialisation clones, ignore-on-no-transition, site-must-match);
//! bound groups use the engine's lazy materialisation (an instance
//! only exists once some event statically matched); the shadow call
//! stack for `incallstack` guards is pushed before entry translators
//! and popped before exit translators, exactly as the engine does.
//!
//! Soundness caveats are handled by bailing to `Unknown`: strict
//! automata (elision could unmask residual strict violations),
//! indirect calls, unsupported bound shapes, instance counts near the
//! runtime capacity (where the runtime silently drops clones), and
//! analysis budget exhaustion. Abstract traps (division by a known
//! zero, `Unreachable`) end a path safely, exactly as the interpreter
//! halts before any further events.

use std::collections::{BTreeMap, HashMap};
use tesla_automata::{
    Automaton, Direction, Guard, InstrSide, Manifest, StateSet, SymbolId, SymbolKind,
};
use tesla_ir::{AbsVal, CallGraph, Callee, CmpOp, FuncId, Inst, Module, Op, Terminator};
use tesla_spec::{ArgPattern, FieldOp, SourceLoc, Value};

/// Per-assertion instruction budget for the abstract exploration.
const MAX_STEPS: usize = 400_000;
/// Maximum configurations explored per assertion.
const MAX_CONFIGS: usize = 4_096;
/// Maximum fork worlds while delivering a single event.
const MAX_WORLDS: usize = 128;
/// Instance-count bail threshold: the runtime store holds up to 64
/// instances and silently drops clones past that, so verdicts near
/// the limit would not be trustworthy.
const MAX_INSTANCES: usize = 32;
/// Maximum abstract call depth.
const MAX_FRAMES: usize = 48;

/// One step of a counterexample event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The automaton symbol the event matched.
    pub sym: SymbolId,
    /// Human-readable description of the concrete abstract event.
    pub desc: String,
}

/// The model checker's verdict for one assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckVerdict {
    /// No explored path violates, and the exploration was exhaustive.
    ProvedSafe {
        /// May the instrumenter remove this assertion's hooks?
        /// Requires residual-safety: hooks shared with other
        /// assertions keep firing after elision, so every state
        /// reachable over non-site symbols must be cleanup-safe.
        elide: bool,
    },
    /// Every terminal path violates; a counterexample is attached.
    DefiniteViolation {
        /// Event trace of one violating path (shortest found).
        trace: Vec<TraceStep>,
    },
    /// The analysis could not decide; dynamic checking remains.
    Unknown {
        /// Why the analysis gave up (or what it observed).
        reason: String,
    },
}

impl CheckVerdict {
    /// Is this a `ProvedSafe` verdict that permits hook elision?
    pub fn elidable(&self) -> bool {
        matches!(self, CheckVerdict::ProvedSafe { elide: true })
    }
}

/// The model-checking result for one manifest assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionReport {
    /// Manifest index == runtime class id.
    pub class: u32,
    /// Assertion name.
    pub name: String,
    /// Assertion source location.
    pub loc: SourceLoc,
    /// The verdict.
    pub verdict: CheckVerdict,
}

/// Model-check every assertion in `manifest` against the *linked,
/// un-instrumented* `module`.
///
/// # Errors
///
/// Returns a description of manifest compilation failures or a stale
/// manifest (an assertion in the module with no manifest entry).
pub fn model_check(module: &Module, manifest: &Manifest) -> Result<Vec<AssertionReport>, String> {
    let automata = manifest
        .compile_all()
        .map_err(|(n, e)| format!("{n}: {e}"))?;
    let plan = manifest
        .instrumentation_plan()
        .map_err(|(n, e)| format!("{n}: {e}"))?;
    let mut class_of: Vec<u32> = Vec::with_capacity(module.assertions.len());
    for a in &module.assertions {
        let idx = manifest
            .entries
            .iter()
            .position(|e| {
                e.assertion.name == a.assertion.name && e.assertion.loc == a.assertion.loc
            })
            .ok_or_else(|| format!("assertion `{}` not in manifest (stale)", a.assertion.name))?;
        class_of.push(idx as u32);
    }
    let cg = CallGraph::new(module);
    let mut reports = Vec::with_capacity(automata.len());
    for (i, auto) in automata.iter().enumerate() {
        let verdict = Checker {
            module,
            auto,
            class_idx: i as u32,
            plan: &plan,
            class_of: &class_of,
            cg: &cg,
            steps: MAX_STEPS,
            configs_spent: 0,
            worklist: Vec::new(),
            outcomes: Vec::new(),
            bail: None,
        }
        .check();
        reports.push(AssertionReport {
            class: i as u32,
            name: auto.name.clone(),
            loc: auto.loc.clone(),
            verdict,
        });
    }
    Ok(reports)
}

/// Is the automaton safe under any *residual* event stream: events
/// from hooks other assertions keep alive after this one's site
/// placeholders are removed? Site events can no longer occur, so the
/// check is that every state reachable from the start over non-site
/// symbols is cleanup-safe.
fn residual_safe(auto: &Automaton) -> bool {
    let n = auto.n_states as usize;
    let mut reach = vec![false; n];
    reach[auto.start as usize] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for t in &auto.transitions {
            if t.sym != auto.site_sym && reach[t.from as usize] && !reach[t.to as usize] {
                reach[t.to as usize] = true;
                changed = true;
            }
        }
    }
    reach
        .iter()
        .enumerate()
        .all(|(s, r)| !*r || auto.cleanup_safe.contains(s as u32))
}

// ---------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct AbsInstance {
    states: StateSet,
    /// Variable index → bound abstract value (`None` = unbound).
    bindings: Vec<Option<AbsVal>>,
}

#[derive(Debug, Clone)]
struct Frame {
    func: usize,
    block: u32,
    ip: usize,
    regs: Vec<AbsVal>,
    /// Callee-side exit hook: emit `FnExit` with *current* params.
    exit_hook: bool,
    /// Caller-side post hook: emit `FnExit` with the saved call args.
    post_event: Option<(String, Vec<AbsVal>)>,
    /// Caller register receiving the return value.
    ret_dst: Option<u32>,
}

#[derive(Debug, Clone)]
struct Config {
    frames: Vec<Frame>,
    instances: Vec<AbsInstance>,
    next_ref: u32,
    /// `(r, c)`: `Ref(r)` is known ≠ constant `c`.
    neq_const: Vec<(u32, i64)>,
    /// Normalised `(a, b)` with `a < b`: `Ref(a)` ≠ `Ref(b)`.
    neq_ref: Vec<(u32, u32)>,
    /// Comparison results: result ref → `(op, lhs, rhs)`.
    cmp_facts: HashMap<u32, (CmpOp, AbsVal, AbsVal)>,
    /// Per-config assumption: is this guard fn executing above the
    /// bound's root frame? Fixed for the whole bound invocation.
    above_root: BTreeMap<String, bool>,
    /// Refs known to be distinct heap handles (from `New`).
    obj_refs: Vec<u32>,
    /// Has any event statically matched (lazy materialisation)?
    materialized: bool,
    trace: Vec<TraceStep>,
}

impl Config {
    fn fresh_ref(&mut self) -> u32 {
        let r = self.next_ref;
        self.next_ref += 1;
        r
    }

    fn definitely_neq(&self, a: AbsVal, b: AbsVal) -> bool {
        match (a, b) {
            (AbsVal::Const(x), AbsVal::Const(y)) => x != y,
            (AbsVal::Ref(r), AbsVal::Const(c)) | (AbsVal::Const(c), AbsVal::Ref(r)) => {
                self.neq_const.contains(&(r, c))
            }
            (AbsVal::Ref(a), AbsVal::Ref(b)) => {
                a != b && self.neq_ref.contains(&(a.min(b), a.max(b)))
            }
        }
    }
}

#[derive(Debug, Clone)]
enum EventBody {
    Fn {
        name: String,
        dir: Direction,
        args: Vec<AbsVal>,
        ret: Option<AbsVal>,
    },
    Field {
        sname: String,
        fname: String,
        op: FieldOp,
        obj: AbsVal,
        val: AbsVal,
    },
    Site {
        vals: Vec<AbsVal>,
    },
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Arg(usize),
    Ret,
    Obj,
    FieldVal,
}

fn slot_val(ev: &EventBody, s: Slot) -> AbsVal {
    match (ev, s) {
        (EventBody::Fn { args, .. }, Slot::Arg(i)) => args[i],
        (EventBody::Fn { ret, .. }, Slot::Ret) => ret.expect("ret slot on entry event"),
        (EventBody::Field { obj, .. }, Slot::Obj) => *obj,
        (EventBody::Field { val, .. }, Slot::FieldVal) => *val,
        _ => unreachable!("slot/event mismatch"),
    }
}

fn fmt_vals(vals: &[AbsVal]) -> String {
    vals.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_event(ev: &EventBody) -> String {
    match ev {
        EventBody::Fn {
            name,
            dir: Direction::Entry,
            args,
            ..
        } => {
            format!("call {name}({})", fmt_vals(args))
        }
        EventBody::Fn {
            name,
            dir: Direction::Exit,
            args,
            ret,
        } => {
            let r = ret.map(|r| r.to_string()).unwrap_or_default();
            format!("{name}({}) returned {r}", fmt_vals(args))
        }
        EventBody::Field {
            sname,
            fname,
            op,
            obj,
            val,
        } => {
            if sname.is_empty() {
                format!("{obj}.{fname} {op} {val}")
            } else {
                format!("{sname}({obj}).{fname} {op} {val}")
            }
        }
        EventBody::Site { vals } => format!("assertion site ({})", fmt_vals(vals)),
    }
}

/// A config with its in-flight event and extracted bindings, so that
/// equality substitutions rewrite all three consistently.
#[derive(Debug, Clone)]
struct World {
    cfg: Config,
    ev: EventBody,
    binds: Vec<(usize, AbsVal)>,
}

#[derive(Debug)]
enum Outcome {
    Safe,
    Violation {
        trace: Vec<TraceStep>,
        definite: bool,
    },
}

// ---------------------------------------------------------------------
// Substitution with fact propagation
// ---------------------------------------------------------------------

fn rewrite(v: &mut AbsVal, r: u32, to: AbsVal) {
    if *v == AbsVal::Ref(r) {
        *v = to;
    }
}

/// Apply `queue` of `Ref → value` substitutions to every value the
/// world holds, propagating comparison facts. Returns `false` when a
/// contradiction proves the world infeasible.
fn run_substs(
    cfg: &mut Config,
    ev: Option<&mut EventBody>,
    binds: Option<&mut Vec<(usize, AbsVal)>>,
    clones: Option<&mut Vec<AbsInstance>>,
    mut queue: Vec<(u32, AbsVal)>,
) -> bool {
    let mut ev = ev;
    let mut binds = binds;
    let mut clones = clones;
    while let Some((r, to)) = queue.pop() {
        if to == AbsVal::Ref(r) {
            continue;
        }
        for fr in &mut cfg.frames {
            for v in &mut fr.regs {
                rewrite(v, r, to);
            }
            if let Some((_, args)) = &mut fr.post_event {
                for v in args {
                    rewrite(v, r, to);
                }
            }
        }
        for inst in &mut cfg.instances {
            for b in inst.bindings.iter_mut().flatten() {
                rewrite(b, r, to);
            }
        }
        if let Some(ev) = ev.as_deref_mut() {
            match ev {
                EventBody::Fn { args, ret, .. } => {
                    for v in args {
                        rewrite(v, r, to);
                    }
                    if let Some(v) = ret {
                        rewrite(v, r, to);
                    }
                }
                EventBody::Field { obj, val, .. } => {
                    rewrite(obj, r, to);
                    rewrite(val, r, to);
                }
                EventBody::Site { vals } => {
                    for v in vals {
                        rewrite(v, r, to);
                    }
                }
            }
        }
        if let Some(binds) = binds.as_deref_mut() {
            for (_, v) in binds.iter_mut() {
                rewrite(v, r, to);
            }
        }
        if let Some(clones) = clones.as_deref_mut() {
            for c in clones.iter_mut() {
                for b in c.bindings.iter_mut().flatten() {
                    rewrite(b, r, to);
                }
            }
        }
        // Rewrite facts about r.
        let olds: Vec<(u32, i64)> = std::mem::take(&mut cfg.neq_const);
        for (fr, fc) in olds {
            if fr == r {
                match to {
                    AbsVal::Const(c) => {
                        if c == fc {
                            return false; // r ≠ fc but r = fc
                        } // else discharged
                    }
                    AbsVal::Ref(s) => {
                        if !cfg.neq_const.contains(&(s, fc)) {
                            cfg.neq_const.push((s, fc));
                        }
                    }
                }
            } else if !cfg.neq_const.contains(&(fr, fc)) {
                cfg.neq_const.push((fr, fc));
            }
        }
        let old_nr: Vec<(u32, u32)> = std::mem::take(&mut cfg.neq_ref);
        for (a, b) in old_nr {
            if a == r || b == r {
                let other = if a == r { b } else { a };
                match to {
                    AbsVal::Const(c) => {
                        if !cfg.neq_const.contains(&(other, c)) {
                            cfg.neq_const.push((other, c));
                        }
                    }
                    AbsVal::Ref(s) => {
                        if s == other {
                            return false; // unified two known-distinct refs
                        }
                        let p = (s.min(other), s.max(other));
                        if !cfg.neq_ref.contains(&p) {
                            cfg.neq_ref.push(p);
                        }
                    }
                }
            } else if !cfg.neq_ref.contains(&(a, b)) {
                cfg.neq_ref.push((a, b));
            }
        }
        if let AbsVal::Ref(s) = to {
            if let Some(i) = cfg.obj_refs.iter().position(|&o| o == r) {
                if cfg.obj_refs.contains(&s) {
                    cfg.obj_refs.remove(i);
                } else {
                    cfg.obj_refs[i] = s;
                }
            }
        } else {
            cfg.obj_refs.retain(|&o| o != r);
        }
        // Comparison facts: rewrite operands; a substituted *result*
        // ref propagates its truth value.
        let mut propagated: Option<(CmpOp, AbsVal, AbsVal)> = None;
        let old_cf = std::mem::take(&mut cfg.cmp_facts);
        for (k, (op, mut x, mut y)) in old_cf {
            rewrite(&mut x, r, to);
            rewrite(&mut y, r, to);
            if k == r {
                match to {
                    AbsVal::Const(_) => propagated = Some((op, x, y)),
                    AbsVal::Ref(s) => {
                        cfg.cmp_facts.entry(s).or_insert((op, x, y));
                    }
                }
            } else {
                cfg.cmp_facts.insert(k, (op, x, y));
            }
        }
        if let (Some((op, x, y)), AbsVal::Const(c)) = (propagated, to) {
            if !propagate_cmp(cfg, op, x, y, c != 0, &mut queue) {
                return false;
            }
        }
    }
    true
}

/// Learn from "`x op y` is `truth`". Pushes substitutions for
/// equalities, adds disequalities, detects contradictions.
fn propagate_cmp(
    cfg: &mut Config,
    op: CmpOp,
    x: AbsVal,
    y: AbsVal,
    truth: bool,
    queue: &mut Vec<(u32, AbsVal)>,
) -> bool {
    if let (AbsVal::Const(a), AbsVal::Const(b)) = (x, y) {
        return eval_cmp(op, a, b) == truth;
    }
    let eq_known = matches!((op, truth), (CmpOp::Eq, true) | (CmpOp::Ne, false));
    let ne_known = matches!(
        (op, truth),
        (CmpOp::Eq, false)
            | (CmpOp::Ne, true)
            | (CmpOp::Lt, true)
            | (CmpOp::Gt, true)
            | (CmpOp::Le, false)
            | (CmpOp::Ge, false)
    );
    if eq_known {
        if cfg.definitely_neq(x, y) {
            return false;
        }
        match (x, y) {
            (AbsVal::Ref(r), other) | (other, AbsVal::Ref(r)) => queue.push((r, other)),
            _ => {}
        }
    } else if ne_known && !assert_neq(cfg, x, y) {
        return false;
    }
    true
}

/// Record `a ≠ b`; returns `false` when they are provably equal.
fn assert_neq(cfg: &mut Config, a: AbsVal, b: AbsVal) -> bool {
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => x != y,
        (AbsVal::Ref(r), AbsVal::Const(c)) | (AbsVal::Const(c), AbsVal::Ref(r)) => {
            if !cfg.neq_const.contains(&(r, c)) {
                cfg.neq_const.push((r, c));
            }
            true
        }
        (AbsVal::Ref(x), AbsVal::Ref(y)) => {
            if x == y {
                return false;
            }
            let p = (x.min(y), x.max(y));
            if !cfg.neq_ref.contains(&p) {
                cfg.neq_ref.push(p);
            }
            true
        }
    }
}

fn eval_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Mirror of the interpreter's `eval_bin`; `None` = division by zero
/// (the interpreter traps).
fn eval_bin(op: Op, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Op::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Shl => a.wrapping_shl(b as u32),
        Op::Shr => a.wrapping_shr(b as u32),
    })
}

// ---------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------

struct Checker<'a> {
    module: &'a Module,
    auto: &'a Automaton,
    class_idx: u32,
    plan: &'a BTreeMap<String, InstrSide>,
    class_of: &'a [u32],
    cg: &'a CallGraph,
    steps: usize,
    configs_spent: usize,
    worklist: Vec<Config>,
    outcomes: Vec<Outcome>,
    bail: Option<String>,
}

impl Checker<'_> {
    fn set_bail(&mut self, why: &str) {
        if self.bail.is_none() {
            self.bail = Some(why.to_string());
        }
    }

    fn check(&mut self) -> CheckVerdict {
        let auto = self.auto;
        if auto.strict {
            return CheckVerdict::Unknown {
                reason: "strict automaton: elision could unmask residual strict violations".into(),
            };
        }
        if auto.bound.start_dir != Direction::Entry
            || auto.bound.end_dir != Direction::Exit
            || auto.bound.start_fn != auto.bound.end_fn
        {
            return CheckVerdict::Unknown {
                reason: format!(
                    "unsupported temporal bound shape ({} entry … {} exit expected)",
                    auto.bound.start_fn, auto.bound.end_fn
                ),
            };
        }
        let start_fn = auto.bound.start_fn.clone();
        let side = match self.plan.get(&start_fn) {
            Some(s) => *s,
            None => {
                return CheckVerdict::Unknown {
                    reason: format!("bound function `{start_fn}` missing from plan"),
                }
            }
        };
        let root = match self.module.function(&start_fn) {
            Some(g) => g,
            None => {
                return if side == InstrSide::Callee {
                    // Dormant: the bound function is never defined, its
                    // entry hook never fires, the group is never
                    // entered — no event can ever reach this class.
                    CheckVerdict::ProvedSafe { elide: true }
                } else {
                    CheckVerdict::Unknown {
                        reason: format!(
                            "bound function `{start_fn}` is external with caller-side hooks"
                        ),
                    }
                };
            }
        };
        let f = &self.module.functions[root.0 as usize];
        let n_params = f.n_params as usize;
        let mut regs = vec![AbsVal::Const(0); f.n_regs as usize];
        for (i, r) in regs.iter_mut().enumerate().take(n_params) {
            *r = AbsVal::Ref(i as u32);
        }
        let params: Vec<AbsVal> = regs[..n_params].to_vec();
        let cfg = Config {
            frames: vec![Frame {
                func: root.0 as usize,
                block: 0,
                ip: 0,
                regs,
                exit_hook: side == InstrSide::Callee,
                post_event: (side == InstrSide::Caller).then(|| (start_fn.clone(), params.clone())),
                ret_dst: None,
            }],
            instances: vec![AbsInstance {
                states: auto.initial_states(),
                bindings: vec![None; auto.var_names.len()],
            }],
            next_ref: n_params as u32,
            neq_const: Vec::new(),
            neq_ref: Vec::new(),
            cmp_facts: HashMap::new(),
            above_root: BTreeMap::new(),
            obj_refs: Vec::new(),
            materialized: false,
            trace: vec![TraceStep {
                sym: auto.init_sym,
                desc: format!("«init»: enter {start_fn}({})", fmt_vals(&params)),
            }],
        };
        // The bound entry event itself runs through the translators.
        let ev = EventBody::Fn {
            name: start_fn.clone(),
            dir: Direction::Entry,
            args: params,
            ret: None,
        };
        let start = self.deliver(cfg, ev, None, &start_fn);
        self.worklist.extend(start);
        while let Some(c) = self.worklist.pop() {
            if self.bail.is_some() {
                break;
            }
            self.configs_spent += 1;
            if self.configs_spent > MAX_CONFIGS {
                self.set_bail("configuration budget exceeded");
                break;
            }
            self.exec(c);
        }
        if let Some(reason) = self.bail.take() {
            return CheckVerdict::Unknown { reason };
        }
        let total = self.outcomes.len();
        let n_safe = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Safe))
            .count();
        let viols: Vec<&Outcome> = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Violation { .. }))
            .collect();
        if viols.is_empty() {
            CheckVerdict::ProvedSafe {
                elide: residual_safe(auto),
            }
        } else if n_safe == 0
            && viols
                .iter()
                .all(|o| matches!(o, Outcome::Violation { definite: true, .. }))
        {
            let trace = viols
                .iter()
                .filter_map(|o| match o {
                    Outcome::Violation { trace, .. } => Some(trace),
                    Outcome::Safe => None,
                })
                .min_by_key(|t| t.len())
                .cloned()
                .unwrap_or_default();
            CheckVerdict::DefiniteViolation { trace }
        } else {
            CheckVerdict::Unknown {
                reason: format!(
                    "violation possible on {}/{total} explored paths",
                    viols.len()
                ),
            }
        }
    }

    // -- main abstract execution loop ---------------------------------

    fn exec(&mut self, mut cfg: Config) {
        loop {
            if self.bail.is_some() {
                return;
            }
            if self.steps == 0 {
                self.set_bail("step budget exceeded");
                return;
            }
            self.steps -= 1;
            let (func_idx, block, ip) = {
                let fr = cfg.frames.last().expect("no frame");
                (fr.func, fr.block as usize, fr.ip)
            };
            let f = &self.module.functions[func_idx];
            if ip < f.blocks[block].insts.len() {
                let inst = f.blocks[block].insts[ip].clone();
                cfg.frames.last_mut().expect("frame").ip += 1;
                match self.exec_inst(cfg, inst, func_idx) {
                    Some(next) => cfg = next,
                    None => return,
                }
            } else {
                let term = f.blocks[block].term.clone();
                match self.exec_term(cfg, term) {
                    Some(next) => cfg = next,
                    None => return,
                }
            }
        }
    }

    /// Execute one instruction; `None` when this path ended (terminal,
    /// violation, bail) and the caller should pull the next config.
    fn exec_inst(&mut self, mut cfg: Config, inst: Inst, func_idx: usize) -> Option<Config> {
        let reg =
            |cfg: &Config, r: tesla_ir::Reg| cfg.frames.last().expect("frame").regs[r.0 as usize];
        let set = |cfg: &mut Config, r: tesla_ir::Reg, v: AbsVal| {
            cfg.frames.last_mut().expect("frame").regs[r.0 as usize] = v;
        };
        match inst {
            Inst::Const { dst, value } => {
                set(&mut cfg, dst, AbsVal::Const(value));
                Some(cfg)
            }
            Inst::Copy { dst, src } => {
                let v = reg(&cfg, src);
                set(&mut cfg, dst, v);
                Some(cfg)
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let (a, b) = (reg(&cfg, lhs), reg(&cfg, rhs));
                let v = match (a.as_const(), b.as_const()) {
                    (Some(x), Some(y)) => match eval_bin(op, x, y) {
                        Some(v) => AbsVal::Const(v),
                        None => {
                            // Division by zero: the interpreter traps,
                            // the program ends before any more events.
                            self.outcomes.push(Outcome::Safe);
                            return None;
                        }
                    },
                    (_, Some(0)) if matches!(op, Op::Div | Op::Rem) => {
                        self.outcomes.push(Outcome::Safe);
                        return None;
                    }
                    _ => AbsVal::Ref(cfg.fresh_ref()),
                };
                set(&mut cfg, dst, v);
                Some(cfg)
            }
            Inst::Cmp { dst, op, lhs, rhs } => {
                let (a, b) = (reg(&cfg, lhs), reg(&cfg, rhs));
                let v = if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                    AbsVal::Const(i64::from(eval_cmp(op, x, y)))
                } else if a == b {
                    AbsVal::Const(i64::from(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge)))
                } else if cfg.definitely_neq(a, b) && matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    AbsVal::Const(i64::from(op == CmpOp::Ne))
                } else {
                    let r = cfg.fresh_ref();
                    cfg.cmp_facts.insert(r, (op, a, b));
                    AbsVal::Ref(r)
                };
                set(&mut cfg, dst, v);
                Some(cfg)
            }
            Inst::FnAddr { dst, func } => {
                // Handles are 1-based, mirroring the interpreter.
                set(&mut cfg, dst, AbsVal::Const(i64::from(func.0) + 1));
                Some(cfg)
            }
            Inst::New { dst, .. } => {
                // Heap handles are 1-based and unique per allocation.
                let r = cfg.fresh_ref();
                cfg.neq_const.push((r, 0));
                for &o in cfg.obj_refs.clone().iter() {
                    assert_neq(&mut cfg, AbsVal::Ref(r), AbsVal::Ref(o));
                }
                cfg.obj_refs.push(r);
                set(&mut cfg, dst, AbsVal::Ref(r));
                Some(cfg)
            }
            Inst::Load { dst, .. } => {
                let r = cfg.fresh_ref();
                set(&mut cfg, dst, AbsVal::Ref(r));
                Some(cfg)
            }
            Inst::Store {
                obj,
                field,
                op,
                value,
            } => {
                let sname = self.module.structs[field.strct.0 as usize].name.clone();
                let fname = self.module.structs[field.strct.0 as usize].fields
                    [field.field as usize]
                    .clone();
                let ov = reg(&cfg, obj);
                let vv = reg(&cfg, value);
                let infn = self.module.functions[func_idx].name.clone();
                let ev = EventBody::Field {
                    sname,
                    fname,
                    op,
                    obj: ov,
                    val: vv,
                };
                let outs = self.deliver(cfg, ev, None, &infn);
                self.continue_with(outs)
            }
            Inst::TeslaPseudoAssert { assertion, args } => {
                if self.class_of.get(assertion as usize).copied() != Some(self.class_idx) {
                    return Some(cfg); // another class's site
                }
                let vals: Vec<AbsVal> = args.iter().map(|r| reg(&cfg, *r)).collect();
                let infn = self.module.functions[func_idx].name.clone();
                let outs = self.deliver(cfg, EventBody::Site { vals }, None, &infn);
                self.continue_with(outs)
            }
            Inst::Call { dst, callee, args } => self.exec_call(cfg, dst, callee, args),
            Inst::TeslaHookEntry { .. }
            | Inst::TeslaHookExit { .. }
            | Inst::TeslaHookCallPre { .. }
            | Inst::TeslaHookCallPost { .. }
            | Inst::TeslaHookField { .. }
            | Inst::TeslaSite { .. } => {
                self.set_bail("module is already instrumented; model-check pristine IR");
                None
            }
        }
    }

    fn exec_call(
        &mut self,
        mut cfg: Config,
        dst: Option<tesla_ir::Reg>,
        callee: Callee,
        args: Vec<tesla_ir::Reg>,
    ) -> Option<Config> {
        let (name, target): (String, Option<FuncId>) = match callee {
            Callee::Direct(g) => (self.module.functions[g.0 as usize].name.clone(), Some(g)),
            Callee::External(n) => (n, None),
            Callee::Indirect(_) => {
                self.set_bail("indirect call: targets not statically resolvable");
                return None;
            }
        };
        let side = self.plan.get(&name).copied();
        let argvals: Vec<AbsVal> = {
            let fr = cfg.frames.last().expect("frame");
            args.iter().map(|r| fr.regs[r.0 as usize]).collect()
        };
        match target {
            Some(g) => {
                if cfg.frames.len() >= MAX_FRAMES {
                    self.set_bail("call depth budget exceeded");
                    return None;
                }
                let f = &self.module.functions[g.0 as usize];
                let mut regs = vec![AbsVal::Const(0); f.n_regs as usize];
                let n = argvals.len().min(regs.len());
                regs[..n].copy_from_slice(&argvals[..n]);
                cfg.frames.push(Frame {
                    func: g.0 as usize,
                    block: 0,
                    ip: 0,
                    regs,
                    exit_hook: side == Some(InstrSide::Callee),
                    post_event: (side == Some(InstrSide::Caller))
                        .then(|| (name.clone(), argvals.clone())),
                    ret_dst: dst.map(|d| d.0),
                });
                if side.is_some() {
                    // The entry hook (either side) fires with the
                    // callee already on the shadow stack.
                    let ev = EventBody::Fn {
                        name: name.clone(),
                        dir: Direction::Entry,
                        args: argvals,
                        ret: None,
                    };
                    let outs = self.deliver(cfg, ev, None, &name);
                    self.continue_with(outs)
                } else {
                    Some(cfg)
                }
            }
            None => {
                // Undefined external: an opaque result, no body. The
                // shadow stack holds `name` only during the pre hook.
                let rv = AbsVal::Ref(cfg.fresh_ref());
                let mut configs = vec![cfg];
                if side == Some(InstrSide::Caller) {
                    let mut pre_out = Vec::new();
                    for c in configs {
                        let ev = EventBody::Fn {
                            name: name.clone(),
                            dir: Direction::Entry,
                            args: call_arg_vals(&c, &args),
                            ret: None,
                        };
                        pre_out.extend(self.deliver(c, ev, Some(&name), &name));
                    }
                    configs = pre_out;
                }
                for c in &mut configs {
                    if let Some(d) = dst {
                        c.frames.last_mut().expect("frame").regs[d.0 as usize] = rv;
                    }
                }
                if side == Some(InstrSide::Caller) {
                    let mut post_out = Vec::new();
                    for c in configs {
                        let ev = EventBody::Fn {
                            name: name.clone(),
                            dir: Direction::Exit,
                            args: call_arg_vals(&c, &args),
                            ret: Some(match dst {
                                Some(d) => c.frames.last().expect("frame").regs[d.0 as usize],
                                None => AbsVal::Const(0),
                            }),
                        };
                        post_out.extend(self.deliver(c, ev, None, &name));
                    }
                    configs = post_out;
                }
                self.continue_with(configs)
            }
        }
    }

    fn exec_term(&mut self, mut cfg: Config, term: Terminator) -> Option<Config> {
        match term {
            Terminator::Jump(b) => {
                let fr = cfg.frames.last_mut().expect("frame");
                fr.block = b.0;
                fr.ip = 0;
                Some(cfg)
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = cfg.frames.last().expect("frame").regs[cond.0 as usize];
                let goto = |cfg: &mut Config, b: u32| {
                    let fr = cfg.frames.last_mut().expect("frame");
                    fr.block = b;
                    fr.ip = 0;
                };
                match v {
                    AbsVal::Const(0) => {
                        goto(&mut cfg, else_bb.0);
                        Some(cfg)
                    }
                    AbsVal::Const(_) => {
                        goto(&mut cfg, then_bb.0);
                        Some(cfg)
                    }
                    AbsVal::Ref(r) => {
                        let mut outs = Vec::new();
                        // Then-world: the value is non-zero. If it is
                        // a comparison result, substitution propagates
                        // the comparison's truth into equalities.
                        let mut w_then = cfg.clone();
                        let feas_then = if w_then.cmp_facts.contains_key(&r) {
                            run_substs(&mut w_then, None, None, None, vec![(r, AbsVal::Const(1))])
                        } else {
                            assert_neq(&mut w_then, AbsVal::Ref(r), AbsVal::Const(0))
                        };
                        if feas_then {
                            goto(&mut w_then, then_bb.0);
                            outs.push(w_then);
                        }
                        let mut w_else = cfg;
                        if run_substs(&mut w_else, None, None, None, vec![(r, AbsVal::Const(0))]) {
                            goto(&mut w_else, else_bb.0);
                            outs.push(w_else);
                        }
                        self.continue_with(outs)
                    }
                }
            }
            Terminator::Unreachable => {
                // The interpreter traps: path ends before more events.
                self.outcomes.push(Outcome::Safe);
                None
            }
            Terminator::Ret(r) => {
                let frame = cfg.frames.pop().expect("frame");
                let ret_val = match r {
                    Some(r) => frame.regs[r.0 as usize],
                    None => AbsVal::Const(0),
                };
                let fname = self.module.functions[frame.func].name.clone();
                let n_params = self.module.functions[frame.func].n_params as usize;
                if let (Some(caller), Some(d)) = (cfg.frames.last_mut(), frame.ret_dst) {
                    caller.regs[d as usize] = ret_val;
                }
                let mut configs = vec![cfg];
                if frame.exit_hook {
                    // Callee-side exit hook: current parameter values.
                    let ev = EventBody::Fn {
                        name: fname.clone(),
                        dir: Direction::Exit,
                        args: frame.regs[..n_params].to_vec(),
                        ret: Some(ret_val),
                    };
                    configs = self.deliver_all(configs, &ev, &fname);
                }
                if let Some((pname, saved)) = frame.post_event {
                    // Caller-side post hook: the call-site argument
                    // registers (values as at the call).
                    let ev = EventBody::Fn {
                        name: pname.clone(),
                        dir: Direction::Exit,
                        args: saved,
                        ret: Some(ret_val),
                    };
                    configs = self.deliver_all(configs, &ev, &pname);
                }
                let root_returned = configs.first().is_some_and(|c| c.frames.is_empty());
                if root_returned {
                    for c in configs {
                        self.finalise(c);
                    }
                    None
                } else {
                    self.continue_with(configs)
                }
            }
        }
    }

    /// Take one config to continue executing inline; queue the rest.
    fn continue_with(&mut self, mut configs: Vec<Config>) -> Option<Config> {
        let next = configs.pop();
        self.worklist.extend(configs);
        next
    }

    fn deliver_all(&mut self, configs: Vec<Config>, ev: &EventBody, infn: &str) -> Vec<Config> {
        let mut out = Vec::new();
        for c in configs {
            out.extend(self.deliver(c, ev.clone(), None, infn));
        }
        out
    }

    // -- event delivery -----------------------------------------------

    /// Run an abstract event through this class's translators, in
    /// automaton symbol order, forking on every uncertain static
    /// check, binding comparison, or guard. Violating worlds are
    /// recorded as outcomes; surviving worlds are returned.
    fn deliver(
        &mut self,
        cfg: Config,
        ev: EventBody,
        extra_stack: Option<&str>,
        infn: &str,
    ) -> Vec<Config> {
        let candidates: Vec<SymbolId> = match &ev {
            EventBody::Fn { name, dir, .. } => self
                .auto
                .symbols
                .iter()
                .filter(|s| match &s.kind {
                    SymbolKind::Function {
                        name: n, direction, ..
                    } => n == name && direction == dir,
                    _ => false,
                })
                .map(|s| s.id)
                .collect(),
            EventBody::Field {
                sname, fname, op, ..
            } => self
                .auto
                .symbols
                .iter()
                .filter(|s| match &s.kind {
                    SymbolKind::FieldAssign {
                        struct_name,
                        field_name,
                        op: sop,
                        ..
                    } => {
                        field_name == fname
                            && (struct_name.is_empty() || struct_name == sname)
                            && sop == op
                    }
                    _ => false,
                })
                .map(|s| s.id)
                .collect(),
            EventBody::Site { .. } => vec![self.auto.site_sym],
        };
        if candidates.is_empty() {
            return vec![cfg];
        }
        let is_site = matches!(ev, EventBody::Site { .. });
        let mut worlds = vec![World {
            cfg,
            ev,
            binds: Vec::new(),
        }];
        for sym in candidates {
            let mut next = Vec::new();
            for w in worlds {
                for (mut w2, matched) in self.match_symbol(w, sym) {
                    if matched {
                        let desc = format!(
                            "{} ⇐ {} [in {}]",
                            self.auto.symbols[sym.0 as usize].kind,
                            render_event(&w2.ev),
                            infn
                        );
                        w2.cfg.trace.push(TraceStep { sym, desc });
                        next.extend(self.apply_sym(w2, sym, is_site, extra_stack));
                    } else {
                        w2.binds.clear();
                        next.push(w2);
                    }
                }
            }
            worlds = next;
            if worlds.len() > MAX_WORLDS {
                self.set_bail("event fork budget exceeded");
                return Vec::new();
            }
        }
        worlds.into_iter().map(|w| w.cfg).collect()
    }

    /// Static pattern matching with forking; on match, `binds` holds
    /// the extracted `(var, value)` pairs.
    fn match_symbol(&mut self, w: World, sym: SymbolId) -> Vec<(World, bool)> {
        let kind = self.auto.symbols[sym.0 as usize].kind.clone();
        let slots: Vec<(ArgPattern, Slot)> = match &kind {
            SymbolKind::Function {
                args,
                ret,
                direction,
                ..
            } => {
                let ev_args = match &w.ev {
                    EventBody::Fn { args, .. } => args.len(),
                    _ => return vec![(w, false)],
                };
                if args.len() > ev_args {
                    return vec![(w, false)]; // event carries too few args
                }
                let mut s: Vec<(ArgPattern, Slot)> = args
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, p)| (p, Slot::Arg(i)))
                    .collect();
                if *direction == Direction::Exit {
                    if let Some(rp) = ret {
                        s.push((rp.clone(), Slot::Ret));
                    }
                }
                s
            }
            SymbolKind::FieldAssign { object, value, .. } => {
                vec![(object.clone(), Slot::Obj), (value.clone(), Slot::FieldVal)]
            }
            SymbolKind::Site => {
                // Site symbols always match and bind every value.
                let mut w = w;
                if let EventBody::Site { vals } = &w.ev {
                    w.binds = vals.iter().enumerate().map(|(i, v)| (i, *v)).collect();
                }
                return vec![(w, true)];
            }
            _ => return vec![(w, false)],
        };
        let mut tasks: Vec<(World, usize)> = vec![(w, 0)];
        let mut out = Vec::new();
        while let Some((mut w, i)) = tasks.pop() {
            if i == slots.len() {
                w.binds = slots
                    .iter()
                    .filter_map(|(p, s)| p.var_index().map(|vi| (vi, slot_val(&w.ev, *s))))
                    .collect();
                out.push((w, true));
                continue;
            }
            let (p, s) = &slots[i];
            let v = slot_val(&w.ev, *s);
            match p {
                ArgPattern::Any { .. } | ArgPattern::Var { .. } | ArgPattern::OutParam { .. } => {
                    tasks.push((w, i + 1));
                }
                ArgPattern::Const(cv) => {
                    let c = cv.as_i64();
                    match v {
                        AbsVal::Const(x) => {
                            if x == c {
                                tasks.push((w, i + 1));
                            } else {
                                out.push((w, false));
                            }
                        }
                        AbsVal::Ref(r) => {
                            if w.cfg.neq_const.contains(&(r, c)) {
                                out.push((w, false));
                            } else {
                                let mut weq = w.clone();
                                let World { cfg, ev, binds } = &mut weq;
                                if run_substs(
                                    cfg,
                                    Some(ev),
                                    Some(binds),
                                    None,
                                    vec![(r, AbsVal::Const(c))],
                                ) {
                                    tasks.push((weq, i + 1));
                                }
                                let mut wne = w;
                                if assert_neq(&mut wne.cfg, AbsVal::Ref(r), AbsVal::Const(c)) {
                                    out.push((wne, false));
                                }
                            }
                        }
                    }
                }
                ArgPattern::Flags(req) => match v {
                    AbsVal::Const(x) => {
                        if (x as u64) & req == *req {
                            tasks.push((w, i + 1));
                        } else {
                            out.push((w, false));
                        }
                    }
                    AbsVal::Ref(_) => {
                        // No bit-level facts in the domain: fork both
                        // ways without learning anything.
                        tasks.push((w.clone(), i + 1));
                        out.push((w, false));
                    }
                },
                ArgPattern::Bitmask(mask) => match v {
                    AbsVal::Const(x) => {
                        if (x as u64) & !mask == 0 {
                            tasks.push((w, i + 1));
                        } else {
                            out.push((w, false));
                        }
                    }
                    AbsVal::Ref(_) => {
                        tasks.push((w.clone(), i + 1));
                        out.push((w, false));
                    }
                },
            }
        }
        out
    }

    /// Resolve an `incallstack` guard in a given world:
    /// `Some(bool)` when determined, `None` when the config must fork
    /// on an above-the-root assumption.
    fn resolve_guard(&self, cfg: &Config, f: &str, extra_stack: Option<&str>) -> Option<bool> {
        if extra_stack == Some(f) {
            return Some(true);
        }
        if cfg
            .frames
            .iter()
            .any(|fr| self.module.functions[fr.func].name == f)
        {
            return Some(true);
        }
        if self.module.function(f).is_some() && self.cg.can_reach(f, &self.auto.bound.start_fn) {
            return cfg.above_root.get(f).copied();
        }
        Some(false)
    }

    /// Apply one matched symbol to all instances, mirroring the
    /// runtime store's `apply_event`.
    fn apply_sym(
        &mut self,
        mut w: World,
        sym: SymbolId,
        is_site: bool,
        extra_stack: Option<&str>,
    ) -> Vec<World> {
        w.cfg.materialized = true; // lazy materialisation on first match
                                   // Resolve every guard this symbol's transitions mention.
        let mut guard_names: Vec<String> = self
            .auto
            .transitions_on(sym)
            .filter_map(|t| t.guard.as_ref().map(|Guard::InCallStack(f)| f.clone()))
            .collect();
        guard_names.sort();
        guard_names.dedup();
        let mut resolved: Vec<(World, BTreeMap<String, bool>)> = vec![(w, BTreeMap::new())];
        for name in &guard_names {
            let mut next = Vec::new();
            for (mut w, mut map) in resolved {
                match self.resolve_guard(&w.cfg, name, extra_stack) {
                    Some(b) => {
                        map.insert(name.clone(), b);
                        next.push((w, map));
                    }
                    None => {
                        let mut w2 = w.clone();
                        let mut m2 = map.clone();
                        w2.cfg.above_root.insert(name.clone(), true);
                        m2.insert(name.clone(), true);
                        next.push((w2, m2));
                        w.cfg.above_root.insert(name.clone(), false);
                        map.insert(name.clone(), false);
                        next.push((w, map));
                    }
                }
            }
            resolved = next;
        }
        let mut out = Vec::new();
        for (w, gmap) in resolved {
            self.apply_to_instances(w, sym, is_site, &gmap, &mut out);
        }
        out
    }

    fn apply_to_instances(
        &mut self,
        w: World,
        sym: SymbolId,
        is_site: bool,
        guards: &BTreeMap<String, bool>,
        out: &mut Vec<World>,
    ) {
        struct Task {
            w: World,
            clones: Vec<AbsInstance>,
            idx: usize,
            matched: bool,
        }
        let n = w.cfg.instances.len();
        let mut tasks = vec![Task {
            w,
            clones: Vec::new(),
            idx: 0,
            matched: false,
        }];
        'tasks: while let Some(mut t) = tasks.pop() {
            while t.idx < n {
                let inst = t.w.cfg.instances[t.idx].clone();
                // Binding compatibility, forking on uncertainty.
                let mut uncertain: Option<(AbsVal, AbsVal)> = None;
                let mut incompatible = false;
                let mut specialise: Vec<(usize, AbsVal)> = Vec::new();
                for (var, val) in &t.w.binds {
                    match inst.bindings.get(*var).copied().flatten() {
                        None => specialise.push((*var, *val)),
                        Some(b) if b == *val => {}
                        Some(b) => {
                            if t.w.cfg.definitely_neq(b, *val)
                                || (b.as_const().is_some() && val.as_const().is_some())
                            {
                                incompatible = true;
                                break;
                            }
                            uncertain = Some((b, *val));
                            break;
                        }
                    }
                }
                if let Some((b, val)) = uncertain {
                    // Equal-world: unify and retry this instance.
                    let mut weq = Task {
                        w: t.w.clone(),
                        clones: t.clones.clone(),
                        idx: t.idx,
                        matched: t.matched,
                    };
                    let queue = match (b, val) {
                        (AbsVal::Ref(r), other) | (other, AbsVal::Ref(r)) => vec![(r, other)],
                        _ => unreachable!("uncertain pair must contain a ref"),
                    };
                    {
                        let World { cfg, ev, binds } = &mut weq.w;
                        if run_substs(cfg, Some(ev), Some(binds), Some(&mut weq.clones), queue) {
                            tasks.push(weq);
                        }
                    }
                    // Distinct-world: record the disequality, retry.
                    if assert_neq(&mut t.w.cfg, b, val) {
                        tasks.push(t);
                    }
                    continue 'tasks;
                }
                if incompatible {
                    t.idx += 1;
                    continue;
                }
                let next = self.auto.step(&inst.states, sym, |Guard::InCallStack(f)| {
                    guards.get(f).copied().unwrap_or(false)
                });
                if next.is_empty() {
                    // No transition: non-strict automata ignore the
                    // event for this instance (strict ones bailed).
                    t.idx += 1;
                    continue;
                }
                if specialise.is_empty() {
                    t.w.cfg.instances[t.idx].states = next;
                } else {
                    let mut clone = inst.clone();
                    for (var, val) in specialise {
                        clone.bindings[var] = Some(val);
                    }
                    clone.states = next;
                    t.clones.push(clone);
                }
                t.matched = true;
                t.idx += 1;
            }
            // Append clones, merging exact-duplicate bindings the way
            // the store dedups (union of state sets).
            for clone in t.clones {
                if let Some(ex) =
                    t.w.cfg
                        .instances
                        .iter_mut()
                        .find(|i| i.bindings == clone.bindings)
                {
                    ex.states.union_with(&clone.states);
                } else {
                    t.w.cfg.instances.push(clone);
                }
            }
            if t.w.cfg.instances.len() > MAX_INSTANCES {
                self.set_bail("instance budget exceeded (runtime capacity nearby)");
                return;
            }
            if !t.matched && is_site {
                // Site events must advance some instance (§2.3).
                let mut trace = t.w.cfg.trace.clone();
                if let Some(last) = trace.last_mut() {
                    last.desc.push_str(" — no instance can accept");
                }
                self.outcomes.push(Outcome::Violation {
                    trace,
                    definite: true,
                });
                continue; // fail-stop: path ends here
            }
            out.push(t.w);
        }
    }

    /// The bound's root frame returned: run «cleanup» finalisation.
    fn finalise(&mut self, cfg: Config) {
        if !cfg.materialized {
            // Lazy mode: never materialised, never finalised.
            self.outcomes.push(Outcome::Safe);
            return;
        }
        let failing: Vec<usize> = (0..cfg.instances.len())
            .filter(|&i| !self.auto.finalise_ok(&cfg.instances[i].states))
            .collect();
        if failing.is_empty() {
            self.outcomes.push(Outcome::Safe);
            return;
        }
        // A cleanup violation is *definite* only if no failing
        // instance could be the runtime-merged twin of a passing one
        // (the store dedups clones with equal bindings).
        let passing: Vec<usize> = (0..cfg.instances.len())
            .filter(|&i| self.auto.finalise_ok(&cfg.instances[i].states))
            .collect();
        let definite = failing.iter().all(|&f| {
            passing.iter().all(|&p| {
                let (a, b) = (&cfg.instances[f], &cfg.instances[p]);
                let mask_differs = a
                    .bindings
                    .iter()
                    .zip(&b.bindings)
                    .any(|(x, y)| x.is_some() != y.is_some());
                mask_differs
                    || a.bindings
                        .iter()
                        .zip(&b.bindings)
                        .any(|(x, y)| match (x, y) {
                            (Some(x), Some(y)) => cfg.definitely_neq(*x, *y),
                            _ => false,
                        })
            })
        });
        let mut trace = cfg.trace.clone();
        let inst = &cfg.instances[failing[0]];
        let bound: Vec<String> = inst
            .bindings
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                b.map(|v| {
                    format!(
                        "{}={v}",
                        self.auto.var_names.get(i).cloned().unwrap_or_default()
                    )
                })
            })
            .collect();
        trace.push(TraceStep {
            sym: self.auto.cleanup_sym,
            desc: format!(
                "«cleanup»: {} returned with unmet obligation ({})",
                self.auto.bound.start_fn,
                if bound.is_empty() {
                    "no bindings".to_string()
                } else {
                    bound.join(", ")
                }
            ),
        });
        self.outcomes.push(Outcome::Violation { trace, definite });
    }
}

fn call_arg_vals(cfg: &Config, args: &[tesla_ir::Reg]) -> Vec<AbsVal> {
    let fr = cfg.frames.last().expect("frame");
    args.iter().map(|r| fr.regs[r.0 as usize]).collect()
}

fn _assert_value_roundtrip(v: Value) -> i64 {
    v.as_i64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_automata::Manifest;
    use tesla_ir::Module;

    fn build(srcs: &[(&str, &str)]) -> (Module, Manifest) {
        let mut modules = Vec::new();
        let mut manifests = Vec::new();
        for (src, file) in srcs {
            let out = tesla_cc::compile_unit(src, file).unwrap();
            modules.push(out.module);
            manifests.push(out.manifest);
        }
        let linked = Module::link(modules, "prog").unwrap();
        (linked, Manifest::merge(&manifests))
    }

    fn verdict_of(srcs: &[(&str, &str)]) -> CheckVerdict {
        let (m, manifest) = build(srcs);
        let reports = model_check(&m, &manifest).unwrap();
        assert_eq!(reports.len(), 1, "expected a single assertion");
        reports[0].verdict.clone()
    }

    const PATCHED_SSL: &str = "int EVP_VerifyFinal(int ctx, int sig, int len, int key) {\n\
             if (len < 4) { return -1; }\n\
             if (sig == key) { return 1; }\n\
             return 0;\n\
         }\n\
         int page_in(int rc) { return rc; }\n\
         int ssl_main(int sig, int key) {\n\
             int ctx = 77;\n\
             int rc = EVP_VerifyFinal(ctx, sig, 8, key);\n\
             if (rc != 1) { return -1; }\n\
             int page = page_in(rc);\n\
             TESLA_WITHIN(ssl_main, previously(\n\
                 EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));\n\
             return page;\n\
         }";

    const BUGGY_SSL: &str = "int EVP_VerifyFinal(int ctx, int sig, int len, int key) {\n\
             if (len < 4) { return -1; }\n\
             if (sig == key) { return 1; }\n\
             return 0;\n\
         }\n\
         int ssl_main(int sig, int key) {\n\
             int ctx = 77;\n\
             int page = 7;\n\
             TESLA_WITHIN(ssl_main, previously(\n\
                 EVP_VerifyFinal(ANY(ptr), ANY(int), ANY(int), ANY(int)) == 1));\n\
             return page;\n\
         }";

    #[test]
    fn patched_openssl_flow_is_proved_safe_and_elidable() {
        let v = verdict_of(&[(PATCHED_SSL, "ssl.c")]);
        assert_eq!(v, CheckVerdict::ProvedSafe { elide: true }, "got {v:?}");
    }

    #[test]
    fn never_verified_flow_is_definite_violation_with_trace() {
        let v = verdict_of(&[(BUGGY_SSL, "ssl.c")]);
        match v {
            CheckVerdict::DefiniteViolation { trace } => {
                assert!(trace.iter().any(|s| s.desc.contains("«init»")), "{trace:?}");
                assert!(
                    trace
                        .iter()
                        .any(|s| s.desc.contains("no instance can accept")),
                    "{trace:?}"
                );
            }
            other => panic!("expected DefiniteViolation, got {other:?}"),
        }
    }

    #[test]
    fn conditionally_verified_flow_is_unknown() {
        let src = "int check(int x) { return 1; }\n\
             int cond_main(int x) {\n\
                 if (x) { check(x); }\n\
                 TESLA_WITHIN(cond_main, previously(check(ANY(int)) == 1));\n\
                 return 0;\n\
             }";
        match verdict_of(&[(src, "cond.c")]) {
            CheckVerdict::Unknown { reason } => {
                assert!(reason.contains("possible"), "{reason}");
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn kernel_mac_check_flow_is_proved_safe() {
        let src = "struct socket { int so_state; };\n\
             int mac_socket_check_poll(int cred, struct socket *so) { return 0; }\n\
             int sopoll_generic(int cred, struct socket *so) {\n\
                 TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(int), so) == 0);\n\
                 return 1;\n\
             }\n\
             int amd64_syscall(int cred, struct socket *so) {\n\
                 mac_socket_check_poll(cred, so);\n\
                 return sopoll_generic(cred, so);\n\
             }";
        let v = verdict_of(&[(src, "kern.c")]);
        assert!(matches!(v, CheckVerdict::ProvedSafe { .. }), "got {v:?}");
    }

    #[test]
    fn dormant_bound_function_is_elidable() {
        let src = "int ghost_entry(int x);\n\
             int real_main(int x) {\n\
                 TESLA_WITHIN(ghost_entry, previously(real_main(ANY(int)) == 0));\n\
                 return 0;\n\
             }";
        let v = verdict_of(&[(src, "ghost.c")]);
        assert_eq!(v, CheckVerdict::ProvedSafe { elide: true }, "got {v:?}");
    }

    #[test]
    fn cross_unit_linking_preserves_verdicts() {
        let unit_a = "int validate(int t) { if (t == 0) { return 0; } return 1; }\n\
             int handle(int t) {\n\
                 int ok = validate(t);\n\
                 if (ok != 1) { return -1; }\n\
                 TESLA_WITHIN(handle, previously(validate(ANY(int)) == 1));\n\
                 return 0;\n\
             }";
        let unit_b = "int handle(int t);\n\
             int driver(int t) { return handle(t); }";
        let v = verdict_of(&[(unit_a, "a.c"), (unit_b, "b.c")]);
        assert!(matches!(v, CheckVerdict::ProvedSafe { .. }), "got {v:?}");
    }

    #[test]
    fn residual_safe_rejects_nothing_on_simple_previously() {
        let (m, manifest) = build(&[(PATCHED_SSL, "ssl.c")]);
        let autos = manifest.compile_all().unwrap();
        assert!(residual_safe(&autos[0]));
        let _ = m;
    }

    #[test]
    fn reports_cover_every_manifest_entry() {
        let (m, manifest) = build(&[(PATCHED_SSL, "ssl.c")]);
        let reports = model_check(&m, &manifest).unwrap();
        assert_eq!(reports.len(), manifest.entries.len());
        assert_eq!(reports[0].class, 0);
        assert!(!reports[0].name.is_empty());
    }
}
