//! Specification-level lints over assertion automata (`tesla lint`).
//!
//! Where [`crate::static_check`] and [`crate::model_check`] analyse
//! the *program* against the specification, this pass analyses the
//! specification *itself*: each assertion's compiled automaton is
//! examined with the automaton algebra of [`tesla_automata::analysis`]
//! (complement, product, bound-relative emptiness, Hopcroft
//! minimisation, language inclusion) for defects that no program run
//! could ever surface:
//!
//! * **vacuity** (`TESLA-L001`) — the complement of the assertion's
//!   pass language is empty within the bound: the assertion can never
//!   fail, so it checks nothing;
//! * **contradiction** (`TESLA-L002`) — no event sequence within the
//!   bound reaches an accepting state: the assertion can never pass;
//! * **subsumption** (`TESLA-L003`) — another assertion over the same
//!   bound and context accepts a strictly smaller language: the
//!   weaker one is implied by the stronger and is dead weight;
//! * **dead/mergeable states** (`TESLA-L004`) — the determinised
//!   automaton has unreachable states or states indistinguishable
//!   under minimisation: the spec has redundant structure (often a
//!   duplicated `||`/`^` branch);
//! * **bound never closes** (`TESLA-L005`) — the bound's start and
//!   end are the same static event, so no instance lifetime can ever
//!   complete;
//! * **incompatible matchers** (`TESLA-L006`) — two assertions
//!   observe the same callee with provably disjoint argument
//!   patterns, usually a typo'd constant or flag.
//!
//! Verdict semantics (the word model, bound-relative feasibility, and
//! why subsumption projects onto the shared alphabet) are spelled out
//! in [`tesla_automata::analysis`] and DESIGN.md §12. Assertions with
//! `incallstack` guards are excluded from the language-level lints
//! (L001–L004): a guard's truth is a run-time property of the call
//! stack, so emptiness over the symbol alphabet alone would be
//! unsound.

use std::collections::{BTreeMap, BTreeSet};
use tesla_automata::{analysis, Automaton, Dfa, Direction, LanguageRelation, Manifest, SymbolKind};
use tesla_spec::{ArgPattern, SourceLoc};

/// One specification-level defect.
#[derive(Debug, Clone, PartialEq)]
pub enum LintFinding {
    /// `TESLA-L001`: the assertion can never fail within its bound.
    Vacuous {
        /// The vacuous assertion.
        assertion: String,
        /// Its source location.
        loc: SourceLoc,
    },
    /// `TESLA-L002`: the assertion can never pass within its bound.
    Contradiction {
        /// The contradictory assertion.
        assertion: String,
        /// Its source location.
        loc: SourceLoc,
    },
    /// `TESLA-L003`: the assertion is implied by a strictly stronger
    /// one over the same bound and context.
    Subsumed {
        /// The weaker (redundant) assertion.
        assertion: String,
        /// Its source location.
        loc: SourceLoc,
        /// The strictly stronger assertion that implies it.
        by: String,
    },
    /// `TESLA-L004`: the determinised automaton has redundant
    /// structure — mergeable and/or unreachable states.
    DeadStates {
        /// The assertion with redundant structure.
        assertion: String,
        /// Its source location.
        loc: SourceLoc,
        /// Groups of DFA states (in [`Dfa::from_automaton`] order)
        /// that are pairwise indistinguishable.
        groups: Vec<Vec<u32>>,
        /// NFA states unreachable from the start state.
        unreachable: Vec<u32>,
    },
    /// `TESLA-L005`: the bound's start and end are the same event.
    BoundNeverCloses {
        /// The assertion with the degenerate bound.
        assertion: String,
        /// Its source location.
        loc: SourceLoc,
        /// The bound function.
        function: String,
    },
    /// `TESLA-L006`: two assertions match the same callee with
    /// provably disjoint argument patterns.
    IncompatibleMatchers {
        /// The function both assertions observe.
        function: String,
        /// First assertion (carries the diagnostic's location).
        first: String,
        /// Second assertion.
        second: String,
        /// Zero-based argument position where the patterns are
        /// disjoint.
        position: usize,
        /// Rendered pattern from the first assertion.
        first_pattern: String,
        /// Rendered pattern from the second assertion.
        second_pattern: String,
        /// Source location of the first assertion.
        loc: SourceLoc,
    },
}

impl LintFinding {
    /// The stable diagnostic code for this finding.
    pub fn code(&self) -> &'static str {
        match self {
            LintFinding::Vacuous { .. } => "TESLA-L001",
            LintFinding::Contradiction { .. } => "TESLA-L002",
            LintFinding::Subsumed { .. } => "TESLA-L003",
            LintFinding::DeadStates { .. } => "TESLA-L004",
            LintFinding::BoundNeverCloses { .. } => "TESLA-L005",
            LintFinding::IncompatibleMatchers { .. } => "TESLA-L006",
        }
    }

    /// The assertion the finding is attached to.
    pub fn assertion(&self) -> &str {
        match self {
            LintFinding::Vacuous { assertion, .. }
            | LintFinding::Contradiction { assertion, .. }
            | LintFinding::Subsumed { assertion, .. }
            | LintFinding::DeadStates { assertion, .. }
            | LintFinding::BoundNeverCloses { assertion, .. } => assertion,
            LintFinding::IncompatibleMatchers { first, .. } => first,
        }
    }

    /// The source location the finding is attached to.
    pub fn loc(&self) -> &SourceLoc {
        match self {
            LintFinding::Vacuous { loc, .. }
            | LintFinding::Contradiction { loc, .. }
            | LintFinding::Subsumed { loc, .. }
            | LintFinding::DeadStates { loc, .. }
            | LintFinding::BoundNeverCloses { loc, .. }
            | LintFinding::IncompatibleMatchers { loc, .. } => loc,
        }
    }
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintFinding::Vacuous { .. } => write!(
                f,
                "assertion can never fail: every event sequence within \
                 the bound satisfies it (vacuous specification)"
            ),
            LintFinding::Contradiction { .. } => write!(
                f,
                "assertion can never pass: no event sequence within the \
                 bound reaches an accepting state"
            ),
            LintFinding::Subsumed { by, .. } => write!(
                f,
                "assertion is redundant: the strictly stronger assertion \
                 `{by}` over the same bound implies it"
            ),
            LintFinding::DeadStates {
                groups,
                unreachable,
                ..
            } => {
                write!(f, "automaton has redundant structure:")?;
                if !groups.is_empty() {
                    let rendered: Vec<String> = groups
                        .iter()
                        .map(|g| {
                            let states: Vec<String> = g.iter().map(|s| format!("s{s}")).collect();
                            format!("{{{}}}", states.join(", "))
                        })
                        .collect();
                    write!(f, " mergeable state groups {}", rendered.join(", "))?;
                }
                if !unreachable.is_empty() {
                    let states: Vec<String> = unreachable.iter().map(|s| format!("n{s}")).collect();
                    write!(f, " unreachable states {{{}}}", states.join(", "))?;
                }
                Ok(())
            }
            LintFinding::BoundNeverCloses { function, .. } => write!(
                f,
                "bound can never close: start and end are the same event \
                 on `{function}`, so no instance lifetime can complete"
            ),
            LintFinding::IncompatibleMatchers {
                function,
                second,
                position,
                first_pattern,
                second_pattern,
                ..
            } => write!(
                f,
                "function `{function}` is matched with provably disjoint \
                 argument patterns here and in `{second}` \
                 (argument {position}: {first_pattern} vs {second_pattern})"
            ),
        }
    }
}

/// Lint every assertion in the merged manifest.
///
/// Compiles the manifest and runs [`lint_compiled`]; use the latter
/// when automata are already available (the build pipeline compiles
/// once and shares).
///
/// # Errors
///
/// Returns a description of the first assertion that fails to
/// compile.
pub fn lint_manifest(manifest: &Manifest) -> Result<Vec<LintFinding>, String> {
    let automata = manifest
        .compile_all()
        .map_err(|(name, e)| format!("{name}: {e}"))?;
    Ok(lint_compiled(manifest, &automata))
}

/// Lint pre-compiled automata. `automata` must be positionally
/// aligned with `manifest.entries` (the [`Manifest::compile_all`]
/// order).
pub fn lint_compiled(manifest: &Manifest, automata: &[Automaton]) -> Vec<LintFinding> {
    let n = automata.len();
    let mut findings = Vec::new();
    // Assertions already diagnosed as broken (L001/L002/L005) are
    // excluded from the pairwise subsumption check: comparing against
    // an empty or universal language is noise, not signal.
    let mut broken = vec![false; n];

    for (i, a) in automata.iter().enumerate() {
        let loc = manifest.entries[i].assertion.loc.clone();
        let name = a.name.clone();
        if a.bound.start_fn == a.bound.end_fn && a.bound.start_dir == a.bound.end_dir {
            findings.push(LintFinding::BoundNeverCloses {
                assertion: name,
                loc,
                function: a.bound.start_fn.clone(),
            });
            broken[i] = true;
            continue;
        }
        if analysis::has_guards(a) {
            // Guard truth is a run-time call-stack property; the
            // language-level lints would be unsound.
            continue;
        }
        let alphabet = analysis::body_alphabet(a);
        let closure = analysis::Closure::build(a, &alphabet);
        if closure.contradictory() {
            findings.push(LintFinding::Contradiction {
                assertion: name,
                loc,
            });
            broken[i] = true;
            continue;
        }
        if closure.vacuous() {
            findings.push(LintFinding::Vacuous {
                assertion: name,
                loc,
            });
            broken[i] = true;
            continue;
        }
        let dfa = Dfa::from_automaton(a);
        let groups = analysis::merge_groups(&dfa);
        let unreachable = analysis::unreachable_states(a, &dfa);
        if !groups.is_empty() || !unreachable.is_empty() {
            findings.push(LintFinding::DeadStates {
                assertion: name,
                loc,
                groups,
                unreachable,
            });
        }
    }

    // Pairwise subsumption over assertions sharing a bound and
    // context. `compare_languages` itself refuses pairs without a
    // shared concrete alphabet or with guards; equal languages are
    // deliberately not flagged (N identical assertions in N units is
    // the kernel corpus's normal shape).
    let mut subsumed = vec![false; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if broken[i] || broken[j] {
                continue;
            }
            if automata[i].bound != automata[j].bound || automata[i].context != automata[j].context
            {
                continue;
            }
            let (weaker, stronger) = match analysis::compare_languages(&automata[i], &automata[j]) {
                Some(LanguageRelation::FirstWeaker) => (i, j),
                Some(LanguageRelation::SecondWeaker) => (j, i),
                _ => continue,
            };
            if subsumed[weaker] {
                continue;
            }
            subsumed[weaker] = true;
            findings.push(LintFinding::Subsumed {
                assertion: automata[weaker].name.clone(),
                loc: manifest.entries[weaker].assertion.loc.clone(),
                by: automata[stronger].name.clone(),
            });
        }
    }

    // Incompatible argument matchers: group every Function symbol by
    // (callee, direction) across assertions and compare argument
    // patterns positionwise. Arity differences are fine (patterns may
    // be shorter than the callee's arity); only provably disjoint
    // patterns at the same position are flagged, once per assertion
    // pair per function.
    let mut by_callee: BTreeMap<(String, Direction), Vec<(usize, Vec<ArgPattern>)>> =
        BTreeMap::new();
    for (i, a) in automata.iter().enumerate() {
        for s in &a.symbols {
            if let SymbolKind::Function {
                name,
                args,
                direction,
                ..
            } = &s.kind
            {
                by_callee
                    .entry((name.clone(), *direction))
                    .or_default()
                    .push((i, args.clone()));
            }
        }
    }
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for ((func, _dir), uses) in &by_callee {
        for (ai, (i, args_i)) in uses.iter().enumerate() {
            for (j, args_j) in uses.iter().skip(ai + 1) {
                if i == j {
                    // `a(1) || a(2)` inside one assertion is a normal
                    // disjunction, not a conflict.
                    continue;
                }
                let Some(position) = args_i
                    .iter()
                    .zip(args_j.iter())
                    .position(|(p, q)| p.disjoint_with(q))
                else {
                    continue;
                };
                let (first, second) = (&automata[*i].name, &automata[*j].name);
                let key = (
                    func.clone(),
                    first.clone().min(second.clone()),
                    first.clone().max(second.clone()),
                );
                if !reported.insert(key) {
                    continue;
                }
                findings.push(LintFinding::IncompatibleMatchers {
                    function: func.clone(),
                    first: first.clone(),
                    second: second.clone(),
                    position,
                    first_pattern: args_i[position].to_string(),
                    second_pattern: args_j[position].to_string(),
                    loc: manifest.entries[*i].assertion.loc.clone(),
                });
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_spec::{call, Assertion, AssertionBuilder, ExprBuilder, StaticEvent};

    fn manifest_of(assertions: Vec<Assertion>) -> Manifest {
        let mut m = Manifest::new();
        for a in assertions {
            m.push("lint.c", a);
        }
        m
    }

    fn chain(name: &str, bound: &str, callee: &str) -> Assertion {
        AssertionBuilder::within(bound)
            .named(name)
            .at("lint.c", 1)
            .previously(call(callee).any("int").returns(0))
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_chain_is_clean() {
        let m = manifest_of(vec![chain("ok", "f", "check")]);
        assert_eq!(lint_manifest(&m).unwrap(), Vec::new());
    }

    #[test]
    fn vacuous_optional_is_l001() {
        let a = AssertionBuilder::within("f")
            .named("vac")
            .at("lint.c", 2)
            .previously(ExprBuilder::from(call("log").any("int").returns(0)).optional())
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code(), "TESLA-L001");
        assert_eq!(fs[0].assertion(), "vac");
    }

    #[test]
    fn bound_aliased_body_is_l002() {
        // The body event is the bound function's own exit: within one
        // activation (no recursion) it can never be observed before
        // the site.
        let a = AssertionBuilder::within("f")
            .named("contra")
            .at("lint.c", 3)
            .previously(call("f").any("int").returns(0))
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code(), "TESLA-L002");
    }

    #[test]
    fn weaker_disjunct_is_l003_and_oriented() {
        let strong = chain("strong", "f", "verify");
        let weak = AssertionBuilder::within("f")
            .named("weak")
            .at("lint.c", 4)
            .previously(
                ExprBuilder::from(call("verify").any("int").returns(0))
                    .or(call("audit").any("int").returns(0)),
            )
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![strong, weak])).unwrap();
        assert_eq!(fs.len(), 1);
        match &fs[0] {
            LintFinding::Subsumed { assertion, by, .. } => {
                assert_eq!(assertion, "weak");
                assert_eq!(by, "strong");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identical_assertions_are_not_subsumed() {
        // N copies of one assertion across N units is the kernel
        // corpus's normal shape; equal languages must stay clean.
        let fs = lint_manifest(&manifest_of(vec![
            chain("a1", "f", "verify"),
            chain("a2", "f", "verify"),
        ]))
        .unwrap();
        assert_eq!(fs, Vec::new());
    }

    #[test]
    fn different_bounds_are_never_compared() {
        let strong = chain("strong", "f", "verify");
        let weak = AssertionBuilder::within("g")
            .named("weak")
            .at("lint.c", 5)
            .previously(
                ExprBuilder::from(call("verify").any("int").returns(0))
                    .or(call("audit").any("int").returns(0)),
            )
            .build()
            .unwrap();
        assert_eq!(
            lint_manifest(&manifest_of(vec![strong, weak])).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn xor_duplicate_branches_are_l004_with_groups() {
        let a = AssertionBuilder::within("f")
            .named("xor")
            .at("lint.c", 6)
            .previously(
                ExprBuilder::from(call("push").any("int").returns(1))
                    .xor(call("pop").any("int").returns(1)),
            )
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert_eq!(fs.len(), 1);
        match &fs[0] {
            LintFinding::DeadStates {
                groups,
                unreachable,
                ..
            } => {
                assert!(!groups.is_empty());
                assert!(groups.iter().all(|g| g.len() >= 2));
                assert_eq!(unreachable, &Vec::<u32>::new());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_bound_is_l005() {
        let a =
            AssertionBuilder::bounded(StaticEvent::Call("f".into()), StaticEvent::Call("f".into()))
                .named("never_closes")
                .at("lint.c", 7)
                .previously(call("check").any("int").returns(0))
                .build()
                .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code(), "TESLA-L005");
        // L005 suppresses the language lints for the same assertion.
        assert!(fs.iter().all(|f| f.code() == "TESLA-L005"));
    }

    #[test]
    fn disjoint_constants_across_assertions_are_l006() {
        let a = AssertionBuilder::within("f")
            .named("one")
            .at("lint.c", 8)
            .previously(call("ioctl").arg_const(1u64).returns(0))
            .build()
            .unwrap();
        let b = AssertionBuilder::within("g")
            .named("two")
            .at("lint.c", 9)
            .previously(call("ioctl").arg_const(2u64).returns(0))
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a, b])).unwrap();
        assert_eq!(fs.len(), 1);
        match &fs[0] {
            LintFinding::IncompatibleMatchers {
                function, position, ..
            } => {
                assert_eq!(function, "ioctl");
                assert_eq!(*position, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The same pair is reported once, not once per direction or
        // position.
        assert_eq!(fs.iter().filter(|f| f.code() == "TESLA-L006").count(), 1);
    }

    #[test]
    fn disjunction_within_one_assertion_is_not_l006() {
        let a = AssertionBuilder::within("f")
            .named("either")
            .at("lint.c", 10)
            .previously(
                ExprBuilder::from(call("ioctl").arg_const(1u64).returns(0))
                    .or(call("ioctl").arg_const(2u64).returns(0)),
            )
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert!(fs.iter().all(|f| f.code() != "TESLA-L006"), "{fs:?}");
    }

    #[test]
    fn guarded_assertions_skip_language_lints() {
        // incallstack makes acceptance data-dependent; the optional
        // body would otherwise be L001.
        let a = AssertionBuilder::within("f")
            .named("guarded")
            .at("lint.c", 11)
            .previously(
                ExprBuilder::from(call("log").any("int").returns(0))
                    .optional()
                    .then(ExprBuilder::in_callstack("helper")),
            )
            .build()
            .unwrap();
        let m = manifest_of(vec![a]);
        let automata = m
            .compile_all()
            .map_err(|(n, e)| format!("{n}: {e}"))
            .unwrap();
        assert!(analysis::has_guards(&automata[0]));
        assert_eq!(lint_compiled(&m, &automata), Vec::new());
    }

    #[test]
    fn findings_expose_code_assertion_and_loc() {
        let a = AssertionBuilder::within("f")
            .named("vac")
            .at("lint.c", 12)
            .previously(ExprBuilder::from(call("log").any("int").returns(0)).optional())
            .build()
            .unwrap();
        let fs = lint_manifest(&manifest_of(vec![a])).unwrap();
        assert_eq!(fs[0].loc().file, "lint.c");
        assert_eq!(fs[0].loc().line, 12);
        assert!(fs[0].to_string().contains("never fail"));
    }
}
