//! Mini-C abstract syntax.

/// A mini-C type. Everything is machine-word sized; types exist to
/// resolve `->` field accesses and to sanity-check calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `int` (64-bit here).
    Int,
    /// `void` (function returns only).
    Void,
    /// `struct S *` — all struct access is through pointers.
    Ptr(String),
    /// A function pointer. Parameter/return types are not tracked;
    /// mini-C call sites are checked by arity only.
    FnPtr,
}

impl std::fmt::Display for CType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CType::Int => write!(f, "int"),
            CType::Void => write!(f, "void"),
            CType::Ptr(s) => write!(f, "struct {s} *"),
            CType::FnPtr => write!(f, "int (*)()"),
        }
    }
}

/// Binary operators (C semantics; `&&`/`||` short-circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (including resolved `#define` constants).
    Int(i64),
    /// Variable reference.
    Var(String),
    /// `expr->field`
    Field {
        /// The pointer expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Function call: direct (`f(x)`) or through an expression
    /// (`fp(x)`, `so->ops->poll(x)`, `(*fp)(x)`).
    Call {
        /// The callee expression; a bare [`Expr::Var`] naming a known
        /// function is a direct call, everything else is indirect.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `&f` — address of a named function.
    FnAddr(String),
    /// `malloc(sizeof(struct S))` — allocation of one `S`.
    Malloc(String),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Local variable or parameter.
    Var(String),
    /// `expr->field`
    Field {
        /// The pointer expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declaration with optional initialiser.
    Decl {
        /// Declared type.
        ty: CType,
        /// Name.
        name: String,
        /// Initialiser.
        init: Option<Expr>,
    },
    /// `lv = e;` / `lv += e;` / `lv++;` — the op distinguishes them.
    Assign {
        /// Target.
        lv: LValue,
        /// `=`, `+=`, `-=`, `|=`, `&=` (`++` is `+= 1`).
        op: tesla_spec::FieldOp,
        /// Right-hand side.
        value: Expr,
    },
    /// Expression statement (usually a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// A TESLA assertion, captured verbatim and parsed by the
    /// analyser (§4.1).
    Tesla {
        /// The assertion as parsed by `tesla-spec`.
        assertion: tesla_spec::Assertion,
        /// 1-based source line (for diagnostics).
        line: u32,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Type.
    pub ty: CType,
    /// Name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Return type.
    pub ret: CType,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Vec<Stmt>,
    /// 1-based line of the definition.
    pub line: u32,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDefAst {
    /// Name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<Param>,
}

/// A translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Source file name.
    pub file: String,
    /// Struct definitions.
    pub structs: Vec<StructDefAst>,
    /// Function definitions.
    pub functions: Vec<FunctionDef>,
    /// Declared-but-not-defined functions (`int f(int);` prototypes):
    /// lowered to externals, resolved at link time.
    pub prototypes: Vec<(String, usize)>,
    /// `#define` constants (also fed to assertion parsing).
    pub defines: std::collections::HashMap<String, u64>,
}
