//! Lowering mini-C to TIR.
//!
//! One translation unit lowers to one [`tesla_ir::Module`]. TESLA
//! assertion statements become [`tesla_ir::Inst::TeslaPseudoAssert`]
//! placeholders — the front-end analogue of emitting a call to the
//! unimplemented `__tesla_inline_assertion` (§4.2) — carrying the
//! registers of the scope variables the assertion references. The
//! instrumenter later replaces them with real site events.

use crate::ast::{BinOp, CType, Expr, FunctionDef, LValue, Stmt, UnOp, Unit};
use crate::sema::UnitInfo;
use std::collections::HashMap;
use tesla_ir::{
    Block, BlockId, Callee, CmpOp, FieldRef, FuncId, Function, Inst, Module, Op, Reg, StructId,
    Terminator,
};
use tesla_spec::FieldOp;

/// A lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description.
    pub message: String,
    /// The function being lowered.
    pub function: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Lower a sema-checked unit to a TIR module.
///
/// # Errors
///
/// Returns [`LowerError`] on constructs sema admits but TIR cannot
/// express (e.g. `&external_function`).
pub fn lower_unit(unit: &Unit, info: &UnitInfo) -> Result<Module, LowerError> {
    let mut module = Module {
        name: unit.file.clone(),
        ..Module::default()
    };
    let mut struct_ids = HashMap::new();
    for s in &unit.structs {
        let id = StructId(module.structs.len() as u32);
        module.structs.push(tesla_ir::module::StructDef {
            name: s.name.clone(),
            fields: s.fields.iter().map(|f| f.name.clone()).collect(),
        });
        struct_ids.insert(s.name.clone(), id);
    }
    let mut fn_ids = HashMap::new();
    for (i, f) in unit.functions.iter().enumerate() {
        fn_ids.insert(f.name.clone(), FuncId(i as u32));
    }
    for f in &unit.functions {
        let lowered = FnLower::new(f, unit, info, &struct_ids, &fn_ids, &mut module).lower()?;
        module.functions.push(lowered);
    }
    Ok(module)
}

/// A block under construction.
struct Draft {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

struct FnLower<'a> {
    f: &'a FunctionDef,
    info: &'a UnitInfo,
    struct_ids: &'a HashMap<String, StructId>,
    fn_ids: &'a HashMap<String, FuncId>,
    module: &'a mut Module,
    blocks: Vec<Draft>,
    cur: usize,
    next_reg: u32,
    scopes: Vec<HashMap<String, (Reg, CType)>>,
}

impl<'a> FnLower<'a> {
    fn new(
        f: &'a FunctionDef,
        _unit: &'a Unit,
        info: &'a UnitInfo,
        struct_ids: &'a HashMap<String, StructId>,
        fn_ids: &'a HashMap<String, FuncId>,
        module: &'a mut Module,
    ) -> FnLower<'a> {
        FnLower {
            f,
            info,
            struct_ids,
            fn_ids,
            module,
            blocks: vec![Draft {
                insts: Vec::new(),
                term: None,
            }],
            cur: 0,
            next_reg: f.params.len() as u32,
            scopes: vec![HashMap::new()],
        }
    }

    fn err(&self, message: impl Into<String>) -> LowerError {
        LowerError {
            message: message.into(),
            function: self.f.name.clone(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, i: Inst) {
        self.blocks[self.cur].insts.push(i);
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Draft {
            insts: Vec::new(),
            term: None,
        });
        self.blocks.len() - 1
    }

    fn terminate(&mut self, term: Terminator) {
        if self.blocks[self.cur].term.is_none() {
            self.blocks[self.cur].term = Some(term);
        }
    }

    fn switch_to(&mut self, b: usize) {
        self.cur = b;
    }

    fn lookup(&self, name: &str) -> Option<&(Reg, CType)> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lower(mut self) -> Result<Function, LowerError> {
        for (i, p) in self.f.params.iter().enumerate() {
            self.scopes[0].insert(p.name.clone(), (Reg(i as u32), p.ty.clone()));
        }
        let body = self.f.body.clone();
        self.lower_block(&body)?;
        // Fall-off-the-end returns 0/void.
        self.terminate(Terminator::Ret(None));
        let blocks = self
            .blocks
            .into_iter()
            .map(|d| Block {
                insts: d.insts,
                term: d.term.unwrap_or(Terminator::Ret(None)),
            })
            .collect();
        Ok(Function {
            name: self.f.name.clone(),
            n_params: self.f.params.len() as u32,
            n_regs: self.next_reg,
            blocks,
        })
    }

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Decl { ty, name, init } => {
                let reg = self.fresh();
                if let Some(e) = init {
                    let v = self.lower_expr(e)?;
                    self.emit(Inst::Copy { dst: reg, src: v });
                } else {
                    self.emit(Inst::Const { dst: reg, value: 0 });
                }
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), (reg, ty.clone()));
                Ok(())
            }
            Stmt::Assign { lv, op, value } => {
                let v = self.lower_expr(value)?;
                match lv {
                    LValue::Var(name) => {
                        let (reg, _) = *self
                            .lookup(name)
                            .ok_or_else(|| self.err(format!("undeclared `{name}`")))?;
                        match op {
                            FieldOp::Assign => self.emit(Inst::Copy { dst: reg, src: v }),
                            FieldOp::AddAssign => self.emit(Inst::Bin {
                                dst: reg,
                                op: Op::Add,
                                lhs: reg,
                                rhs: v,
                            }),
                            FieldOp::SubAssign => self.emit(Inst::Bin {
                                dst: reg,
                                op: Op::Sub,
                                lhs: reg,
                                rhs: v,
                            }),
                            FieldOp::OrAssign => self.emit(Inst::Bin {
                                dst: reg,
                                op: Op::Or,
                                lhs: reg,
                                rhs: v,
                            }),
                            FieldOp::AndAssign => self.emit(Inst::Bin {
                                dst: reg,
                                op: Op::And,
                                lhs: reg,
                                rhs: v,
                            }),
                        }
                    }
                    LValue::Field { base, field } => {
                        let obj = self.lower_expr(base)?;
                        let fr = self.field_ref(base, field)?;
                        self.emit(Inst::Store {
                            obj,
                            field: fr,
                            op: *op,
                            value: v,
                        });
                    }
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::Return(v) => {
                let r = match v {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.terminate(Terminator::Ret(r));
                // Anything after a return in the same block is dead;
                // give it a fresh (unreachable) block.
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: BlockId(then_bb as u32),
                    else_bb: BlockId(else_bb as u32),
                });
                self.switch_to(then_bb);
                self.lower_block(then_body)?;
                self.terminate(Terminator::Jump(BlockId(join_bb as u32)));
                self.switch_to(else_bb);
                self.lower_block(else_body)?;
                self.terminate(Terminator::Jump(BlockId(join_bb as u32)));
                self.switch_to(join_bb);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_bb = self.new_block();
                self.terminate(Terminator::Jump(BlockId(cond_bb as u32)));
                self.switch_to(cond_bb);
                let c = self.lower_expr(cond)?;
                let body_bb = self.new_block();
                let after_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: BlockId(body_bb as u32),
                    else_bb: BlockId(after_bb as u32),
                });
                self.switch_to(body_bb);
                self.lower_block(body)?;
                self.terminate(Terminator::Jump(BlockId(cond_bb as u32)));
                self.switch_to(after_bb);
                Ok(())
            }
            Stmt::Tesla { assertion, .. } => {
                let mut args = Vec::with_capacity(assertion.variables.len());
                for v in &assertion.variables {
                    let (reg, _) = *self.lookup(v).ok_or_else(|| {
                        self.err(format!("assertion variable `{v}` not in scope"))
                    })?;
                    args.push(reg);
                }
                let idx = self.module.assertions.len() as u32;
                self.module
                    .assertions
                    .push(tesla_ir::module::ModuleAssertion {
                        assertion: assertion.clone(),
                    });
                self.emit(Inst::TeslaPseudoAssert {
                    assertion: idx,
                    args,
                });
                Ok(())
            }
        }
    }

    /// Resolve `base->field` to a TIR field reference using declared
    /// types.
    fn field_ref(&self, base: &Expr, field: &str) -> Result<FieldRef, LowerError> {
        let ty = self
            .type_of(base)
            .ok_or_else(|| self.err(format!("cannot type `{base:?}`")))?;
        let CType::Ptr(sname) = ty else {
            return Err(self.err(format!("`->{field}` on non-pointer")));
        };
        let sid = *self
            .struct_ids
            .get(&sname)
            .ok_or_else(|| self.err(format!("unknown struct `{sname}`")))?;
        let fields = &self.info.structs[&sname];
        let fi = fields
            .iter()
            .position(|p| p.name == field)
            .ok_or_else(|| self.err(format!("struct `{sname}` has no field `{field}`")))?;
        Ok(FieldRef {
            strct: sid,
            field: fi as u32,
        })
    }

    fn type_of(&self, e: &Expr) -> Option<CType> {
        match e {
            Expr::Int(_) => Some(CType::Int),
            Expr::Var(v) => self.lookup(v).map(|(_, t)| t.clone()),
            Expr::Field { base, field } => match self.type_of(base) {
                Some(CType::Ptr(s)) => self
                    .info
                    .structs
                    .get(&s)
                    .and_then(|fs| fs.iter().find(|p| &p.name == field))
                    .map(|p| p.ty.clone()),
                _ => None,
            },
            Expr::Call { callee, .. } => match &**callee {
                Expr::Var(name) if self.lookup(name).is_none() => {
                    self.info.functions.get(name).map(|(_, r)| r.clone())
                }
                _ => Some(CType::Int),
            },
            Expr::FnAddr(_) => Some(CType::FnPtr),
            Expr::Malloc(s) => Some(CType::Ptr(s.clone())),
            Expr::Bin { .. } | Expr::Un { .. } => Some(CType::Int),
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Reg, LowerError> {
        match e {
            Expr::Int(v) => {
                let dst = self.fresh();
                self.emit(Inst::Const { dst, value: *v });
                Ok(dst)
            }
            Expr::Var(name) => self
                .lookup(name)
                .map(|(r, _)| *r)
                .ok_or_else(|| self.err(format!("undeclared `{name}`"))),
            Expr::Field { base, field } => {
                let obj = self.lower_expr(base)?;
                let fr = self.field_ref(base, field)?;
                let dst = self.fresh();
                self.emit(Inst::Load {
                    dst,
                    obj,
                    field: fr,
                });
                Ok(dst)
            }
            Expr::Call { callee, args } => {
                let argv: Result<Vec<Reg>, LowerError> =
                    args.iter().map(|a| self.lower_expr(a)).collect();
                let argv = argv?;
                let target = match &**callee {
                    Expr::Var(name) if self.lookup(name).is_none() => match self.fn_ids.get(name) {
                        Some(f) => Callee::Direct(*f),
                        None => Callee::External(name.clone()),
                    },
                    other => Callee::Indirect(self.lower_expr(other)?),
                };
                let dst = self.fresh();
                self.emit(Inst::Call {
                    dst: Some(dst),
                    callee: target,
                    args: argv,
                });
                Ok(dst)
            }
            Expr::FnAddr(name) => {
                let f = self.fn_ids.get(name).ok_or_else(|| {
                    self.err(format!(
                        "`&{name}`: taking the address of an external function is not \
                         supported in a single unit"
                    ))
                })?;
                let dst = self.fresh();
                self.emit(Inst::FnAddr { dst, func: *f });
                Ok(dst)
            }
            Expr::Malloc(s) => {
                let sid = *self
                    .struct_ids
                    .get(s)
                    .ok_or_else(|| self.err(format!("unknown struct `{s}`")))?;
                let dst = self.fresh();
                self.emit(Inst::New { dst, strct: sid });
                Ok(dst)
            }
            Expr::Un { op, expr } => {
                let v = self.lower_expr(expr)?;
                let dst = self.fresh();
                match op {
                    UnOp::Neg => {
                        let z = self.fresh();
                        self.emit(Inst::Const { dst: z, value: 0 });
                        self.emit(Inst::Bin {
                            dst,
                            op: Op::Sub,
                            lhs: z,
                            rhs: v,
                        });
                    }
                    UnOp::Not => {
                        let z = self.fresh();
                        self.emit(Inst::Const { dst: z, value: 0 });
                        self.emit(Inst::Cmp {
                            dst,
                            op: CmpOp::Eq,
                            lhs: v,
                            rhs: z,
                        });
                    }
                    UnOp::BitNot => {
                        let m = self.fresh();
                        self.emit(Inst::Const { dst: m, value: -1 });
                        self.emit(Inst::Bin {
                            dst,
                            op: Op::Xor,
                            lhs: v,
                            rhs: m,
                        });
                    }
                }
                Ok(dst)
            }
            Expr::Bin {
                op: BinOp::LogAnd,
                lhs,
                rhs,
            } => self.lower_short_circuit(lhs, rhs, true),
            Expr::Bin {
                op: BinOp::LogOr,
                lhs,
                rhs,
            } => self.lower_short_circuit(lhs, rhs, false),
            Expr::Bin { op, lhs, rhs } => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                let dst = self.fresh();
                let emit_cmp = |op| Inst::Cmp {
                    dst,
                    op,
                    lhs: a,
                    rhs: b,
                };
                let emit_bin = |op| Inst::Bin {
                    dst,
                    op,
                    lhs: a,
                    rhs: b,
                };
                let inst = match op {
                    BinOp::Add => emit_bin(Op::Add),
                    BinOp::Sub => emit_bin(Op::Sub),
                    BinOp::Mul => emit_bin(Op::Mul),
                    BinOp::Div => emit_bin(Op::Div),
                    BinOp::Rem => emit_bin(Op::Rem),
                    BinOp::BitAnd => emit_bin(Op::And),
                    BinOp::BitOr => emit_bin(Op::Or),
                    BinOp::BitXor => emit_bin(Op::Xor),
                    BinOp::Shl => emit_bin(Op::Shl),
                    BinOp::Shr => emit_bin(Op::Shr),
                    BinOp::Eq => emit_cmp(CmpOp::Eq),
                    BinOp::Ne => emit_cmp(CmpOp::Ne),
                    BinOp::Lt => emit_cmp(CmpOp::Lt),
                    BinOp::Le => emit_cmp(CmpOp::Le),
                    BinOp::Gt => emit_cmp(CmpOp::Gt),
                    BinOp::Ge => emit_cmp(CmpOp::Ge),
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                };
                self.emit(inst);
                Ok(dst)
            }
        }
    }

    /// `a && b` / `a || b` with C short-circuit evaluation.
    fn lower_short_circuit(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
    ) -> Result<Reg, LowerError> {
        let dst = self.fresh();
        let a = self.lower_expr(lhs)?;
        // Normalise lhs to 0/1 into dst.
        let z = self.fresh();
        self.emit(Inst::Const { dst: z, value: 0 });
        self.emit(Inst::Cmp {
            dst,
            op: CmpOp::Ne,
            lhs: a,
            rhs: z,
        });
        let rhs_bb = self.new_block();
        let join_bb = self.new_block();
        let (then_bb, else_bb) = if is_and {
            (rhs_bb, join_bb)
        } else {
            (join_bb, rhs_bb)
        };
        self.terminate(Terminator::Branch {
            cond: dst,
            then_bb: BlockId(then_bb as u32),
            else_bb: BlockId(else_bb as u32),
        });
        self.switch_to(rhs_bb);
        let b = self.lower_expr(rhs)?;
        let z2 = self.fresh();
        self.emit(Inst::Const { dst: z2, value: 0 });
        self.emit(Inst::Cmp {
            dst,
            op: CmpOp::Ne,
            lhs: b,
            rhs: z2,
        });
        self.terminate(Terminator::Jump(BlockId(join_bb as u32)));
        self.switch_to(join_bb);
        Ok(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;
    use crate::sema::analyse;
    use tesla_ir::{Interp, NullSink};

    fn compile(src: &str) -> Module {
        let mut u = parse_unit(src, "t.c").unwrap();
        let info = analyse(&mut u).unwrap();
        let m = lower_unit(&u, &info).unwrap();
        tesla_ir::verify::verify(&m, tesla_ir::verify::Stage::Unit)
            .unwrap_or_else(|e| panic!("verify failed: {e:?}"));
        m
    }

    fn run(m: &Module, f: &str, args: &[i64]) -> i64 {
        let mut i = Interp::new(m, 1_000_000);
        i.run_named(f, args, &mut NullSink).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let m = compile(
            "int f(int n) {\n\
                 int acc = 0;\n\
                 while (n > 0) {\n\
                     if (n % 2 == 0) { acc += n; } else { acc -= 1; }\n\
                     n -= 1;\n\
                 }\n\
                 return acc;\n\
             }",
        );
        // n=5: evens 4+2=6, odds 5,3,1 subtract 3 → 3.
        assert_eq!(run(&m, "f", &[5]), 3);
        assert_eq!(run(&m, "f", &[0]), 0);
    }

    #[test]
    fn struct_allocation_and_fields() {
        let m = compile(
            "struct s { int a; int b; };\n\
             int main() {\n\
                 struct s *p = malloc(sizeof(struct s));\n\
                 p->a = 40;\n\
                 p->b = 2;\n\
                 p->a += p->b;\n\
                 return p->a;\n\
             }",
        );
        assert_eq!(run(&m, "main", &[]), 42);
    }

    #[test]
    fn function_pointers_and_chains() {
        let m = compile(
            "struct ops { int (*poll)(int); };\n\
             struct sock { struct ops *o; };\n\
             int pollimpl(int x) { return x * 2; }\n\
             int main() {\n\
                 struct sock *s = malloc(sizeof(struct sock));\n\
                 s->o = malloc(sizeof(struct ops));\n\
                 s->o->poll = &pollimpl;\n\
                 int (*fp)(int) = s->o->poll;\n\
                 return (*fp)(21);\n\
             }",
        );
        assert_eq!(run(&m, "main", &[]), 42);
    }

    #[test]
    fn short_circuit_semantics() {
        // `boom()` traps (division by zero): && must not evaluate it.
        let m = compile(
            "int boom() { return 1 / 0; }\n\
             int f(int a) { return a != 0 && boom(); }\n\
             int g(int a) { return a != 0 || boom(); }",
        );
        assert_eq!(run(&m, "f", &[0]), 0); // short-circuits, no trap
        assert_eq!(run(&m, "g", &[5]), 1); // short-circuits, no trap
        let mut i = Interp::new(&m, 1000);
        assert!(i.run_named("f", &[1], &mut NullSink).is_err()); // boom runs
    }

    #[test]
    fn unary_ops() {
        let m = compile("int f(int a) { return -a + !a + ~a; }");
        // a=3: -3 + 0 + (-4) = -7
        assert_eq!(run(&m, "f", &[3]), -7);
        // a=0: 0 + 1 + (-1) = 0
        assert_eq!(run(&m, "f", &[0]), 0);
    }

    #[test]
    fn early_returns_and_dead_code() {
        let m = compile(
            "int f(int a) {\n\
                 if (a > 10) { return 1; }\n\
                 return 0;\n\
             }",
        );
        assert_eq!(run(&m, "f", &[11]), 1);
        assert_eq!(run(&m, "f", &[3]), 0);
    }

    #[test]
    fn tesla_statements_lower_to_placeholders() {
        let m = compile(
            "int check(int so);\n\
             int f(int so) {\n\
                 TESLA_SYSCALL_PREVIOUSLY(check(so) == 0);\n\
                 return so;\n\
             }",
        );
        assert_eq!(m.assertions.len(), 1);
        let f = &m.functions[m.function("f").unwrap().0 as usize];
        let has_placeholder = f.blocks.iter().flat_map(|b| &b.insts).any(
            |i| matches!(i, Inst::TeslaPseudoAssert { assertion: 0, args } if args.len() == 1),
        );
        assert!(has_placeholder);
    }

    #[test]
    fn external_calls_lower_as_externals() {
        let m = compile("int f() { return helper(3); }");
        let f = &m.functions[0];
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Call { callee: Callee::External(n), .. } if n == "helper"
        )));
    }

    #[test]
    fn compound_field_ops_carry_operator() {
        let m = compile(
            "struct proc { int p_flag; };\n\
             void f(struct proc *p) { p->p_flag |= 0x100; }",
        );
        let f = &m.functions[0];
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Store {
                op: FieldOp::OrAssign,
                ..
            }
        )));
    }
}
