//! Recursive-descent parser for mini-C.
//!
//! TESLA assertions appear as statements whose head identifier starts
//! with `TESLA_`. The parser slices the balanced-parenthesis source
//! text of the whole macro and hands it to `tesla-spec`'s assertion
//! parser with the unit's `#define` table — exactly the analyser
//! workflow of §4.1, where assertion macros are parsed out of the
//! Clang AST with the surrounding compile context available.

use crate::ast::{BinOp, CType, Expr, FunctionDef, LValue, Param, Stmt, StructDefAst, UnOp, Unit};
use crate::lexer::{lex, LexOutput, Spanned, Tok};
use tesla_spec::FieldOp;

/// A parse error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for CParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CParseError {}

struct P<'s> {
    src: &'s str,
    toks: Vec<Spanned>,
    pos: usize,
    defines: std::collections::HashMap<String, u64>,
    file: String,
}

impl<'s> P<'s> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> CParseError {
        CParseError {
            message: message.into(),
            line: self.line(),
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), CParseError> {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // --------------------------------------------------------------
    // Types and declarators
    // --------------------------------------------------------------

    fn at_type(&self) -> bool {
        self.is_ident("int") || self.is_ident("void") || self.is_ident("struct")
    }

    /// Parse a type prefix: `int`, `void`, `struct S *`.
    fn parse_type(&mut self) -> Result<CType, CParseError> {
        if self.is_ident("int") {
            self.bump();
            Ok(CType::Int)
        } else if self.is_ident("void") {
            self.bump();
            Ok(CType::Void)
        } else if self.is_ident("struct") {
            self.bump();
            let name = self.expect_ident()?;
            self.expect_punct("*")?;
            if self.eat_punct("*") {
                return Err(self.err("mini-C supports a single level of struct pointers"));
            }
            Ok(CType::Ptr(name))
        } else {
            Err(self.err(format!("expected a type, found {}", self.peek())))
        }
    }

    /// Parse `<type> name` or `<type> (*name)(params…)` (function
    /// pointer). Returns the resolved type and name.
    fn parse_declarator(&mut self) -> Result<(CType, String), CParseError> {
        let base = self.parse_type()?;
        if *self.peek() == Tok::Punct("(") && *self.peek_at(1) == Tok::Punct("*") {
            self.bump(); // (
            self.bump(); // *
            let name = self.expect_ident()?;
            self.expect_punct(")")?;
            self.expect_punct("(")?;
            // Skip the parameter type list (unchecked in mini-C).
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Tok::Punct("(") => depth += 1,
                    Tok::Punct(")") => depth -= 1,
                    Tok::Eof => return Err(self.err("unterminated function-pointer declarator")),
                    _ => {}
                }
            }
            Ok((CType::FnPtr, name))
        } else {
            let name = self.expect_ident()?;
            Ok((base, name))
        }
    }

    // --------------------------------------------------------------
    // Top level
    // --------------------------------------------------------------

    fn parse_unit(&mut self) -> Result<Unit, CParseError> {
        let mut unit = Unit {
            file: self.file.clone(),
            defines: self.defines.clone(),
            ..Unit::default()
        };
        while *self.peek() != Tok::Eof {
            if self.is_ident("struct") && *self.peek_at(2) == Tok::Punct("{") {
                unit.structs.push(self.parse_struct()?);
            } else {
                self.parse_function_or_proto(&mut unit)?;
            }
        }
        Ok(unit)
    }

    fn parse_struct(&mut self) -> Result<StructDefAst, CParseError> {
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let (ty, fname) = self.parse_declarator()?;
            if ty == CType::Void {
                return Err(self.err("fields cannot be void"));
            }
            fields.push(Param { ty, name: fname });
            self.expect_punct(";")?;
        }
        self.expect_punct(";")?;
        Ok(StructDefAst { name, fields })
    }

    fn parse_function_or_proto(&mut self, unit: &mut Unit) -> Result<(), CParseError> {
        let line = self.line();
        let ret = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.is_ident("void") && *self.peek_at(1) == Tok::Punct(")") {
                self.bump();
                self.bump();
            } else {
                loop {
                    let (ty, pname) = self.parse_declarator()?;
                    params.push(Param { ty, name: pname });
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
        }
        if self.eat_punct(";") {
            unit.prototypes.push((name, params.len()));
            return Ok(());
        }
        self.expect_punct("{")?;
        let body = self.parse_block()?;
        unit.functions.push(FunctionDef {
            ret,
            name,
            params,
            body,
            line,
        });
        Ok(())
    }

    /// Parse statements until the matching `}` (already inside).
    fn parse_block(&mut self) -> Result<Vec<Stmt>, CParseError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block"));
            }
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CParseError> {
        if self.at_type() {
            // Could be a decl `struct S *p = ..` — but `struct` here
            // can only be a decl since struct defs are top-level.
            let (ty, name) = self.parse_declarator()?;
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        if self.is_ident("if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let then_body = self.parse_block()?;
            let else_body = if self.is_ident("else") {
                self.bump();
                if self.is_ident("if") {
                    vec![self.parse_stmt()?]
                } else {
                    self.expect_punct("{")?;
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.is_ident("while") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.is_ident("return") {
            self.bump();
            let v = if *self.peek() == Tok::Punct(";") {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(v));
        }
        if let Tok::Ident(id) = self.peek() {
            if id.starts_with("TESLA_") {
                return self.parse_tesla_stmt();
            }
        }
        // Expression or assignment.
        let e = self.parse_expr()?;
        let op = match self.peek() {
            Tok::Punct("=") => Some(FieldOp::Assign),
            Tok::Punct("+=") => Some(FieldOp::AddAssign),
            Tok::Punct("-=") => Some(FieldOp::SubAssign),
            Tok::Punct("|=") => Some(FieldOp::OrAssign),
            Tok::Punct("&=") => Some(FieldOp::AndAssign),
            Tok::Punct("++") => Some(FieldOp::AddAssign),
            Tok::Punct("--") => Some(FieldOp::SubAssign),
            _ => None,
        };
        match op {
            None => {
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
            Some(op) => {
                let implicit_one = matches!(self.peek(), Tok::Punct("++") | Tok::Punct("--"));
                self.bump();
                let lv = match e {
                    Expr::Var(v) => LValue::Var(v),
                    Expr::Field { base, field } => LValue::Field { base, field },
                    other => {
                        return Err(self.err(format!("`{other:?}` is not assignable")));
                    }
                };
                let value = if implicit_one {
                    Expr::Int(1)
                } else {
                    self.parse_expr()?
                };
                self.expect_punct(";")?;
                Ok(Stmt::Assign { lv, op, value })
            }
        }
    }

    /// Capture a `TESLA_*(...)` macro verbatim and parse it with the
    /// spec parser and the unit's `#define` table.
    fn parse_tesla_stmt(&mut self) -> Result<Stmt, CParseError> {
        let line = self.line();
        let start_off = self.toks[self.pos].offset;
        self.bump(); // the TESLA_* identifier
        self.expect_punct("(")?;
        let mut depth = 1usize;
        let mut end_off = self.toks[self.pos].offset;
        while depth > 0 {
            let off = self.toks[self.pos].offset;
            match self.bump() {
                Tok::Punct("(") => depth += 1,
                Tok::Punct(")") => {
                    depth -= 1;
                    end_off = off + 1;
                }
                Tok::Eof => return Err(self.err("unterminated TESLA assertion")),
                _ => {}
            }
        }
        self.expect_punct(";")?;
        let text = &self.src[start_off..end_off];
        let mut assertion =
            tesla_spec::parse_assertion_with_consts(text, &self.defines).map_err(|e| {
                CParseError {
                    message: format!("in TESLA assertion: {e}"),
                    line,
                }
            })?;
        assertion.loc = tesla_spec::SourceLoc {
            file: self.file.clone(),
            line,
        };
        assertion.name = format!("{}:{line}", self.file);
        Ok(Stmt::Tesla { assertion, line })
    }

    // --------------------------------------------------------------
    // Expressions (C precedence)
    // --------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CParseError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_level: u8) -> Result<Expr, CParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some((op, level)) = self.peek_binop() else {
                break;
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(level + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let p = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            "||" => (BinOp::LogOr, 1),
            "&&" => (BinOp::LogAnd, 2),
            "|" => (BinOp::BitOr, 3),
            "^" => (BinOp::BitXor, 4),
            "&" => (BinOp::BitAnd, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr, CParseError> {
        match self.peek() {
            Tok::Punct("-") => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Tok::Punct("!") => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::Not,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Tok::Punct("~") => {
                self.bump();
                Ok(Expr::Un {
                    op: UnOp::BitNot,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("->") {
                let field = self.expect_ident()?;
                e = Expr::Field {
                    base: Box::new(e),
                    field,
                };
            } else if *self.peek() == Tok::Punct("(") {
                self.bump();
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Punct("(") => {
                self.bump();
                // `(*fp)` — explicit function-pointer dereference is a
                // no-op in C call position.
                if self.eat_punct("*") {
                    let inner = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(inner);
                }
                let inner = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            Tok::Punct("&") => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Expr::FnAddr(name))
            }
            Tok::Ident(id) => {
                if id == "malloc" {
                    self.bump();
                    self.expect_punct("(")?;
                    if !self.is_ident("sizeof") {
                        return Err(self.err("mini-C malloc takes sizeof(struct S)"));
                    }
                    self.bump();
                    self.expect_punct("(")?;
                    if !self.is_ident("struct") {
                        return Err(self.err("sizeof takes struct S"));
                    }
                    self.bump();
                    let s = self.expect_ident()?;
                    self.expect_punct(")")?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Malloc(s));
                }
                if id == "NULL" {
                    self.bump();
                    return Ok(Expr::Int(0));
                }
                self.bump();
                if let Some(v) = self.defines.get(&id) {
                    return Ok(Expr::Int(*v as i64));
                }
                Ok(Expr::Var(id))
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

/// Parse one mini-C translation unit.
///
/// # Errors
///
/// Returns [`CParseError`] on lexical or syntactic failure.
pub fn parse_unit(src: &str, file: &str) -> Result<Unit, CParseError> {
    let LexOutput {
        tokens,
        defines,
        includes: _,
    } = lex(src).map_err(|e| CParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = P {
        src,
        toks: tokens,
        pos: 0,
        defines,
        file: file.to_string(),
    };
    p.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_and_function() {
        let u = parse_unit(
            "struct socket { int so_state; struct protosw *so_proto; };\n\
             int soo_poll(struct socket *so, int events) {\n\
                 int rc = 0;\n\
                 so->so_state = 5;\n\
                 return rc;\n\
             }",
            "uipc.c",
        )
        .unwrap();
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields[1].ty, CType::Ptr("protosw".into()));
        assert_eq!(u.functions.len(), 1);
        let f = &u.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 3);
        match &f.body[1] {
            Stmt::Assign {
                lv: LValue::Field { field, .. },
                op: FieldOp::Assign,
                ..
            } => {
                assert_eq!(field, "so_state");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow_and_calls() {
        let u = parse_unit(
            "int check(int x);\n\
             int f(int a) {\n\
                 int acc = 0;\n\
                 while (a > 0) {\n\
                     if (check(a) == 0) { acc += a; } else if (a == 1) { return -1; } else { acc++; }\n\
                     a -= 1;\n\
                 }\n\
                 return acc;\n\
             }",
            "t.c",
        )
        .unwrap();
        assert_eq!(u.prototypes, vec![("check".to_string(), 1)]);
        let f = &u.functions[0];
        assert!(matches!(f.body[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_function_pointers_and_chains() {
        let u = parse_unit(
            "struct pr_usrreqs { int (*pru_sopoll)(struct socket *); };\n\
             struct protosw { struct pr_usrreqs *pr_usrreqs; };\n\
             struct socket { struct protosw *so_proto; };\n\
             int sopoll(struct socket *so) {\n\
                 int (*fp)(struct socket *) = so->so_proto->pr_usrreqs->pru_sopoll;\n\
                 return (*fp)(so);\n\
             }",
            "sock.c",
        )
        .unwrap();
        let f = &u.functions[0];
        match &f.body[0] {
            Stmt::Decl {
                ty: CType::FnPtr,
                name,
                init: Some(Expr::Field { .. }),
            } => {
                assert_eq!(name, "fp");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &f.body[1] {
            Stmt::Return(Some(Expr::Call { callee, .. })) => {
                assert!(matches!(**callee, Expr::Var(ref v) if v == "fp"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_malloc_and_fnaddr() {
        let u = parse_unit(
            "struct s { int a; };\n\
             int g(int x) { return x; }\n\
             int main() {\n\
                 struct s *p = malloc(sizeof(struct s));\n\
                 int (*fp)(int) = &g;\n\
                 p->a = fp(3);\n\
                 return p->a;\n\
             }",
            "m.c",
        )
        .unwrap();
        let main = &u.functions[1];
        assert!(matches!(
            main.body[0],
            Stmt::Decl { init: Some(Expr::Malloc(ref s)), .. } if s == "s"
        ));
        assert!(matches!(
            main.body[1],
            Stmt::Decl { init: Some(Expr::FnAddr(ref g)), .. } if g == "g"
        ));
    }

    #[test]
    fn captures_tesla_assertions_with_defines() {
        let u = parse_unit(
            "#define IO_NOMACCHECK 0x80\n\
             int ffs_read(struct vop_read_args *ap) {\n\
                 TESLA_SYSCALL_PREVIOUSLY(\n\
                     mac_vnode_check_read(ANY(ptr), vp) == 0\n\
                     || call(vn_rdwr(vp, flags(IO_NOMACCHECK))));\n\
                 return 0;\n\
             }\n\
             struct vop_read_args { int a; };",
            "ufs.c",
        )
        .unwrap();
        let f = &u.functions[0];
        match &f.body[0] {
            Stmt::Tesla { assertion, line } => {
                assert_eq!(*line, 3);
                assert_eq!(assertion.loc.file, "ufs.c");
                assert_eq!(assertion.name, "ufs.c:3");
                assert_eq!(assertion.variables, vec!["vp".to_string()]);
                // The define resolved inside flags(...).
                let printed = assertion.to_string();
                assert!(printed.contains("flags(0x80)"), "{printed}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_is_c_like() {
        let u = parse_unit("int f(int a, int b) { return a + b * 2 == a << 1; }", "p.c").unwrap();
        // ((a + (b*2)) == (a << 1))
        match &u.functions[0].body[0] {
            Stmt::Return(Some(Expr::Bin {
                op: BinOp::Eq,
                lhs,
                rhs,
            })) => {
                assert!(matches!(**lhs, Expr::Bin { op: BinOp::Add, .. }));
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Shl, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_lines() {
        let e = parse_unit("int f() {\n  return +;\n}", "x.c").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_unit("int f() { malloc(3); }", "x.c").is_err());
        assert!(parse_unit("struct s { void v; };", "x.c").is_err());
        assert!(parse_unit("int f() { 3 = x; }", "x.c").is_err());
        assert!(parse_unit("int f() { TESLA_WITHIN(broken; }", "x.c").is_err());
    }

    #[test]
    fn void_parameter_list_is_empty() {
        let u = parse_unit("int f(void) { return 1; }", "v.c").unwrap();
        assert!(u.functions[0].params.is_empty());
    }
}
