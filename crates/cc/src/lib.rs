//! # tesla-cc — the mini-C front-end and TESLA analyser
//!
//! The Clang substitute (see DESIGN.md). One call to [`compile_unit`]
//! performs the analyser workflow of §4.1:
//!
//! 1. lex and parse mini-C, capturing `TESLA_*` assertion macros
//!    verbatim and parsing them with the unit's `#define` table;
//! 2. semantic analysis — which, exactly as in the paper ("since
//!    TESLA uses the Clang front-end for its analysis, it benefits
//!    from the same syntax- and type-checking, scoping rules, etc. as
//!    a normal compilation pass"), validates that assertion variables
//!    are in scope and resolves untyped field events to their struct
//!    types;
//! 3. lowering to TIR with `__tesla_inline_assertion`-style
//!    placeholders at assertion sites;
//! 4. emission of the unit's `.tesla` manifest (automaton
//!    descriptions), ready to be merged across the program and fed to
//!    the instrumenter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;

use tesla_automata::Manifest;
use tesla_ir::Module;

pub use lower::LowerError;
pub use parser::CParseError;
pub use sema::SemaError;

/// A front-end failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical or syntactic.
    Parse(CParseError),
    /// Semantic (possibly several).
    Sema(Vec<SemaError>),
    /// Lowering.
    Lower(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Sema(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The output of compiling one translation unit: the TIR module (with
/// `TeslaPseudoAssert` placeholders) and the unit's `.tesla` manifest.
#[derive(Debug, Clone)]
pub struct UnitOutput {
    /// Lowered TIR.
    pub module: Module,
    /// Extracted assertions (§4.1).
    pub manifest: Manifest,
}

/// Compile mini-C source into TIR plus its `.tesla` manifest.
///
/// # Errors
///
/// Returns [`CompileError`] describing the first failing phase.
pub fn compile_unit(src: &str, file: &str) -> Result<UnitOutput, CompileError> {
    let mut unit = parser::parse_unit(src, file).map_err(CompileError::Parse)?;
    let info = sema::analyse(&mut unit).map_err(CompileError::Sema)?;
    let module = lower::lower_unit(&unit, &info).map_err(CompileError::Lower)?;
    let mut manifest = Manifest::new();
    for a in &module.assertions {
        manifest.push(file, a.assertion.clone());
    }
    Ok(UnitOutput { module, manifest })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_unit_compile() {
        let out = compile_unit(
            "#define P_SUGID 0x100\n\
             struct proc { int p_flag; };\n\
             int setuid(struct proc *p, int uid) {\n\
                 TESLA_SYSCALL(eventually(p.p_flag |= P_SUGID));\n\
                 p->p_flag |= P_SUGID;\n\
                 return 0;\n\
             }",
            "kern_prot.c",
        )
        .unwrap();
        assert_eq!(out.manifest.entries.len(), 1);
        let a = &out.manifest.entries[0].assertion;
        assert_eq!(a.loc.file, "kern_prot.c");
        // The flag constant resolved and the struct type was patched.
        let mut seen = false;
        a.expr.for_each_event(&mut |e| {
            if let tesla_spec::EventExpr::FieldAssignEvent {
                struct_name, value, ..
            } = e
            {
                assert_eq!(struct_name, "proc");
                assert_eq!(
                    value,
                    &tesla_spec::ArgPattern::Const(tesla_spec::Value(0x100))
                );
                seen = true;
            }
        });
        assert!(seen);
        // Manifest compiles to automata.
        let autos = out.manifest.compile_all().unwrap();
        assert_eq!(autos.len(), 1);
    }

    #[test]
    fn errors_propagate_per_phase() {
        assert!(matches!(
            compile_unit("int f( {", "x.c"),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile_unit("int f() { return nope_var; }", "x.c"),
            Err(CompileError::Sema(_))
        ));
    }
}
