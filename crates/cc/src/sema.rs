//! Semantic analysis for mini-C.
//!
//! Beyond the usual checks (declarations, fields, arity), sema does
//! the analyser work the paper gets from Clang (§4.1): because the
//! assertion is parsed *inside* a compile with full type information,
//! untyped field-assignment events (`s.so_qstate = 5`) are resolved
//! to their structure type from the scope variable `s`, and every
//! variable an assertion references is checked to exist in scope at
//! the assertion site.

use crate::ast::{CType, Expr, FunctionDef, LValue, Param, Stmt, Unit};
use std::collections::HashMap;

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description.
    pub message: String,
    /// Function the error is in (empty for unit-level errors).
    pub function: String,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "sema: {}", self.message)
        } else {
            write!(f, "sema: in `{}`: {}", self.function, self.message)
        }
    }
}

impl std::error::Error for SemaError {}

/// Unit-wide tables produced by sema and consumed by lowering.
#[derive(Debug, Clone, Default)]
pub struct UnitInfo {
    /// struct name → ordered fields.
    pub structs: HashMap<String, Vec<Param>>,
    /// function name → (arity, return type). Includes prototypes.
    pub functions: HashMap<String, (usize, CType)>,
}

struct Scope {
    vars: Vec<HashMap<String, CType>>,
}

impl Scope {
    fn new() -> Scope {
        Scope {
            vars: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.vars.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.vars.pop();
    }

    fn declare(&mut self, name: &str, ty: CType) -> bool {
        self.vars
            .last_mut()
            .unwrap()
            .insert(name.to_string(), ty)
            .is_none()
    }

    fn lookup(&self, name: &str) -> Option<&CType> {
        self.vars.iter().rev().find_map(|m| m.get(name))
    }
}

/// Run semantic analysis over `unit`, mutating it to patch assertion
/// field-event struct types, and return the [`UnitInfo`] tables.
///
/// # Errors
///
/// Returns every [`SemaError`] found.
pub fn analyse(unit: &mut Unit) -> Result<UnitInfo, Vec<SemaError>> {
    let mut errs = Vec::new();
    let mut info = UnitInfo::default();
    for s in &unit.structs {
        if info
            .structs
            .insert(s.name.clone(), s.fields.clone())
            .is_some()
        {
            errs.push(SemaError {
                message: format!("struct `{}` defined twice", s.name),
                function: String::new(),
            });
        }
    }
    for (name, arity) in &unit.prototypes {
        info.functions.insert(name.clone(), (*arity, CType::Int));
    }
    for f in &unit.functions {
        if info
            .functions
            .insert(f.name.clone(), (f.params.len(), f.ret.clone()))
            .is_some_and(|_| unit.functions.iter().filter(|g| g.name == f.name).count() > 1)
        {
            errs.push(SemaError {
                message: format!("function `{}` defined twice", f.name),
                function: String::new(),
            });
        }
    }
    // Validate struct field types refer to known structs.
    for s in &unit.structs {
        for p in &s.fields {
            if let CType::Ptr(t) = &p.ty {
                if !info.structs.contains_key(t) {
                    errs.push(SemaError {
                        message: format!(
                            "struct `{}` field `{}` has unknown type `struct {t}`",
                            s.name, p.name
                        ),
                        function: String::new(),
                    });
                }
            }
        }
    }
    for f in &mut unit.functions {
        check_function(f, &info, &mut errs);
    }
    if errs.is_empty() {
        Ok(info)
    } else {
        Err(errs)
    }
}

fn check_function(f: &mut FunctionDef, info: &UnitInfo, errs: &mut Vec<SemaError>) {
    let mut scope = Scope::new();
    for p in &f.params {
        if !scope.declare(&p.name, p.ty.clone()) {
            errs.push(err(f, format!("duplicate parameter `{}`", p.name)));
        }
    }
    let fname = f.name.clone();
    check_block(&mut f.body, &fname, info, &mut scope, errs);
}

fn err(f: &FunctionDef, message: String) -> SemaError {
    SemaError {
        message,
        function: f.name.clone(),
    }
}

fn serr(function: &str, message: String) -> SemaError {
    SemaError {
        message,
        function: function.to_string(),
    }
}

fn check_block(
    body: &mut [Stmt],
    fname: &str,
    info: &UnitInfo,
    scope: &mut Scope,
    errs: &mut Vec<SemaError>,
) {
    for stmt in body {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                if let Some(e) = init {
                    check_expr(e, fname, info, scope, errs);
                }
                if let CType::Ptr(s) = ty {
                    if !info.structs.contains_key(s) {
                        errs.push(serr(fname, format!("unknown struct `{s}`")));
                    }
                }
                if !scope.declare(name, ty.clone()) {
                    errs.push(serr(fname, format!("`{name}` redeclared")));
                }
            }
            Stmt::Assign { lv, value, .. } => {
                check_expr(value, fname, info, scope, errs);
                match lv {
                    LValue::Var(v) => {
                        if scope.lookup(v).is_none() {
                            errs.push(serr(fname, format!("assignment to undeclared `{v}`")));
                        }
                    }
                    LValue::Field { base, field } => {
                        check_field_access(base, field, fname, info, scope, errs);
                    }
                }
            }
            Stmt::Expr(e) => check_expr(e, fname, info, scope, errs),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(cond, fname, info, scope, errs);
                scope.push();
                check_block(then_body, fname, info, scope, errs);
                scope.pop();
                scope.push();
                check_block(else_body, fname, info, scope, errs);
                scope.pop();
            }
            Stmt::While { cond, body } => {
                check_expr(cond, fname, info, scope, errs);
                scope.push();
                check_block(body, fname, info, scope, errs);
                scope.pop();
            }
            Stmt::Return(Some(e)) => check_expr(e, fname, info, scope, errs),
            Stmt::Return(None) => {}
            Stmt::Tesla { assertion, .. } => {
                // Every referenced variable must exist in scope.
                for v in &assertion.variables {
                    if scope.lookup(v).is_none() {
                        errs.push(serr(
                            fname,
                            format!("TESLA assertion references `{v}`, not in scope"),
                        ));
                    }
                }
                // Patch untyped field events with the variable's
                // struct type (Clang-style type resolution).
                patch_field_structs(
                    &mut assertion.expr,
                    &assertion.variables,
                    scope,
                    fname,
                    info,
                    errs,
                );
            }
        }
    }
}

fn patch_field_structs(
    e: &mut tesla_spec::Expr,
    variables: &[String],
    scope: &Scope,
    fname: &str,
    info: &UnitInfo,
    errs: &mut Vec<SemaError>,
) {
    use tesla_spec::{ArgPattern, EventExpr, Expr as TExpr};
    match e {
        TExpr::Event(EventExpr::FieldAssignEvent {
            struct_name,
            field_name,
            object,
            ..
        }) => {
            if struct_name.is_empty() {
                if let ArgPattern::Var { name, .. } = object {
                    match scope.lookup(name) {
                        Some(CType::Ptr(s)) => *struct_name = s.clone(),
                        Some(other) => errs.push(serr(
                            fname,
                            format!("assertion field event on `{name}` of type {other}"),
                        )),
                        None => {} // already reported above
                    }
                }
            }
            if !struct_name.is_empty() {
                match info.structs.get(struct_name) {
                    None => errs.push(serr(
                        fname,
                        format!("assertion names unknown struct `{struct_name}`"),
                    )),
                    Some(fields) => {
                        if !fields.iter().any(|f| &f.name == field_name) {
                            errs.push(serr(
                                fname,
                                format!("struct `{struct_name}` has no field `{field_name}`"),
                            ));
                        }
                    }
                }
            }
            let _ = variables;
        }
        TExpr::Event(_) | TExpr::AssertionSite | TExpr::InCallStack(_) => {}
        TExpr::Sequence(es) | TExpr::Bool { exprs: es, .. } | TExpr::AtLeast { exprs: es, .. } => {
            for e in es {
                patch_field_structs(e, variables, scope, fname, info, errs);
            }
        }
        TExpr::Modified { expr, .. } => {
            patch_field_structs(expr, variables, scope, fname, info, errs)
        }
    }
}

fn check_field_access(
    base: &Expr,
    field: &str,
    fname: &str,
    info: &UnitInfo,
    scope: &Scope,
    errs: &mut Vec<SemaError>,
) -> Option<CType> {
    check_expr_inner(base, fname, info, scope, errs);
    match type_of(base, info, scope) {
        Some(CType::Ptr(s)) => match info.structs.get(&s) {
            Some(fields) => match fields.iter().find(|p| p.name == field) {
                Some(p) => Some(p.ty.clone()),
                None => {
                    errs.push(serr(fname, format!("struct `{s}` has no field `{field}`")));
                    None
                }
            },
            None => None, // unknown struct reported at decl
        },
        Some(other) => {
            errs.push(serr(
                fname,
                format!("`->{field}` on non-pointer type {other}"),
            ));
            None
        }
        None => None,
    }
}

fn check_expr(e: &Expr, fname: &str, info: &UnitInfo, scope: &Scope, errs: &mut Vec<SemaError>) {
    check_expr_inner(e, fname, info, scope, errs);
}

fn check_expr_inner(
    e: &Expr,
    fname: &str,
    info: &UnitInfo,
    scope: &Scope,
    errs: &mut Vec<SemaError>,
) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(v) => {
            if scope.lookup(v).is_none() {
                errs.push(serr(fname, format!("use of undeclared `{v}`")));
            }
        }
        Expr::Field { base, field } => {
            check_field_access(base, field, fname, info, scope, errs);
        }
        Expr::Call { callee, args } => {
            for a in args {
                check_expr_inner(a, fname, info, scope, errs);
            }
            match &**callee {
                Expr::Var(name) if scope.lookup(name).is_none() => {
                    // A direct call to a known or external function.
                    if let Some((arity, _)) = info.functions.get(name) {
                        if *arity != args.len() {
                            errs.push(serr(
                                fname,
                                format!(
                                    "`{name}` called with {} args, expects {arity}",
                                    args.len()
                                ),
                            ));
                        }
                    }
                    // Unknown names become link-time externals.
                }
                other => check_expr_inner(other, fname, info, scope, errs),
            }
        }
        Expr::FnAddr(name) => {
            if !info.functions.contains_key(name) {
                errs.push(serr(fname, format!("`&{name}`: unknown function")));
            }
        }
        Expr::Malloc(s) => {
            if !info.structs.contains_key(s) {
                errs.push(serr(fname, format!("malloc of unknown struct `{s}`")));
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            check_expr_inner(lhs, fname, info, scope, errs);
            check_expr_inner(rhs, fname, info, scope, errs);
        }
        Expr::Un { expr, .. } => check_expr_inner(expr, fname, info, scope, errs),
    }
}

/// Type of an expression, where determinable (crate-internal:
/// lowering re-resolves with its own scope).
fn type_of(e: &Expr, info: &UnitInfo, scope: &Scope) -> Option<CType> {
    match e {
        Expr::Int(_) => Some(CType::Int),
        Expr::Var(v) => scope.lookup(v).cloned(),
        Expr::Field { base, field } => match type_of(base, info, scope) {
            Some(CType::Ptr(s)) => info
                .structs
                .get(&s)
                .and_then(|fs| fs.iter().find(|p| &p.name == field))
                .map(|p| p.ty.clone()),
            _ => None,
        },
        Expr::Call { callee, .. } => match &**callee {
            Expr::Var(name) if scope.lookup(name).is_none() => {
                info.functions.get(name).map(|(_, r)| r.clone())
            }
            _ => Some(CType::Int),
        },
        Expr::FnAddr(_) => Some(CType::FnPtr),
        Expr::Malloc(s) => Some(CType::Ptr(s.clone())),
        Expr::Bin { .. } | Expr::Un { .. } => Some(CType::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn ok(src: &str) -> Unit {
        let mut u = parse_unit(src, "t.c").unwrap();
        analyse(&mut u).unwrap();
        u
    }

    fn fails_with(src: &str, needle: &str) {
        let mut u = parse_unit(src, "t.c").unwrap();
        let errs = analyse(&mut u).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains(needle)),
            "expected error containing `{needle}`, got {errs:?}"
        );
    }

    #[test]
    fn accepts_valid_unit() {
        ok("struct s { int a; };\n\
            int g(struct s *p) { return p->a; }\n\
            int main() { struct s *p = malloc(sizeof(struct s)); p->a = 1; return g(p); }");
    }

    #[test]
    fn rejects_undeclared_and_unknown_fields() {
        fails_with("int f() { return x; }", "undeclared `x`");
        fails_with(
            "struct s { int a; }; int f(struct s *p) { return p->b; }",
            "no field `b`",
        );
        fails_with("int f(int x) { return x->a; }", "non-pointer");
        fails_with("int f() { y = 3; return 0; }", "undeclared `y`");
        fails_with("int f(int a) { int a = 3; return a; }", "redeclared");
        fails_with("int g(int a); int f() { return g(); }", "expects 1");
        fails_with(
            "int f() { struct nope *p = NULL; return 0; }",
            "unknown struct",
        );
        fails_with("int f() { return h; }", "undeclared `h`");
    }

    #[test]
    fn tesla_variables_must_be_in_scope() {
        fails_with(
            "int f(int so) { TESLA_SYSCALL_PREVIOUSLY(check(other) == 0); return so; }",
            "references `other`",
        );
        ok("int f(int so) { TESLA_SYSCALL_PREVIOUSLY(check(so) == 0); return so; }");
    }

    #[test]
    fn tesla_field_events_get_struct_types_patched() {
        let u = ok("struct proc { int p_flag; };\n\
                    int f(struct proc *p) {\n\
                        TESLA_SYSCALL(eventually(p.p_flag |= 0x100));\n\
                        return 0;\n\
                    }");
        let Stmt::Tesla { assertion, .. } = &u.functions[0].body[0] else {
            panic!("expected tesla stmt");
        };
        let mut patched = false;
        assertion.expr.for_each_event(&mut |e| {
            if let tesla_spec::EventExpr::FieldAssignEvent { struct_name, .. } = e {
                patched = struct_name == "proc";
            }
        });
        assert!(patched);
    }

    #[test]
    fn tesla_field_events_with_bad_fields_are_rejected() {
        fails_with(
            "struct proc { int p_flag; };\n\
             int f(struct proc *p) { TESLA_SYSCALL(eventually(p.nope = 1)); return 0; }",
            "no field `nope`",
        );
    }

    #[test]
    fn shadowing_in_inner_scopes_is_allowed() {
        ok("int f(int a) { if (a) { int b = 1; a = b; } else { int b = 2; a = b; } return a; }");
    }
}
