//! Lexer for mini-C.
//!
//! Mini-C is the C subset the TESLA analyser and instrumenter consume
//! in this reproduction (the paper uses Clang; see DESIGN.md). The
//! lexer also handles the preprocessor-lite pass: `#define NAME <int>`
//! lines populate the constant table (used both by ordinary code and
//! by TESLA assertion patterns such as `flags(IO_NOMACCHECK)`), and
//! `#include` lines are recorded and skipped.

use std::collections::HashMap;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation / operator, by exact spelling (`"->"`, `"+="`, …).
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of file"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
}

/// Lexer output: tokens plus preprocessor results.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    /// The token stream (ends with `Eof`).
    pub tokens: Vec<Spanned>,
    /// `#define` constants.
    pub defines: HashMap<String, u64>,
    /// `#include` targets, verbatim.
    pub includes: Vec<String>,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "|=", "&=", "^=", "++", "--",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "*", "/", "%", "+", "-", "<", ">", "=", "!", "&",
    "|", "^", "~", ":",
];

/// Lex `src`, running the preprocessor-lite pass.
///
/// # Errors
///
/// Returns [`LexError`] on malformed input.
pub fn lex(src: &str) -> Result<LexOutput, LexError> {
    let bytes = src.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                at_line_start = true;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated comment".into(),
                            line,
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'#' if at_line_start => {
                // Preprocessor-lite: read to end of line.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let directive = src[start..i].trim();
                parse_directive(directive, line, &mut out)?;
            }
            b'0'..=b'9' => {
                at_line_start = false;
                let start = i;
                let value = if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let ds = i;
                    let mut v: u64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        v = v * 16 + u64::from((bytes[i] as char).to_digit(16).unwrap());
                        i += 1;
                    }
                    if i == ds {
                        return Err(LexError {
                            message: "empty hex literal".into(),
                            line,
                        });
                    }
                    v as i64
                } else {
                    let mut v: i64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        v = v * 10 + i64::from(bytes[i] - b'0');
                        i += 1;
                    }
                    v
                };
                out.tokens.push(Spanned {
                    tok: Tok::Int(value),
                    offset: start,
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                at_line_start = false;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    offset: start,
                    line,
                });
            }
            _ => {
                at_line_start = false;
                let rest = &src[i..];
                let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
                    return Err(LexError {
                        message: format!("unexpected character `{}`", c as char),
                        line,
                    });
                };
                out.tokens.push(Spanned {
                    tok: Tok::Punct(p),
                    offset: i,
                    line,
                });
                i += p.len();
            }
        }
    }
    out.tokens.push(Spanned {
        tok: Tok::Eof,
        offset: src.len(),
        line,
    });
    Ok(out)
}

fn parse_directive(d: &str, line: u32, out: &mut LexOutput) -> Result<(), LexError> {
    let mut parts = d.split_whitespace();
    match parts.next() {
        Some("#define") => {
            let name = parts.next().ok_or_else(|| LexError {
                message: "#define without name".into(),
                line,
            })?;
            let value = parts.next().ok_or_else(|| LexError {
                message: "#define without value".into(),
                line,
            })?;
            let v = parse_int(value).ok_or_else(|| LexError {
                message: format!("#define {name}: `{value}` is not an integer"),
                line,
            })?;
            out.defines.insert(name.to_string(), v);
            Ok(())
        }
        Some("#include") => {
            out.includes.push(parts.collect::<Vec<_>>().join(" "));
            Ok(())
        }
        Some(other) => Err(LexError {
            message: format!("unsupported directive `{other}`"),
            line,
        }),
        None => Ok(()),
    }
}

fn parse_int(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_c_tokens() {
        let out = lex("int foo(struct socket *so) { return so->so_state + 0x10; }").unwrap();
        let kinds: Vec<String> = out.tokens.iter().map(|t| t.tok.to_string()).collect();
        assert_eq!(
            kinds,
            vec![
                "`int`",
                "`foo`",
                "`(`",
                "`struct`",
                "`socket`",
                "`*`",
                "`so`",
                "`)`",
                "`{`",
                "`return`",
                "`so`",
                "`->`",
                "`so_state`",
                "`+`",
                "`16`",
                "`;`",
                "`}`",
                "end of file"
            ]
        );
    }

    #[test]
    fn defines_are_collected() {
        let out = lex("#define IO_NOMACCHECK 0x80\n#define FIVE 5\nint x;").unwrap();
        assert_eq!(out.defines["IO_NOMACCHECK"], 0x80);
        assert_eq!(out.defines["FIVE"], 5);
    }

    #[test]
    fn includes_are_recorded_and_skipped() {
        let out = lex("#include \"TESLAGOps.h\"\nint x;").unwrap();
        assert_eq!(out.includes, vec!["\"TESLAGOps.h\"".to_string()]);
        assert_eq!(out.tokens.len(), 4); // int x ; EOF
    }

    #[test]
    fn comments_and_lines_tracked() {
        let out = lex("// c1\n/* multi\nline */ int x;").unwrap();
        assert_eq!(out.tokens[0].line, 3);
    }

    #[test]
    fn compound_operators_lex_greedily() {
        let out = lex("a += b; c->d++; e >= f;").unwrap();
        let puncts: Vec<&Tok> = out
            .tokens
            .iter()
            .map(|t| &t.tok)
            .filter(|t| matches!(t, Tok::Punct(_)))
            .collect();
        assert!(puncts.contains(&&Tok::Punct("+=")));
        assert!(puncts.contains(&&Tok::Punct("->")));
        assert!(puncts.contains(&&Tok::Punct("++")));
        assert!(puncts.contains(&&Tok::Punct(">=")));
    }

    #[test]
    fn bad_directive_is_an_error() {
        assert!(lex("#pragma weird\n").is_err());
        assert!(lex("#define FOO bar\n").is_err());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* nope").is_err());
    }
}
