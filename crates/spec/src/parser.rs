//! Parser for the high-level TESLA assertion surface syntax (fig. 5).
//!
//! The paper implements the surface forms as C macros expanded by the
//! Clang-based analyser; here a handwritten recursive-descent parser
//! accepts the same shapes directly:
//!
//! ```text
//! TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))
//! TESLA_PERTHREAD(call(f), returnfrom(f), eventually(audit(x)))
//! TESLA_GLOBAL(call(f), returnfrom(f), a() || b())
//! TESLA_ASSERT(global, call(f), returnfrom(g), TSEQUENCE(a(), b()))
//! TESLA_SYSCALL(incallstack(ufs_readdir) || previously(mac_check(vp) == 0))
//! TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)
//! ```
//!
//! Objective-C message events use bracket syntax (`[ANY(id) push]`),
//! field assignments use `socket(so).so_qstate = 5` (the parenthesised
//! struct-type form; the mini-C analyser fills the struct type from
//! `so`'s declared type when the plain `so.so_qstate = 5` form is
//! used).
//!
//! Identifiers that are not keywords and not in the caller-provided
//! constant table become *variables* bound from the assertion scope.

use crate::ast::{
    Assertion, BoolOp, Bounds, CallKind, Context, EventExpr, Expr, FieldOp, Modifier, SourceLoc,
    StaticEvent,
};
use crate::value::{ArgPattern, Value};
use std::collections::HashMap;

/// The syscall bound function used by the kernel convenience macros
/// `TESLA_SYSCALL` / `TESLA_SYSCALL_PREVIOUSLY`; matches figure 9.
pub const SYSCALL_BOUND_FN: &str = "amd64_syscall";

/// A parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Amp,
    EqEq,
    OrOr,
    Caret,
    Pipe,
    Assign,
    PlusAssign,
    MinusAssign,
    OrAssign,
    AndAssign,
    PlusPlus,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::PlusAssign => write!(f, "`+=`"),
            Tok::MinusAssign => write!(f, "`-=`"),
            Tok::OrAssign => write!(f, "`|=`"),
            Tok::AndAssign => write!(f, "`&=`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated block comment".into(),
                        offset: start,
                    });
                }
                i += 2;
            }
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b'[' => {
                toks.push((Tok::LBracket, i));
                i += 1;
            }
            b']' => {
                toks.push((Tok::RBracket, i));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            b'.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            b':' => {
                toks.push((Tok::Colon, i));
                i += 1;
            }
            b'^' => {
                toks.push((Tok::Caret, i));
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::EqEq, i));
                    i += 2;
                } else {
                    toks.push((Tok::Assign, i));
                    i += 1;
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((Tok::OrOr, i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::OrAssign, i));
                    i += 2;
                } else {
                    toks.push((Tok::Pipe, i));
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::AndAssign, i));
                    i += 2;
                } else {
                    toks.push((Tok::Amp, i));
                    i += 1;
                }
            }
            b'+' => {
                if bytes.get(i + 1) == Some(&b'+') {
                    toks.push((Tok::PlusPlus, i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::PlusAssign, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "unexpected `+`".into(),
                        offset: i,
                    });
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::MinusAssign, i));
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let start = i;
                    i += 1;
                    let mut v: i64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        v = v * 10 + i64::from(bytes[i] - b'0');
                        i += 1;
                    }
                    toks.push((Tok::Int(-v), start));
                } else {
                    return Err(ParseError {
                        message: "unexpected `-`".into(),
                        offset: i,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let mut v: u64 = 0;
                    let digits = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        v = v * 16 + u64::from((bytes[i] as char).to_digit(16).unwrap());
                        i += 1;
                    }
                    if i == digits {
                        return Err(ParseError {
                            message: "hex literal with no digits".into(),
                            offset: start,
                        });
                    }
                    toks.push((Tok::Int(v as i64), start));
                } else {
                    let mut v: i64 = 0;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        v = v * 10 + i64::from(bytes[i] - b'0');
                        i += 1;
                    }
                    toks.push((Tok::Int(v), start));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", c as char),
                    offset: i,
                })
            }
        }
    }
    toks.push((Tok::Eof, src.len()));
    Ok(toks)
}

/// Parser state: token stream plus the variable table being built.
struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    consts: &'a HashMap<String, u64>,
    vars: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &str, consts: &'a HashMap<String, u64>) -> Result<Parser<'a>, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            consts,
            vars: Vec::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, found {other}"),
                offset: self.toks[self.pos.saturating_sub(1)].1,
            }),
        }
    }

    fn var_index(&mut self, name: &str) -> usize {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            i
        } else {
            self.vars.push(name.to_string());
            self.vars.len() - 1
        }
    }

    /// Top level: one of the `TESLA_*` assertion forms.
    fn parse_assertion(&mut self) -> Result<Assertion, ParseError> {
        let head = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let (context, bounds, expr) = match head.as_str() {
            "TESLA_WITHIN" => {
                let f = self.expect_ident()?;
                self.expect(&Tok::Comma)?;
                let e = self.parse_expr()?;
                (Context::PerThread, Bounds::within(&f), e)
            }
            "TESLA_SYSCALL" => {
                let e = self.parse_expr()?;
                (Context::PerThread, Bounds::within(SYSCALL_BOUND_FN), e)
            }
            "TESLA_SYSCALL_PREVIOUSLY" => {
                let e = self.parse_expr_list()?;
                (
                    Context::PerThread,
                    Bounds::within(SYSCALL_BOUND_FN),
                    Expr::previously(seq_or_single(e)),
                )
            }
            "TESLA_GLOBAL" | "TESLA_PERTHREAD" => {
                let ctx = if head == "TESLA_GLOBAL" {
                    Context::Global
                } else {
                    Context::PerThread
                };
                let start = self.parse_static_event()?;
                self.expect(&Tok::Comma)?;
                let end = self.parse_static_event()?;
                self.expect(&Tok::Comma)?;
                let e = self.parse_expr()?;
                (ctx, Bounds { start, end }, e)
            }
            "TESLA_ASSERT" => {
                let ctx = match self.expect_ident()?.as_str() {
                    "global" => Context::Global,
                    "perthread" | "per_thread" | "thread" => Context::PerThread,
                    other => return Err(self.err(format!("unknown context `{other}`"))),
                };
                self.expect(&Tok::Comma)?;
                let start = self.parse_static_event()?;
                self.expect(&Tok::Comma)?;
                let end = self.parse_static_event()?;
                self.expect(&Tok::Comma)?;
                let e = self.parse_expr()?;
                (ctx, Bounds { start, end }, e)
            }
            other => return Err(self.err(format!("unknown assertion form `{other}`"))),
        };
        self.expect(&Tok::RParen)?;
        if *self.peek() != Tok::Eof {
            return Err(self.err(format!("trailing input: {}", self.peek())));
        }
        Ok(Assertion {
            name: String::new(),
            context,
            bounds,
            expr,
            variables: std::mem::take(&mut self.vars),
            loc: SourceLoc::default(),
        })
    }

    fn parse_static_event(&mut self) -> Result<StaticEvent, ParseError> {
        let kw = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let f = self.expect_ident()?;
        self.expect(&Tok::RParen)?;
        match kw.as_str() {
            "call" => Ok(StaticEvent::Call(f)),
            "returnfrom" => Ok(StaticEvent::ReturnFrom(f)),
            other => Err(self.err(format!("expected call/returnfrom, found `{other}`"))),
        }
    }

    /// expr := orExpr where orExpr := xorExpr (`||` xorExpr)*
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_xor_expr()?;
        if *self.peek() != Tok::OrOr {
            return Ok(first);
        }
        let mut exprs = vec![first];
        while *self.peek() == Tok::OrOr {
            self.bump();
            exprs.push(self.parse_xor_expr()?);
        }
        Ok(Expr::Bool {
            op: BoolOp::Or,
            exprs,
        })
    }

    fn parse_xor_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_primary()?;
        if *self.peek() != Tok::Caret {
            return Ok(first);
        }
        let mut exprs = vec![first];
        while *self.peek() == Tok::Caret {
            self.bump();
            exprs.push(self.parse_primary()?);
        }
        Ok(Expr::Bool {
            op: BoolOp::Xor,
            exprs,
        })
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut out = vec![self.parse_expr()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::LBracket {
            return self.parse_message(CallKind::Entry);
        }
        let off = self.offset();
        let head = match self.peek() {
            Tok::Ident(s) => s.clone(),
            other => return Err(self.err(format!("expected expression, found {other}"))),
        };
        match head.as_str() {
            "TESLA_ASSERTION_SITE" => {
                self.bump();
                // Optional `()`.
                if *self.peek() == Tok::LParen {
                    self.bump();
                    self.expect(&Tok::RParen)?;
                }
                Ok(Expr::AssertionSite)
            }
            "previously" | "eventually" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let es = self.parse_expr_list()?;
                self.expect(&Tok::RParen)?;
                let body = seq_or_single(es);
                Ok(if head == "previously" {
                    Expr::previously(body)
                } else {
                    Expr::eventually(body)
                })
            }
            "TSEQUENCE" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let es = self.parse_expr_list()?;
                self.expect(&Tok::RParen)?;
                // A one-element TSEQUENCE is pure grouping; unwrap so
                // printing and parsing round-trip exactly.
                Ok(seq_or_single(es))
            }
            "ATLEAST" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let n = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as usize,
                    other => {
                        return Err(ParseError {
                            message: format!("ATLEAST needs a count, found {other}"),
                            offset: off,
                        })
                    }
                };
                let mut es = Vec::new();
                while *self.peek() == Tok::Comma {
                    self.bump();
                    es.push(self.parse_expr()?);
                }
                self.expect(&Tok::RParen)?;
                if es.is_empty() {
                    return Err(ParseError {
                        message: "ATLEAST needs at least one event".into(),
                        offset: off,
                    });
                }
                Ok(Expr::AtLeast { n, exprs: es })
            }
            "optional" | "callee" | "caller" | "strict" | "conditional" => {
                self.bump();
                let m = match head.as_str() {
                    "optional" => Modifier::Optional,
                    "callee" => Modifier::Callee,
                    "caller" => Modifier::Caller,
                    "strict" => Modifier::Strict,
                    _ => Modifier::Conditional,
                };
                self.expect(&Tok::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Modified {
                    modifier: m,
                    expr: Box::new(e),
                })
            }
            "incallstack" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.expect_ident()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::InCallStack(f))
            }
            "call" | "returnfrom" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                if *self.peek() == Tok::LBracket {
                    // returnfrom([recv sel]) — method-return event.
                    let kind = if head == "call" {
                        CallKind::Entry
                    } else {
                        CallKind::Exit
                    };
                    let e = self.parse_message(kind)?;
                    self.expect(&Tok::RParen)?;
                    return Ok(e);
                }
                let name = self.expect_ident()?;
                let args = if *self.peek() == Tok::LParen {
                    self.parse_arg_patterns()?
                } else {
                    Vec::new()
                };
                self.expect(&Tok::RParen)?;
                let kind = if head == "call" {
                    CallKind::Entry
                } else {
                    CallKind::Exit
                };
                Ok(Expr::Event(EventExpr::FunctionEvent { name, args, kind }))
            }
            _ => self.parse_call_or_field(head),
        }
    }

    /// `name(args) [== val]` or `name(obj).field op val` or
    /// `name.field op val` (struct type unknown).
    fn parse_call_or_field(&mut self, head: String) -> Result<Expr, ParseError> {
        if matches!(head.as_str(), "flags" | "bitmask" | "ANY" | "any" | "NULL") {
            return Err(self.err(format!("`{head}` is a value pattern, not an event")));
        }
        self.bump(); // the identifier
        if *self.peek() == Tok::LParen {
            // Look ahead: `type(obj).field` is a field event; otherwise
            // a function event.
            let args = self.parse_arg_patterns()?;
            if *self.peek() == Tok::Dot {
                if args.len() != 1 {
                    return Err(self.err(
                        "field events take exactly one object pattern: type(obj).field".into(),
                    ));
                }
                return self.parse_field_tail(head, args.into_iter().next().unwrap());
            }
            let kind = if *self.peek() == Tok::EqEq {
                self.bump();
                let ret = self.parse_val()?;
                CallKind::ExitWithReturn(ret)
            } else {
                // Bare `f(args)` in an expression means "f was called
                // and returned", the paper's equality-pattern default
                // with no return check.
                CallKind::Exit
            };
            return Ok(Expr::Event(EventExpr::FunctionEvent {
                name: head,
                args,
                kind,
            }));
        }
        if *self.peek() == Tok::Dot {
            // `obj.field op val`: struct type unknown at parse time;
            // the object is a variable named `head`.
            let idx = self.var_index(&head);
            let obj = ArgPattern::Var {
                index: idx,
                name: head,
            };
            return self.parse_field_tail(String::new(), obj);
        }
        Err(self.err(format!("expected `(` or `.` after `{}`", head)))
    }

    fn parse_field_tail(
        &mut self,
        struct_name: String,
        object: ArgPattern,
    ) -> Result<Expr, ParseError> {
        self.expect(&Tok::Dot)?;
        let field_name = self.expect_ident()?;
        let (op, value) = match self.bump() {
            Tok::Assign => (FieldOp::Assign, self.parse_val()?),
            Tok::PlusAssign => (FieldOp::AddAssign, self.parse_val()?),
            Tok::MinusAssign => (FieldOp::SubAssign, self.parse_val()?),
            Tok::OrAssign => (FieldOp::OrAssign, self.parse_val()?),
            Tok::AndAssign => (FieldOp::AndAssign, self.parse_val()?),
            Tok::PlusPlus => (FieldOp::AddAssign, ArgPattern::Const(Value(1))),
            other => return Err(self.err(format!("expected assignment operator, found {other}"))),
        };
        Ok(Expr::Event(EventExpr::FieldAssignEvent {
            struct_name,
            field_name,
            object,
            op,
            value,
        }))
    }

    /// `[receiver selector]` or `[receiver sel: arg sel2: arg2 ...]`.
    fn parse_message(&mut self, kind: CallKind) -> Result<Expr, ParseError> {
        self.expect(&Tok::LBracket)?;
        let receiver = self.parse_val()?;
        let mut selector = String::new();
        let mut args = Vec::new();
        loop {
            match self.peek() {
                Tok::Ident(_) => {
                    let part = self.expect_ident()?;
                    selector.push_str(&part);
                    if *self.peek() == Tok::Colon {
                        self.bump();
                        selector.push(':');
                        args.push(self.parse_val()?);
                    }
                }
                Tok::RBracket => break,
                other => return Err(self.err(format!("unexpected {other} in message"))),
            }
        }
        self.expect(&Tok::RBracket)?;
        if selector.is_empty() {
            return Err(self.err("message has no selector".into()));
        }
        Ok(Expr::Event(EventExpr::MessageEvent {
            receiver,
            selector,
            args,
            kind,
        }))
    }

    fn parse_arg_patterns(&mut self) -> Result<Vec<ArgPattern>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            args.push(self.parse_val()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                args.push(self.parse_val()?);
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    /// val := ANY(type) | flags(F|G) | bitmask(F|G) | int | NULL |
    ///        named-constant | variable | &variable
    fn parse_val(&mut self) -> Result<ArgPattern, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(ArgPattern::Const(Value::from_i64(v)))
            }
            Tok::Amp => {
                self.bump();
                let name = self.expect_ident()?;
                let index = self.var_index(&name);
                Ok(ArgPattern::OutParam { index, name })
            }
            Tok::Ident(id) => match id.as_str() {
                "ANY" | "any" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let type_name = self.expect_ident()?;
                    self.expect(&Tok::RParen)?;
                    Ok(ArgPattern::Any { type_name })
                }
                "flags" | "bitmask" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let bits = self.parse_flag_bits()?;
                    self.expect(&Tok::RParen)?;
                    Ok(if id == "flags" {
                        ArgPattern::Flags(bits)
                    } else {
                        ArgPattern::Bitmask(bits)
                    })
                }
                "NULL" => {
                    self.bump();
                    Ok(ArgPattern::Const(Value::NULL))
                }
                _ => {
                    self.bump();
                    if let Some(v) = self.consts.get(&id) {
                        Ok(ArgPattern::Const(Value(*v)))
                    } else if *self.peek() == Tok::LParen && *self.peek2() == Tok::RParen {
                        Err(self.err(format!("`{id}()` is not a valid argument pattern")))
                    } else {
                        let index = self.var_index(&id);
                        Ok(ArgPattern::Var { index, name: id })
                    }
                }
            },
            other => Err(self.err(format!("expected value pattern, found {other}"))),
        }
    }

    /// `F | G | 0x40` — an OR of named constants and literals.
    fn parse_flag_bits(&mut self) -> Result<u64, ParseError> {
        let mut bits = self.parse_one_flag()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            bits |= self.parse_one_flag()?;
        }
        Ok(bits)
    }

    fn parse_one_flag(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(v as u64),
            Tok::Ident(id) => self
                .consts
                .get(&id)
                .copied()
                .ok_or_else(|| self.err(format!("unknown flag constant `{id}`"))),
            other => Err(self.err(format!("expected flag constant, found {other}"))),
        }
    }
}

fn seq_or_single(mut es: Vec<Expr>) -> Expr {
    if es.len() == 1 {
        es.pop().unwrap()
    } else {
        Expr::Sequence(es)
    }
}

/// Parse a complete `TESLA_*` assertion with an empty constant table.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_assertion(src: &str) -> Result<Assertion, ParseError> {
    parse_assertion_with_consts(src, &HashMap::new())
}

/// Parse a complete assertion, resolving named constants (C `#define`s
/// such as `IO_NOMACCHECK`) through `consts`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unknown flag constants.
pub fn parse_assertion_with_consts(
    src: &str,
    consts: &HashMap<String, u64>,
) -> Result<Assertion, ParseError> {
    let mut p = Parser::new(src, consts)?;
    let mut a = p.parse_assertion()?;
    if a.name.is_empty() {
        a.name = format!("assertion@{}", a.loc);
    }
    Ok(a)
}

/// Parse a bare TESLA expression (no `TESLA_*` wrapper); used by tests
/// and by the analyser for sub-expressions.
///
/// Returns the expression and the variable table it references.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_expr(
    src: &str,
    consts: &HashMap<String, u64>,
) -> Result<(Expr, Vec<String>), ParseError> {
    let mut p = Parser::new(src, consts)?;
    let e = p.parse_expr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err(format!("trailing input: {}", p.peek())));
    }
    Ok((e, p.vars))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_1() {
        let a = parse_assertion(
            "TESLA_WITHIN(enclosing_fn, previously(\
                 security_check(ANY(ptr), o, op) == 0))",
        )
        .unwrap();
        assert_eq!(a.context, Context::PerThread);
        assert_eq!(a.bounds, Bounds::within("enclosing_fn"));
        assert_eq!(a.variables, vec!["o".to_string(), "op".to_string()]);
        assert!(a.validate().is_ok());
        // previously(x) = TSEQUENCE(x, SITE)
        match &a.expr {
            Expr::Sequence(es) => {
                assert_eq!(es.len(), 2);
                assert_eq!(es[1], Expr::AssertionSite);
                match &es[0] {
                    Expr::Event(EventExpr::FunctionEvent { name, args, kind }) => {
                        assert_eq!(name, "security_check");
                        assert_eq!(args.len(), 3);
                        assert_eq!(args[0], ArgPattern::any_ptr());
                        assert_eq!(*kind, CallKind::ExitWithReturn(ArgPattern::Const(Value(0))));
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parses_figure_4_syscall_previously() {
        let a = parse_assertion(
            "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)",
        )
        .unwrap();
        assert_eq!(a.bounds, Bounds::within(SYSCALL_BOUND_FN));
        assert_eq!(
            a.variables,
            vec!["active_cred".to_string(), "so".to_string()]
        );
    }

    #[test]
    fn parses_figure_6_evp_verify() {
        let a = parse_assertion(
            "TESLA_WITHIN(main, previously(\
               EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1))",
        )
        .unwrap();
        assert!(a.variables.is_empty());
        let mut names = Vec::new();
        a.expr.for_each_event(&mut |e| {
            if let EventExpr::FunctionEvent { name, .. } = e {
                names.push(name.clone());
            }
        });
        assert_eq!(names, vec!["EVP_VerifyFinal"]);
    }

    #[test]
    fn parses_figure_7_ufs_open_disjunction() {
        let a = parse_assertion(
            "TESLA_SYSCALL_PREVIOUSLY(
               mac_kld_check_load(ANY(ptr), vp) == 0
               || mac_vnode_check_exec(ANY(ptr), vp) == 0
               || mac_vnode_check_open(ANY(ptr), vp, ANY(int)) == 0)",
        )
        .unwrap();
        // previously(x || y || z): the OR is under a sequence.
        match &a.expr {
            Expr::Sequence(es) => match &es[0] {
                Expr::Bool {
                    op: BoolOp::Or,
                    exprs,
                } => assert_eq!(exprs.len(), 3),
                other => panic!("expected OR, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
        assert_eq!(a.variables, vec!["vp".to_string()]);
    }

    #[test]
    fn parses_figure_7_ffs_read_with_incallstack_and_flags() {
        let consts: HashMap<String, u64> = [("IO_NOMACCHECK".to_string(), 0x80u64)].into();
        let a = parse_assertion_with_consts(
            "TESLA_SYSCALL(incallstack(ufs_readdir)
               || previously(call(vn_rdwr(vp, flags(IO_NOMACCHECK))))
               || previously(mac_vnode_check_read(ANY(ptr), vp) == 0))",
            &consts,
        )
        .unwrap();
        assert!(a.validate().is_ok());
        match &a.expr {
            Expr::Bool {
                op: BoolOp::Or,
                exprs,
            } => {
                assert_eq!(exprs[0], Expr::InCallStack("ufs_readdir".into()));
                // The flags pattern resolved the named constant.
                let mut found_flags = false;
                exprs[1].for_each_event(&mut |e| {
                    if let EventExpr::FunctionEvent { args, .. } = e {
                        found_flags |= args.contains(&ArgPattern::Flags(0x80));
                    }
                });
                assert!(found_flags);
            }
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure_8_message_events() {
        let a = parse_assertion(
            "TESLA_WITHIN(startDrawing, previously(ATLEAST(0,
               [ANY(id) push],
               [ANY(id) pop],
               [ANY(id) drawWithFrame: ANY(NSRect) inView: ANY(id)],
               returnfrom([ANY(id) restoreGraphicsState]))))",
        )
        .unwrap();
        let mut selectors = Vec::new();
        a.expr.for_each_event(&mut |e| {
            if let EventExpr::MessageEvent { selector, kind, .. } = e {
                selectors.push((selector.clone(), kind.clone()));
            }
        });
        assert_eq!(selectors.len(), 4);
        assert_eq!(selectors[0], ("push".to_string(), CallKind::Entry));
        assert_eq!(selectors[2].0, "drawWithFrame:inView:");
        assert_eq!(
            selectors[3],
            ("restoreGraphicsState".to_string(), CallKind::Exit)
        );
    }

    #[test]
    fn parses_global_and_assert_forms() {
        let a =
            parse_assertion("TESLA_GLOBAL(call(start), returnfrom(stop), eventually(audit(x)))")
                .unwrap();
        assert_eq!(a.context, Context::Global);
        assert_eq!(a.bounds.start, StaticEvent::Call("start".into()));
        assert_eq!(a.bounds.end, StaticEvent::ReturnFrom("stop".into()));

        let b =
            parse_assertion("TESLA_ASSERT(global, call(a), returnfrom(b), TSEQUENCE(f(), g()))")
                .unwrap();
        assert_eq!(b.context, Context::Global);
        match &b.expr {
            Expr::Sequence(es) => assert_eq!(es.len(), 2),
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn parses_field_assignment_forms() {
        // Typed form.
        let (e, vars) = parse_expr("socket(so).so_qstate = 5", &HashMap::new()).unwrap();
        match e {
            Expr::Event(EventExpr::FieldAssignEvent {
                struct_name,
                field_name,
                op,
                value,
                ..
            }) => {
                assert_eq!(struct_name, "socket");
                assert_eq!(field_name, "so_qstate");
                assert_eq!(op, FieldOp::Assign);
                assert_eq!(value, ArgPattern::Const(Value(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(vars, vec!["so".to_string()]);

        // Untyped form with increment.
        let (e, _) = parse_expr("s.refcount++", &HashMap::new()).unwrap();
        match e {
            Expr::Event(EventExpr::FieldAssignEvent {
                struct_name,
                op,
                value,
                ..
            }) => {
                assert!(struct_name.is_empty());
                assert_eq!(op, FieldOp::AddAssign);
                assert_eq!(value, ArgPattern::Const(Value(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_compound_field_ops() {
        for (src, op) in [
            ("s.f += 2", FieldOp::AddAssign),
            ("s.f -= 2", FieldOp::SubAssign),
            ("s.f |= 2", FieldOp::OrAssign),
            ("s.f &= 2", FieldOp::AndAssign),
        ] {
            let (e, _) = parse_expr(src, &HashMap::new()).unwrap();
            match e {
                Expr::Event(EventExpr::FieldAssignEvent { op: got, .. }) => assert_eq!(got, op),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn parses_modifiers_and_xor() {
        let (e, _) = parse_expr("strict(a() ^ b())", &HashMap::new()).unwrap();
        match e {
            Expr::Modified {
                modifier: Modifier::Strict,
                expr,
            } => match *expr {
                Expr::Bool {
                    op: BoolOp::Xor,
                    ref exprs,
                } => assert_eq!(exprs.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        for m in ["optional", "callee", "caller", "conditional"] {
            let (e, _) = parse_expr(&format!("{m}(f())"), &HashMap::new()).unwrap();
            assert!(matches!(e, Expr::Modified { .. }));
        }
    }

    #[test]
    fn xor_binds_tighter_than_or() {
        let (e, _) = parse_expr("a() || b() ^ c()", &HashMap::new()).unwrap();
        match e {
            Expr::Bool {
                op: BoolOp::Or,
                exprs,
            } => {
                assert_eq!(exprs.len(), 2);
                assert!(matches!(
                    &exprs[1],
                    Expr::Bool {
                        op: BoolOp::Xor,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_out_params_and_negative_and_hex() {
        let (e, vars) = parse_expr("f(&err, -1, 0x40) == 0", &HashMap::new()).unwrap();
        assert_eq!(vars, vec!["err".to_string()]);
        match e {
            Expr::Event(EventExpr::FunctionEvent { args, .. }) => {
                assert_eq!(
                    args[0],
                    ArgPattern::OutParam {
                        index: 0,
                        name: "err".into()
                    }
                );
                assert_eq!(args[1], ArgPattern::Const(Value::from_i64(-1)));
                assert_eq!(args[2], ArgPattern::Const(Value(0x40)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_variables_get_one_index() {
        let a = parse_assertion("TESLA_WITHIN(f, previously(check(x, y) == 0 || other(x) == 0))")
            .unwrap();
        assert_eq!(a.variables, vec!["x".to_string(), "y".to_string()]);
        let mut xs = Vec::new();
        a.expr.for_each_event(&mut |e| {
            if let EventExpr::FunctionEvent { args, .. } = e {
                for arg in args {
                    if let ArgPattern::Var { index, name } = arg {
                        if name == "x" {
                            xs.push(*index);
                        }
                    }
                }
            }
        });
        assert_eq!(xs, vec![0, 0]);
    }

    #[test]
    fn comments_are_skipped() {
        let a = parse_assertion("TESLA_WITHIN(f, /* inline */ previously(g() == 0)) // trailing")
            .unwrap();
        assert_eq!(a.bounds.start.function(), "f");
    }

    #[test]
    fn errors_are_reported_with_offsets() {
        let e = parse_assertion("TESLA_WITHIN(f previously(g() == 0))").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.message.contains("expected"));

        assert!(parse_assertion("TESLA_BOGUS(f, g())").is_err());
        assert!(parse_assertion("TESLA_WITHIN(f, )").is_err());
        assert!(parse_expr("flags(UNKNOWN_CONST)", &HashMap::new()).is_err());
        assert!(parse_expr("f(", &HashMap::new()).is_err());
        assert!(parse_expr("[x]", &HashMap::new()).is_err());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(parse_assertion("TESLA_WITHIN(f, /* oops").is_err());
    }

    #[test]
    fn named_constants_resolve_in_argument_position() {
        let consts: HashMap<String, u64> = [("O_RDONLY".to_string(), 0u64)].into();
        let (e, vars) = parse_expr("open_check(vp, O_RDONLY) == 0", &consts).unwrap();
        assert_eq!(vars, vec!["vp".to_string()]);
        match e {
            Expr::Event(EventExpr::FunctionEvent { args, .. }) => {
                assert_eq!(args[1], ArgPattern::Const(Value(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_call_means_call_and_return() {
        let (e, _) = parse_expr("f(x)", &HashMap::new()).unwrap();
        match e {
            Expr::Event(EventExpr::FunctionEvent { kind, .. }) => {
                assert_eq!(kind, CallKind::Exit)
            }
            other => panic!("unexpected {other:?}"),
        }
        let (e, _) = parse_expr("call(f(x))", &HashMap::new()).unwrap();
        match e {
            Expr::Event(EventExpr::FunctionEvent { kind, .. }) => {
                assert_eq!(kind, CallKind::Entry)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
