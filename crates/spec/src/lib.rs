//! # tesla-spec — the TESLA assertion language
//!
//! This crate defines the *description* half of TESLA (EuroSys 2014,
//! §3): the abstract syntax of temporal assertions, the runtime value
//! and argument-pattern model, a parser for the high-level surface
//! syntax of figure 5 (`TESLA_WITHIN(f, previously(check(ANY(ptr), o,
//! op) == 0))`), and a typed Rust builder DSL for constructing the
//! same assertions programmatically.
//!
//! A TESLA assertion has three parts (§3.1):
//!
//! * a **context** (§3.2) — thread-local (implicit serialisation) or
//!   global (explicit synchronisation);
//! * **temporal bounds** (§3.3) — static events (`call(f)` /
//!   `returnfrom(f)`) between which automaton instances may live,
//!   giving libtesla a deterministic memory footprint;
//! * an **expression** (§3.4) — sequences, boolean operators and
//!   modifiers over concrete program events (function call/return,
//!   structure field assignment, Objective-C-style message sends, and
//!   the assertion site itself).
//!
//! Downstream, `tesla-automata` lowers an [`Assertion`] into a
//! finite-state automaton and `tesla-runtime` (libtesla) executes it
//! against event streams.
//!
//! ## Example
//!
//! ```
//! use tesla_spec::parse_assertion;
//!
//! let a = parse_assertion(
//!     "TESLA_WITHIN(enclosing_fn, previously(\
//!          security_check(ANY(ptr), o, op) == 0))",
//! )
//! .unwrap();
//! assert_eq!(a.bounds.start.function(), "enclosing_fn");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod parser;
pub mod pretty;
pub mod value;

pub use ast::{
    Assertion, BoolOp, Bounds, CallKind, Context, EventExpr, Expr, FieldOp, Modifier, SourceLoc,
    StaticEvent,
};
pub use builder::{
    atleast, call, field_assign, msg_send, returnfrom, AssertionBuilder, CallBuilder, ExprBuilder,
    FieldBuilder, MsgBuilder,
};
pub use parser::{parse_assertion, parse_assertion_with_consts, parse_expr, ParseError};
pub use value::{ArgPattern, Value};

/// Errors produced when validating an assertion's structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The expression contains no concrete events at all.
    EmptyExpression,
    /// The expression references more than one assertion site; every
    /// TESLA assertion is anchored at exactly one site (§3.4.1).
    MultipleAssertionSites(usize),
    /// A named variable was used with conflicting argument positions in
    /// a way the automaton compiler cannot reconcile.
    InconsistentVariable(String),
    /// Bounds refer to an empty function name.
    EmptyBoundFunction,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyExpression => write!(f, "assertion expression contains no events"),
            SpecError::MultipleAssertionSites(n) => {
                write!(
                    f,
                    "assertion references {n} assertion sites; exactly one is allowed"
                )
            }
            SpecError::InconsistentVariable(v) => {
                write!(f, "variable `{v}` is used inconsistently")
            }
            SpecError::EmptyBoundFunction => write!(f, "temporal bound names an empty function"),
        }
    }
}

impl std::error::Error for SpecError {}
