//! Runtime values and argument patterns.
//!
//! TESLA events carry machine-word values (pointers, integers, file
//! descriptors, credentials, …). Assertions match those values with
//! *argument patterns* (§3.4.1): wildcards (`ANY(type)`), constants,
//! named variables bound at run time, minimal/maximal bitfields
//! (`flags(...)` / `bitmask(...)`) and indirect out-parameters (the C
//! address-of operator, used by APIs that return values by pointer).

use serde::{Deserialize, Serialize};

/// A machine-word value observed at run time.
///
/// Values are stored as raw 64-bit words: pointers and unsigned
/// integers map directly, signed integers use two's complement (so the
/// tri-state `-1` of `EVP_VerifyFinal` is representable and compares
/// correctly under equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Value(pub u64);

impl Value {
    /// The all-zero value — C's `NULL`, `0` and `false`.
    pub const NULL: Value = Value(0);

    /// Construct from a signed integer (two's complement).
    #[inline]
    pub fn from_i64(v: i64) -> Value {
        Value(v as u64)
    }

    /// Interpret the word as a signed integer.
    #[inline]
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Construct from an index-like value (object handles in the
    /// simulated substrates).
    #[inline]
    pub fn from_usize(v: usize) -> Value {
        Value(v as u64)
    }

    /// Interpret the word as an index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Construct from a boolean (`1`/`0`).
    #[inline]
    pub fn from_bool(v: bool) -> Value {
        Value(u64::from(v))
    }

    /// True iff the word is non-zero (C truthiness).
    #[inline]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::from_i64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::from_i64(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from_usize(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::from_bool(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0 as i64;
        if (-4096..0).contains(&s) {
            // Small negative values print signed: error codes like -1.
            write!(f, "{s}")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A pattern matched against one event argument (or return value).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgPattern {
    /// `ANY(type)` — matches every value. The type name is kept only
    /// for diagnostics; TESLA's matching is untyped machine words.
    Any {
        /// The C type name written in the source (`ptr`, `int`, …).
        type_name: String,
    },
    /// A compile-time constant: matches iff the argument equals it.
    Const(Value),
    /// A named variable from the assertion scope. The first event that
    /// observes the variable *binds* it in the automaton instance
    /// (cloning the instance, §4.4.1); later events must match the
    /// bound value.
    Var {
        /// Index into the assertion's variable table.
        index: usize,
        /// Source-level name, for diagnostics.
        name: String,
    },
    /// `flags(F)` — a *minimal* bitfield (§3.4.1): matches iff all the
    /// given bits are set in the argument (others may also be set).
    Flags(u64),
    /// `bitmask(M)` — a *maximal* bitfield: matches iff the argument
    /// sets no bits outside the mask.
    Bitmask(u64),
    /// `&x` — an out-parameter: the event argument is the *address* of
    /// a variable; the value to bind/compare is what the callee stored
    /// through the pointer. Instrumentation dereferences at event time,
    /// so matching behaves like [`ArgPattern::Var`].
    OutParam {
        /// Index into the assertion's variable table.
        index: usize,
        /// Source-level name, for diagnostics.
        name: String,
    },
}

impl ArgPattern {
    /// A wildcard over pointers, the most common `ANY`.
    pub fn any_ptr() -> ArgPattern {
        ArgPattern::Any {
            type_name: "ptr".into(),
        }
    }

    /// Does this pattern bind or reference a variable?
    pub fn var_index(&self) -> Option<usize> {
        match self {
            ArgPattern::Var { index, .. } | ArgPattern::OutParam { index, .. } => Some(*index),
            _ => None,
        }
    }

    /// Match the pattern against a concrete value, ignoring variable
    /// binding (variables match any value at this level; binding
    /// consistency is enforced by the instance store).
    pub fn matches_static(&self, v: Value) -> bool {
        match self {
            ArgPattern::Any { .. } | ArgPattern::Var { .. } | ArgPattern::OutParam { .. } => true,
            ArgPattern::Const(c) => *c == v,
            ArgPattern::Flags(required) => v.0 & required == *required,
            ArgPattern::Bitmask(mask) => v.0 & !mask == 0,
        }
    }

    /// Are the two patterns *provably* disjoint — is there no value
    /// both can match? Used by the spec linter to flag assertions that
    /// observe the same callee with incompatible matchers. Wildcards
    /// and variables overlap everything (a variable's binding is a
    /// run-time property), so only concrete pattern pairs can be
    /// disjoint:
    ///
    /// - two distinct constants;
    /// - a constant missing a required `flags` bit;
    /// - a constant with bits outside a `bitmask`;
    /// - `flags` requiring a bit the `bitmask` forbids.
    ///
    /// Two `flags` patterns always overlap (their union satisfies
    /// both), as do two `bitmask` patterns (zero satisfies both).
    pub fn disjoint_with(&self, other: &ArgPattern) -> bool {
        use ArgPattern::{Bitmask, Const, Flags};
        match (self, other) {
            (Const(a), Const(b)) => a != b,
            (Const(v), Flags(req)) | (Flags(req), Const(v)) => v.0 & req != *req,
            (Const(v), Bitmask(mask)) | (Bitmask(mask), Const(v)) => v.0 & !mask != 0,
            (Flags(req), Bitmask(mask)) | (Bitmask(mask), Flags(req)) => req & !mask != 0,
            _ => false,
        }
    }
}

impl std::fmt::Display for ArgPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgPattern::Any { type_name } => write!(f, "ANY({type_name})"),
            ArgPattern::Const(v) => write!(f, "{v}"),
            ArgPattern::Var { name, .. } => write!(f, "{name}"),
            ArgPattern::Flags(bits) => write!(f, "flags({bits:#x})"),
            ArgPattern::Bitmask(bits) => write!(f, "bitmask({bits:#x})"),
            ArgPattern::OutParam { name, .. } => write!(f, "&{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_signed() {
        assert_eq!(Value::from_i64(-1).as_i64(), -1);
        assert_eq!(Value::from_i64(-1), Value(u64::MAX));
        assert_eq!(Value::from_i64(i64::MIN).as_i64(), i64::MIN);
    }

    #[test]
    fn value_display_signs_small_negatives() {
        assert_eq!(Value::from_i64(-1).to_string(), "-1");
        assert_eq!(Value::from_i64(7).to_string(), "7");
        assert_eq!(
            Value(u64::MAX - 10_000).to_string(),
            format!("{}", u64::MAX - 10_000)
        );
    }

    #[test]
    fn flags_is_minimal_bitfield() {
        let p = ArgPattern::Flags(0b0110);
        assert!(p.matches_static(Value(0b0110)));
        assert!(p.matches_static(Value(0b1111)));
        assert!(!p.matches_static(Value(0b0100)));
        assert!(!p.matches_static(Value(0)));
    }

    #[test]
    fn bitmask_is_maximal_bitfield() {
        let p = ArgPattern::Bitmask(0b0110);
        assert!(p.matches_static(Value(0)));
        assert!(p.matches_static(Value(0b0010)));
        assert!(p.matches_static(Value(0b0110)));
        assert!(!p.matches_static(Value(0b1000)));
        assert!(!p.matches_static(Value(0b0111)));
    }

    #[test]
    fn const_matches_exactly() {
        let p = ArgPattern::Const(Value::from_i64(-1));
        assert!(p.matches_static(Value::from_i64(-1)));
        assert!(!p.matches_static(Value::NULL));
    }

    #[test]
    fn wildcard_and_vars_match_statically() {
        for v in [Value(0), Value(42), Value(u64::MAX)] {
            assert!(ArgPattern::any_ptr().matches_static(v));
            assert!(ArgPattern::Var {
                index: 0,
                name: "x".into()
            }
            .matches_static(v));
            assert!(ArgPattern::OutParam {
                index: 1,
                name: "e".into()
            }
            .matches_static(v));
        }
    }

    #[test]
    fn disjointness_is_decided_only_for_concrete_pairs() {
        let c0 = ArgPattern::Const(Value(0));
        let c1 = ArgPattern::Const(Value(1));
        let any = ArgPattern::any_ptr();
        let var = ArgPattern::Var {
            index: 0,
            name: "x".into(),
        };
        // Distinct constants are disjoint; identical ones are not.
        assert!(c0.disjoint_with(&c1));
        assert!(c1.disjoint_with(&c0));
        assert!(!c0.disjoint_with(&ArgPattern::Const(Value(0))));
        // Wildcards and variables overlap everything.
        assert!(!any.disjoint_with(&c0));
        assert!(!var.disjoint_with(&c1));
        // Const 0 cannot set the required flag bit.
        assert!(c0.disjoint_with(&ArgPattern::Flags(0b1)));
        assert!(!c1.disjoint_with(&ArgPattern::Flags(0b1)));
        // Const 8 has a bit outside bitmask 0b0110.
        assert!(ArgPattern::Const(Value(8)).disjoint_with(&ArgPattern::Bitmask(0b0110)));
        assert!(!ArgPattern::Const(Value(0b0010)).disjoint_with(&ArgPattern::Bitmask(0b0110)));
        // flags requires a bit the bitmask forbids.
        assert!(ArgPattern::Flags(0b1000).disjoint_with(&ArgPattern::Bitmask(0b0110)));
        assert!(!ArgPattern::Flags(0b0100).disjoint_with(&ArgPattern::Bitmask(0b0110)));
        // Two flags always overlap (union), two bitmasks always
        // overlap (zero).
        assert!(!ArgPattern::Flags(0b01).disjoint_with(&ArgPattern::Flags(0b10)));
        assert!(!ArgPattern::Bitmask(0b01).disjoint_with(&ArgPattern::Bitmask(0b10)));
    }

    #[test]
    fn var_index_extraction() {
        assert_eq!(
            ArgPattern::Var {
                index: 3,
                name: "x".into()
            }
            .var_index(),
            Some(3)
        );
        assert_eq!(
            ArgPattern::OutParam {
                index: 1,
                name: "e".into()
            }
            .var_index(),
            Some(1)
        );
        assert_eq!(ArgPattern::Const(Value(1)).var_index(), None);
        assert_eq!(ArgPattern::any_ptr().var_index(), None);
    }
}
