//! A typed Rust builder DSL for TESLA assertions.
//!
//! The simulated substrates (`tesla-sim-kernel`, `tesla-sim-ssl`,
//! `tesla-sim-gui`) register their assertions programmatically with
//! this builder instead of parsing surface text, exactly as the
//! paper's analyser would after macro expansion. The builder and the
//! parser produce identical [`Assertion`] values.
//!
//! ```
//! use tesla_spec::{call, AssertionBuilder};
//!
//! let a = AssertionBuilder::within("sopoll_generic")
//!     .previously(
//!         call("mac_socket_check_poll").any_ptr().arg_var("so").returns(0),
//!     )
//!     .build()
//!     .unwrap();
//! assert_eq!(a.variables, vec!["so".to_string()]);
//! ```

use crate::ast::{
    Assertion, BoolOp, Bounds, CallKind, Context, EventExpr, Expr, FieldOp, Modifier, SourceLoc,
    StaticEvent,
};
use crate::value::{ArgPattern, Value};

/// Builder for a function call/return event. Create with [`call`] or
/// [`returnfrom`].
#[derive(Debug, Clone)]
pub struct CallBuilder {
    name: String,
    args: Vec<RawPattern>,
    kind: RawKind,
}

/// Builder for an Objective-C-style message event. Create with
/// [`msg_send`].
#[derive(Debug, Clone)]
pub struct MsgBuilder {
    receiver: RawPattern,
    selector: String,
    args: Vec<RawPattern>,
    kind: RawKind,
}

/// Builder for a structure-field-assignment event. Create with
/// [`field_assign`].
#[derive(Debug, Clone)]
pub struct FieldBuilder {
    struct_name: String,
    field_name: String,
    object: RawPattern,
    op: FieldOp,
    value: RawPattern,
}

#[derive(Debug, Clone)]
enum RawKind {
    Entry,
    Exit,
    ExitWithReturn(RawPattern),
}

/// A pattern whose variable indices have not yet been assigned; the
/// final [`AssertionBuilder::build`] pass numbers variables by first
/// appearance, matching the parser.
#[derive(Debug, Clone)]
enum RawPattern {
    Any(String),
    Const(Value),
    Var(String),
    Flags(u64),
    Bitmask(u64),
    OutParam(String),
}

/// Begin a function event: `call("f")` (further shaped by the
/// builder's `.returns(v)` / `.entry()` / argument methods).
pub fn call(name: &str) -> CallBuilder {
    CallBuilder {
        name: name.to_string(),
        args: Vec::new(),
        kind: RawKind::Exit,
    }
}

/// A `returnfrom(f(...))` event (function exit, return unmatched).
pub fn returnfrom(name: &str) -> CallBuilder {
    CallBuilder {
        name: name.to_string(),
        args: Vec::new(),
        kind: RawKind::Exit,
    }
}

/// Begin a message event `[receiver selector ...]`; receiver defaults
/// to `ANY(id)`.
pub fn msg_send(selector: &str) -> MsgBuilder {
    MsgBuilder {
        receiver: RawPattern::Any("id".into()),
        selector: selector.to_string(),
        args: Vec::new(),
        kind: RawKind::Entry,
    }
}

/// Begin a field-assignment event `struct(obj).field = value`; object
/// and value default to wildcards and simple assignment.
pub fn field_assign(struct_name: &str, field_name: &str) -> FieldBuilder {
    FieldBuilder {
        struct_name: struct_name.to_string(),
        field_name: field_name.to_string(),
        object: RawPattern::Any("ptr".into()),
        op: FieldOp::Assign,
        value: RawPattern::Any("int".into()),
    }
}

/// `ATLEAST(n, ...)`: at least `n` events drawn from `exprs` in any
/// order (fig. 8).
pub fn atleast(n: usize, exprs: Vec<ExprBuilder>) -> ExprBuilder {
    ExprBuilder(RawExpr::AtLeast(
        n,
        exprs.into_iter().map(|e| e.0).collect(),
    ))
}

macro_rules! arg_methods {
    () => {
        /// Append an `ANY(ptr)` wildcard argument.
        #[must_use]
        pub fn any_ptr(mut self) -> Self {
            self.args.push(RawPattern::Any("ptr".into()));
            self
        }

        /// Append an `ANY(type)` wildcard argument.
        #[must_use]
        pub fn any(mut self, type_name: &str) -> Self {
            self.args.push(RawPattern::Any(type_name.into()));
            self
        }

        /// Append a constant argument.
        #[must_use]
        pub fn arg_const(mut self, v: impl Into<Value>) -> Self {
            self.args.push(RawPattern::Const(v.into()));
            self
        }

        /// Append a named-variable argument (bound from the assertion
        /// scope).
        #[must_use]
        pub fn arg_var(mut self, name: &str) -> Self {
            self.args.push(RawPattern::Var(name.into()));
            self
        }

        /// Append a `flags(bits)` (minimal bitfield) argument.
        #[must_use]
        pub fn arg_flags(mut self, bits: u64) -> Self {
            self.args.push(RawPattern::Flags(bits));
            self
        }

        /// Append a `bitmask(bits)` (maximal bitfield) argument.
        #[must_use]
        pub fn arg_bitmask(mut self, bits: u64) -> Self {
            self.args.push(RawPattern::Bitmask(bits));
            self
        }

        /// Append an out-parameter (`&name`) argument.
        #[must_use]
        pub fn arg_out(mut self, name: &str) -> Self {
            self.args.push(RawPattern::OutParam(name.into()));
            self
        }

        /// Match the *entry* of the function/method instead of its
        /// return.
        #[must_use]
        pub fn entry(mut self) -> Self {
            self.kind = RawKind::Entry;
            self
        }

        /// Match the return with `== v` on the return value.
        #[must_use]
        pub fn returns(mut self, v: impl Into<Value>) -> Self {
            self.kind = RawKind::ExitWithReturn(RawPattern::Const(v.into()));
            self
        }

        /// Match the return, binding the return value to a variable.
        #[must_use]
        pub fn returns_var(mut self, name: &str) -> Self {
            self.kind = RawKind::ExitWithReturn(RawPattern::Var(name.into()));
            self
        }
    };
}

impl CallBuilder {
    arg_methods!();
}

impl MsgBuilder {
    arg_methods!();

    /// Set the receiver pattern to a named variable.
    #[must_use]
    pub fn receiver_var(mut self, name: &str) -> Self {
        self.receiver = RawPattern::Var(name.into());
        self
    }
}

impl FieldBuilder {
    /// The object whose field is assigned, as a named variable.
    #[must_use]
    pub fn object_var(mut self, name: &str) -> Self {
        self.object = RawPattern::Var(name.into());
        self
    }

    /// The assignment operator (defaults to `=`).
    #[must_use]
    pub fn op(mut self, op: FieldOp) -> Self {
        self.op = op;
        self
    }

    /// Match a constant assigned value.
    #[must_use]
    pub fn value_const(mut self, v: impl Into<Value>) -> Self {
        self.value = RawPattern::Const(v.into());
        self
    }

    /// Bind the assigned value to a variable.
    #[must_use]
    pub fn value_var(mut self, name: &str) -> Self {
        self.value = RawPattern::Var(name.into());
        self
    }

    /// Match the assigned value with a `flags(bits)` minimal
    /// bitfield (e.g. `p.p_flag |= P_SUGID` where other bits may be
    /// set too).
    #[must_use]
    pub fn value_flags(mut self, bits: u64) -> Self {
        self.value = RawPattern::Flags(bits);
        self
    }
}

/// An expression under construction. Obtained from the event builders
/// via `Into<ExprBuilder>` and combined with [`ExprBuilder::or`],
/// [`ExprBuilder::xor`], [`ExprBuilder::then`] and the modifier
/// methods.
#[derive(Debug, Clone)]
pub struct ExprBuilder(RawExpr);

#[derive(Debug, Clone)]
enum RawExpr {
    Call(CallBuilder),
    Msg(MsgBuilder),
    Field(FieldBuilder),
    Site,
    InCallStack(String),
    Seq(Vec<RawExpr>),
    Bool(BoolOp, Vec<RawExpr>),
    AtLeast(usize, Vec<RawExpr>),
    Modified(Modifier, Box<RawExpr>),
}

impl From<CallBuilder> for ExprBuilder {
    fn from(c: CallBuilder) -> ExprBuilder {
        ExprBuilder(RawExpr::Call(c))
    }
}

impl From<MsgBuilder> for ExprBuilder {
    fn from(m: MsgBuilder) -> ExprBuilder {
        ExprBuilder(RawExpr::Msg(m))
    }
}

impl From<FieldBuilder> for ExprBuilder {
    fn from(f: FieldBuilder) -> ExprBuilder {
        ExprBuilder(RawExpr::Field(f))
    }
}

impl ExprBuilder {
    /// The explicit assertion site.
    pub fn site() -> ExprBuilder {
        ExprBuilder(RawExpr::Site)
    }

    /// `incallstack(fn)` site-time predicate.
    pub fn in_callstack(name: &str) -> ExprBuilder {
        ExprBuilder(RawExpr::InCallStack(name.into()))
    }

    /// Inclusive OR with another expression.
    #[must_use]
    pub fn or(self, rhs: impl Into<ExprBuilder>) -> ExprBuilder {
        match self.0 {
            RawExpr::Bool(BoolOp::Or, mut es) => {
                es.push(rhs.into().0);
                ExprBuilder(RawExpr::Bool(BoolOp::Or, es))
            }
            other => ExprBuilder(RawExpr::Bool(BoolOp::Or, vec![other, rhs.into().0])),
        }
    }

    /// Exclusive OR with another expression.
    #[must_use]
    pub fn xor(self, rhs: impl Into<ExprBuilder>) -> ExprBuilder {
        match self.0 {
            RawExpr::Bool(BoolOp::Xor, mut es) => {
                es.push(rhs.into().0);
                ExprBuilder(RawExpr::Bool(BoolOp::Xor, es))
            }
            other => ExprBuilder(RawExpr::Bool(BoolOp::Xor, vec![other, rhs.into().0])),
        }
    }

    /// Sequence: this expression then `rhs`.
    #[must_use]
    pub fn then(self, rhs: impl Into<ExprBuilder>) -> ExprBuilder {
        match self.0 {
            RawExpr::Seq(mut es) => {
                es.push(rhs.into().0);
                ExprBuilder(RawExpr::Seq(es))
            }
            other => ExprBuilder(RawExpr::Seq(vec![other, rhs.into().0])),
        }
    }

    /// Wrap in `optional(...)`.
    #[must_use]
    pub fn optional(self) -> ExprBuilder {
        ExprBuilder(RawExpr::Modified(Modifier::Optional, Box::new(self.0)))
    }

    /// Wrap in `strict(...)`.
    #[must_use]
    pub fn strict(self) -> ExprBuilder {
        ExprBuilder(RawExpr::Modified(Modifier::Strict, Box::new(self.0)))
    }

    /// Wrap in `caller(...)` (caller-side instrumentation).
    #[must_use]
    pub fn caller(self) -> ExprBuilder {
        ExprBuilder(RawExpr::Modified(Modifier::Caller, Box::new(self.0)))
    }

    /// Wrap in `callee(...)` (callee-side instrumentation).
    #[must_use]
    pub fn callee(self) -> ExprBuilder {
        ExprBuilder(RawExpr::Modified(Modifier::Callee, Box::new(self.0)))
    }

    /// Wrap in `conditional(...)`.
    #[must_use]
    pub fn conditional(self) -> ExprBuilder {
        ExprBuilder(RawExpr::Modified(Modifier::Conditional, Box::new(self.0)))
    }
}

/// Variable-numbering pass shared by all event builders.
struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    fn index(&mut self, name: &str) -> usize {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            i
        } else {
            self.names.push(name.to_string());
            self.names.len() - 1
        }
    }

    fn resolve(&mut self, p: &RawPattern) -> ArgPattern {
        match p {
            RawPattern::Any(t) => ArgPattern::Any {
                type_name: t.clone(),
            },
            RawPattern::Const(v) => ArgPattern::Const(*v),
            RawPattern::Var(n) => ArgPattern::Var {
                index: self.index(n),
                name: n.clone(),
            },
            RawPattern::Flags(b) => ArgPattern::Flags(*b),
            RawPattern::Bitmask(b) => ArgPattern::Bitmask(*b),
            RawPattern::OutParam(n) => ArgPattern::OutParam {
                index: self.index(n),
                name: n.clone(),
            },
        }
    }

    fn resolve_kind(&mut self, k: &RawKind) -> CallKind {
        match k {
            RawKind::Entry => CallKind::Entry,
            RawKind::Exit => CallKind::Exit,
            RawKind::ExitWithReturn(p) => CallKind::ExitWithReturn(self.resolve(p)),
        }
    }

    fn lower(&mut self, e: &RawExpr) -> Expr {
        match e {
            RawExpr::Call(c) => Expr::Event(EventExpr::FunctionEvent {
                name: c.name.clone(),
                args: c.args.iter().map(|a| self.resolve(a)).collect(),
                kind: self.resolve_kind(&c.kind),
            }),
            RawExpr::Msg(m) => {
                // Invariant (matches the surface grammar): a message
                // event carries exactly one argument pattern per
                // selector colon. Pad with wildcards, drop extras.
                let colons = m.selector.matches(':').count();
                let mut args: Vec<ArgPattern> = m
                    .args
                    .iter()
                    .take(colons)
                    .map(|a| self.resolve(a))
                    .collect();
                while args.len() < colons {
                    args.push(ArgPattern::Any {
                        type_name: "id".into(),
                    });
                }
                Expr::Event(EventExpr::MessageEvent {
                    receiver: self.resolve(&m.receiver),
                    selector: m.selector.clone(),
                    args,
                    kind: self.resolve_kind(&m.kind),
                })
            }
            RawExpr::Field(f) => Expr::Event(EventExpr::FieldAssignEvent {
                struct_name: f.struct_name.clone(),
                field_name: f.field_name.clone(),
                object: self.resolve(&f.object),
                op: f.op,
                value: self.resolve(&f.value),
            }),
            RawExpr::Site => Expr::AssertionSite,
            RawExpr::InCallStack(n) => Expr::InCallStack(n.clone()),
            RawExpr::Seq(es) => Expr::Sequence(es.iter().map(|e| self.lower(e)).collect()),
            RawExpr::Bool(op, es) => Expr::Bool {
                op: *op,
                exprs: es.iter().map(|e| self.lower(e)).collect(),
            },
            RawExpr::AtLeast(n, es) => Expr::AtLeast {
                n: *n,
                exprs: es.iter().map(|e| self.lower(e)).collect(),
            },
            RawExpr::Modified(m, inner) => Expr::Modified {
                modifier: *m,
                expr: Box::new(self.lower(inner)),
            },
        }
    }
}

/// Top-level assertion builder.
#[derive(Debug, Clone)]
pub struct AssertionBuilder {
    name: String,
    context: Context,
    bounds: Bounds,
    expr: Option<RawExpr>,
    loc: SourceLoc,
}

impl AssertionBuilder {
    /// `TESLA_WITHIN(function, ...)`: per-thread, bounded by one
    /// execution of `function`.
    pub fn within(function: &str) -> AssertionBuilder {
        AssertionBuilder {
            name: String::new(),
            context: Context::PerThread,
            bounds: Bounds::within(function),
            expr: None,
            loc: SourceLoc::default(),
        }
    }

    /// `TESLA_SYSCALL(...)`: per-thread, bounded by the current system
    /// call (the `amd64_syscall` bound of fig. 9).
    pub fn syscall() -> AssertionBuilder {
        AssertionBuilder::within(crate::parser::SYSCALL_BOUND_FN)
    }

    /// Explicit bounds from arbitrary static events.
    pub fn bounded(start: StaticEvent, end: StaticEvent) -> AssertionBuilder {
        AssertionBuilder {
            name: String::new(),
            context: Context::PerThread,
            bounds: Bounds { start, end },
            expr: None,
            loc: SourceLoc::default(),
        }
    }

    /// Use the global (cross-thread, explicitly synchronised) context.
    #[must_use]
    pub fn global(mut self) -> AssertionBuilder {
        self.context = Context::Global;
        self
    }

    /// Name the assertion (for diagnostics and coverage reports).
    #[must_use]
    pub fn named(mut self, name: &str) -> AssertionBuilder {
        self.name = name.to_string();
        self
    }

    /// Record the source location of the assertion site.
    #[must_use]
    pub fn at(mut self, file: &str, line: u32) -> AssertionBuilder {
        self.loc = SourceLoc {
            file: file.to_string(),
            line,
        };
        self
    }

    /// The assertion body is `previously(expr)`.
    #[must_use]
    pub fn previously(mut self, expr: impl Into<ExprBuilder>) -> AssertionBuilder {
        self.expr = Some(RawExpr::Seq(vec![expr.into().0, RawExpr::Site]));
        self
    }

    /// The assertion body is `eventually(expr)`.
    #[must_use]
    pub fn eventually(mut self, expr: impl Into<ExprBuilder>) -> AssertionBuilder {
        self.expr = Some(RawExpr::Seq(vec![RawExpr::Site, expr.into().0]));
        self
    }

    /// An explicit body (must reference the site itself, or have one
    /// appended by `Assertion::expr_with_site`).
    #[must_use]
    pub fn body(mut self, expr: impl Into<ExprBuilder>) -> AssertionBuilder {
        self.expr = Some(expr.into().0);
        self
    }

    /// Finalise: number variables and validate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError`] if the assertion is structurally
    /// invalid (no events, several sites on one path, empty bounds).
    pub fn build(self) -> Result<Assertion, crate::SpecError> {
        let raw = self.expr.ok_or(crate::SpecError::EmptyExpression)?;
        let mut vt = VarTable { names: Vec::new() };
        let expr = vt.lower(&raw);
        let name = if self.name.is_empty() {
            format!("assertion@{}", self.loc)
        } else {
            self.name
        };
        let a = Assertion {
            name,
            context: self.context,
            bounds: self.bounds,
            expr,
            variables: vt.names,
            loc: self.loc,
        };
        a.validate()?;
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_assertion;

    #[test]
    fn builder_matches_parser_for_figure_1() {
        let parsed = parse_assertion(
            "TESLA_WITHIN(enclosing_fn, previously(\
                 security_check(ANY(ptr), o, op) == 0))",
        )
        .unwrap();
        let built = AssertionBuilder::within("enclosing_fn")
            .previously(
                call("security_check")
                    .any_ptr()
                    .arg_var("o")
                    .arg_var("op")
                    .returns(0),
            )
            .build()
            .unwrap();
        assert_eq!(parsed.expr, built.expr);
        assert_eq!(parsed.variables, built.variables);
        assert_eq!(parsed.bounds, built.bounds);
        assert_eq!(parsed.context, built.context);
    }

    #[test]
    fn builder_matches_parser_for_disjunction() {
        let parsed = parse_assertion(
            "TESLA_SYSCALL_PREVIOUSLY(
               mac_kld_check_load(ANY(ptr), vp) == 0
               || mac_vnode_check_open(ANY(ptr), vp, ANY(int)) == 0)",
        )
        .unwrap();
        let built = AssertionBuilder::syscall()
            .previously(
                ExprBuilder::from(
                    call("mac_kld_check_load")
                        .any_ptr()
                        .arg_var("vp")
                        .returns(0),
                )
                .or(call("mac_vnode_check_open")
                    .any_ptr()
                    .arg_var("vp")
                    .any("int")
                    .returns(0)),
            )
            .build()
            .unwrap();
        assert_eq!(parsed.expr, built.expr);
        assert_eq!(parsed.variables, built.variables);
    }

    #[test]
    fn builder_supports_messages_and_atleast() {
        let a = AssertionBuilder::within("startDrawing")
            .previously(atleast(
                0,
                vec![
                    msg_send("push").into(),
                    msg_send("pop").into(),
                    msg_send("drawWithFrame:inView:")
                        .any("NSRect")
                        .any("id")
                        .into(),
                ],
            ))
            .build()
            .unwrap();
        assert_eq!(a.expr.count_events(), 3);
    }

    #[test]
    fn builder_supports_fields_and_eventually() {
        let a = AssertionBuilder::within("sys_setuid")
            .named("sugid")
            .eventually(
                field_assign("proc", "p_flag")
                    .object_var("p")
                    .op(FieldOp::OrAssign)
                    .value_const(0x100u64),
            )
            .build()
            .unwrap();
        assert_eq!(a.name, "sugid");
        assert_eq!(a.variables, vec!["p".to_string()]);
        // eventually: site first.
        match &a.expr {
            Expr::Sequence(es) => assert_eq!(es[0], Expr::AssertionSite),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(AssertionBuilder::within("f").build().is_err());
    }

    #[test]
    fn or_chains_flatten() {
        let e = ExprBuilder::from(call("a").returns(0))
            .or(call("b").returns(0))
            .or(call("c").returns(0));
        let a = AssertionBuilder::within("f").previously(e).build().unwrap();
        match &a.expr {
            Expr::Sequence(es) => match &es[0] {
                Expr::Bool { exprs, .. } => assert_eq!(exprs.len(), 3),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_params_and_return_binding() {
        let a = AssertionBuilder::within("f")
            .previously(call("getresult").arg_out("err").returns_var("rv"))
            .build()
            .unwrap();
        assert_eq!(a.variables, vec!["err".to_string(), "rv".to_string()]);
    }

    #[test]
    fn modifiers_compose() {
        let a = AssertionBuilder::within("f")
            .previously(ExprBuilder::from(call("g").returns(0)).strict().optional())
            .build()
            .unwrap();
        assert!(a.expr.has_modifier(Modifier::Strict));
        assert!(a.expr.has_modifier(Modifier::Optional));
    }
}
