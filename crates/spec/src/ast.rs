//! Abstract syntax for TESLA assertions (figure 5 of the paper).
//!
//! The surface macros (`TESLA_WITHIN`, `previously`, `eventually`,
//! `TSEQUENCE`, …) are conveniences over this tree; the paper notes
//! they expand to reserved-namespace symbols such as
//! `__tesla_sequence`. This crate models the expanded form directly.

use crate::value::{ArgPattern, Value};
use serde::{Deserialize, Serialize};

/// Where an assertion's automaton state lives and how events are
/// serialised (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Context {
    /// Thread-local store; event serialisation is implicit because a
    /// thread is already a serial context. No synchronisation needed.
    PerThread,
    /// Global store shared by all threads; libtesla imposes an explicit
    /// (lock-based) serialisation of events, which costs more (fig. 12).
    Global,
}

impl std::fmt::Display for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Context::PerThread => write!(f, "per-thread"),
            Context::Global => write!(f, "global"),
        }
    }
}

/// A *static* event usable as a temporal bound (§3.3): only function
/// entry and exit, with no argument matching, so bounds can be
/// recognised without dynamic state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticEvent {
    /// `call(fn)` — entry into `fn`.
    Call(String),
    /// `returnfrom(fn)` — exit from `fn`.
    ReturnFrom(String),
}

impl StaticEvent {
    /// The function the bound refers to.
    pub fn function(&self) -> &str {
        match self {
            StaticEvent::Call(f) | StaticEvent::ReturnFrom(f) => f,
        }
    }
}

/// Temporal bounds: automaton instances are created («init») at
/// `start` and finalised («cleanup») at `end` (§3.3, §4.4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bounds {
    /// The «init» static event.
    pub start: StaticEvent,
    /// The «cleanup» static event.
    pub end: StaticEvent,
}

impl Bounds {
    /// `TESLA_WITHIN(fn, ...)`: bounds spanning one execution of `fn`.
    pub fn within(function: &str) -> Bounds {
        Bounds {
            start: StaticEvent::Call(function.to_string()),
            end: StaticEvent::ReturnFrom(function.to_string()),
        }
    }
}

/// Is a function event its entry, its exit, or an exit with a matched
/// return value (`f(args) == val`)?
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// `call(f(args))` — function entry.
    Entry,
    /// `returnfrom(f(args))` — function exit, return value unmatched.
    Exit,
    /// `f(args) == v` — function exit with the return value matched
    /// against a pattern (usually a constant such as `0` or `1`).
    ExitWithReturn(ArgPattern),
}

/// Structure-field assignment operators (§3.4.1): simple assignment
/// and the compound forms (`s.f += 1`, `s.f++`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldOp {
    /// `s.f = v`
    Assign,
    /// `s.f += v`
    AddAssign,
    /// `s.f -= v`
    SubAssign,
    /// `s.f |= v`
    OrAssign,
    /// `s.f &= v`
    AndAssign,
}

impl std::fmt::Display for FieldOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FieldOp::Assign => "=",
            FieldOp::AddAssign => "+=",
            FieldOp::SubAssign => "-=",
            FieldOp::OrAssign => "|=",
            FieldOp::AndAssign => "&=",
        };
        write!(f, "{s}")
    }
}

/// A concrete, observable program event (§3.4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventExpr {
    /// A C function call or return with argument patterns.
    FunctionEvent {
        /// Function name.
        name: String,
        /// Patterns for the arguments, in order. May be shorter than
        /// the callee's arity: trailing arguments are unmatched
        /// (equivalent to `ANY`).
        args: Vec<ArgPattern>,
        /// Entry, exit, or exit-with-return-value.
        kind: CallKind,
    },
    /// Assignment to a structure field.
    FieldAssignEvent {
        /// Structure type name (`struct socket` → `socket`).
        struct_name: String,
        /// Field name.
        field_name: String,
        /// Which object's field; usually a variable or `ANY`.
        object: ArgPattern,
        /// Assignment operator.
        op: FieldOp,
        /// Pattern for the assigned value (the right-hand side).
        value: ArgPattern,
    },
    /// An Objective-C-style message send: `[receiver selector: args]`
    /// (§3.5.3, fig. 8). Dispatched dynamically, so instrumentation is
    /// interposed on the message-send path rather than woven at compile
    /// time (§4.3).
    MessageEvent {
        /// Pattern for the receiver (`ANY(id)` is typical).
        receiver: ArgPattern,
        /// Full selector, colons included (`drawWithFrame:inView:`).
        selector: String,
        /// Patterns for the message arguments.
        args: Vec<ArgPattern>,
        /// Entry (send) or exit (return) of the method.
        kind: CallKind,
    },
}

impl EventExpr {
    /// The variables referenced by this event's patterns, in pattern
    /// order (argument patterns first, then the return pattern).
    pub fn referenced_vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        {
            let mut push = |p: &ArgPattern| {
                if let Some(i) = p.var_index() {
                    out.push(i);
                }
            };
            match self {
                EventExpr::FunctionEvent { args, kind, .. } => {
                    args.iter().for_each(&mut push);
                    if let CallKind::ExitWithReturn(r) = kind {
                        push(r);
                    }
                }
                EventExpr::FieldAssignEvent { object, value, .. } => {
                    push(object);
                    push(value);
                }
                EventExpr::MessageEvent {
                    receiver,
                    args,
                    kind,
                    ..
                } => {
                    push(receiver);
                    args.iter().for_each(&mut push);
                    if let CallKind::ExitWithReturn(r) = kind {
                        push(r);
                    }
                }
            }
        }
        out
    }
}

/// Boolean operators over sub-automata (§3.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolOp {
    /// Inclusive OR (`||`): at least one operand's behaviour occurred.
    /// Implemented as a cross-product automaton, so it is *not* an
    /// error for both to occur.
    Or,
    /// Exclusive OR (`^`): exactly one operand's behaviour occurred.
    Xor,
}

/// Modifiers guiding interpretation and instrumentation (§3.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modifier {
    /// The sub-expression may be skipped entirely.
    Optional,
    /// Instrument in the callee's context (function entry/exit blocks).
    Callee,
    /// Instrument around call sites in callers — required for
    /// libraries that cannot be recompiled.
    Caller,
    /// Unexpected events that match the automaton's alphabet but have
    /// no transition from the current state are violations, instead of
    /// being ignored.
    Strict,
    /// The sub-expression is only checked if its first event occurs.
    Conditional,
}

/// A TESLA expression tree (§3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A concrete program event.
    Event(EventExpr),
    /// The assertion site itself (`TESLA_ASSERTION_SITE`): the moment
    /// control reaches the source location of the assertion, with the
    /// scope's variable values.
    AssertionSite,
    /// Ordered sequence (`TSEQUENCE(e1, e2, ...)`).
    Sequence(Vec<Expr>),
    /// Boolean combination of alternatives.
    Bool {
        /// `||` or `^`.
        op: BoolOp,
        /// Two or more operands.
        exprs: Vec<Expr>,
    },
    /// `ATLEAST(n, e1, e2, ...)` (fig. 8): at least `n` occurrences of
    /// events drawn freely from the listed alternatives, in any order.
    AtLeast {
        /// Minimum number of occurrences (0 = "some or none").
        n: usize,
        /// The event alternatives.
        exprs: Vec<Expr>,
    },
    /// `incallstack(fn)` (fig. 7): a *site-time predicate* — satisfied
    /// iff `fn` is on the current thread's call stack when the
    /// assertion site is reached. Compiles to an assertion-site
    /// transition guarded by a shadow-stack check.
    InCallStack(String),
    /// A modifier applied to a sub-expression.
    Modified {
        /// The modifier.
        modifier: Modifier,
        /// The governed sub-expression.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// `previously(x)` expands to `TSEQUENCE(x, TESLA_ASSERTION_SITE)`
    /// (§3.4.1).
    pub fn previously(inner: Expr) -> Expr {
        Expr::Sequence(vec![inner, Expr::AssertionSite])
    }

    /// `eventually(x)` expands to `TSEQUENCE(TESLA_ASSERTION_SITE, x)`
    /// (§3.4.1).
    pub fn eventually(inner: Expr) -> Expr {
        Expr::Sequence(vec![Expr::AssertionSite, inner])
    }

    /// Count the assertion sites in the tree. Sites replicated across
    /// `||`/`^` branches all refer to the same source location, so for
    /// validation use [`Expr::max_sites_on_path`] instead.
    pub fn count_sites(&self) -> usize {
        match self {
            Expr::Event(_) | Expr::InCallStack(_) => 0,
            Expr::AssertionSite => 1,
            Expr::Sequence(es) | Expr::Bool { exprs: es, .. } | Expr::AtLeast { exprs: es, .. } => {
                es.iter().map(Expr::count_sites).sum()
            }
            Expr::Modified { expr, .. } => expr.count_sites(),
        }
    }

    /// The maximum number of assertion sites along any single execution
    /// path through the expression (branches of `||`/`^` are
    /// alternative paths). A valid assertion has at most one.
    pub fn max_sites_on_path(&self) -> usize {
        match self {
            Expr::Event(_) | Expr::InCallStack(_) => 0,
            Expr::AssertionSite => 1,
            Expr::Sequence(es) => es.iter().map(Expr::max_sites_on_path).sum(),
            Expr::Bool { exprs: es, .. } => {
                es.iter().map(Expr::max_sites_on_path).max().unwrap_or(0)
            }
            // Repetition of a site-containing body would need several
            // sites on one path; count conservatively.
            Expr::AtLeast { exprs: es, .. } => {
                es.iter().map(Expr::max_sites_on_path).max().unwrap_or(0)
            }
            Expr::Modified { expr, .. } => expr.max_sites_on_path(),
        }
    }

    /// Count concrete events in the tree.
    pub fn count_events(&self) -> usize {
        match self {
            Expr::Event(_) => 1,
            // A guard is checked at the site; it contributes behaviour
            // even though it is not a temporal event.
            Expr::InCallStack(_) => 1,
            Expr::AssertionSite => 0,
            Expr::Sequence(es) | Expr::Bool { exprs: es, .. } | Expr::AtLeast { exprs: es, .. } => {
                es.iter().map(Expr::count_events).sum()
            }
            Expr::Modified { expr, .. } => expr.count_events(),
        }
    }

    /// Visit every event in the tree.
    pub fn for_each_event(&self, f: &mut impl FnMut(&EventExpr)) {
        match self {
            Expr::Event(e) => f(e),
            Expr::AssertionSite | Expr::InCallStack(_) => {}
            Expr::Sequence(es) | Expr::Bool { exprs: es, .. } | Expr::AtLeast { exprs: es, .. } => {
                es.iter().for_each(|e| e.for_each_event(f));
            }
            Expr::Modified { expr, .. } => expr.for_each_event(f),
        }
    }

    /// Does the tree (at any depth) carry the given modifier?
    pub fn has_modifier(&self, m: Modifier) -> bool {
        match self {
            Expr::Event(_) | Expr::AssertionSite | Expr::InCallStack(_) => false,
            Expr::Sequence(es) | Expr::Bool { exprs: es, .. } | Expr::AtLeast { exprs: es, .. } => {
                es.iter().any(|e| e.has_modifier(m))
            }
            Expr::Modified { modifier, expr } => *modifier == m || expr.has_modifier(m),
        }
    }
}

/// A source location, for diagnostics (the paper's tooling reports the
/// file and line of the violated assertion).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    /// Source file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.file.is_empty() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

/// A complete TESLA assertion: context, bounds, expression, variable
/// table and provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assertion {
    /// Human-readable name; defaults to `file:line` when parsed from
    /// source.
    pub name: String,
    /// Automaton context (§3.2).
    pub context: Context,
    /// Temporal bounds (§3.3).
    pub bounds: Bounds,
    /// The temporal expression (§3.4).
    pub expr: Expr,
    /// Names of the scope variables referenced by the expression, in
    /// variable-index order. Values for these are captured at the
    /// assertion site.
    pub variables: Vec<String>,
    /// Where the assertion was written.
    pub loc: SourceLoc,
}

impl Assertion {
    /// Validate structural invariants: at least one event, at most one
    /// assertion site, non-empty bound functions.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`crate::SpecError`].
    pub fn validate(&self) -> Result<(), crate::SpecError> {
        if self.bounds.start.function().is_empty() || self.bounds.end.function().is_empty() {
            return Err(crate::SpecError::EmptyBoundFunction);
        }
        if self.expr.count_events() == 0 {
            return Err(crate::SpecError::EmptyExpression);
        }
        let sites = self.expr.max_sites_on_path();
        if sites > 1 {
            return Err(crate::SpecError::MultipleAssertionSites(sites));
        }
        Ok(())
    }

    /// The expression, with an assertion site appended if the
    /// programmer wrote none (an assertion with no explicit site is
    /// treated as `previously(expr)`, matching the macro expansion
    /// rules of §3.4.1).
    pub fn expr_with_site(&self) -> Expr {
        if self.expr.count_sites() == 0 {
            Expr::Sequence(vec![self.expr.clone(), Expr::AssertionSite])
        } else {
            self.expr.clone()
        }
    }
}

/// Convenience: an equality event `f(args) == v` with a constant
/// return value, the most common event form in the paper's assertions.
pub fn call_returns(name: &str, args: Vec<ArgPattern>, ret: i64) -> EventExpr {
    EventExpr::FunctionEvent {
        name: name.to_string(),
        args,
        kind: CallKind::ExitWithReturn(ArgPattern::Const(Value::from_i64(ret))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> Expr {
        Expr::Event(EventExpr::FunctionEvent {
            name: name.into(),
            args: vec![],
            kind: CallKind::Entry,
        })
    }

    fn assertion(expr: Expr) -> Assertion {
        Assertion {
            name: "t".into(),
            context: Context::PerThread,
            bounds: Bounds::within("main"),
            expr,
            variables: vec![],
            loc: SourceLoc::default(),
        }
    }

    #[test]
    fn previously_expands_to_sequence_with_trailing_site() {
        let e = Expr::previously(ev("f"));
        match &e {
            Expr::Sequence(es) => {
                assert_eq!(es.len(), 2);
                assert_eq!(es[1], Expr::AssertionSite);
            }
            _ => panic!("expected sequence"),
        }
        assert_eq!(e.count_sites(), 1);
    }

    #[test]
    fn eventually_expands_to_sequence_with_leading_site() {
        let e = Expr::eventually(ev("f"));
        match &e {
            Expr::Sequence(es) => assert_eq!(es[0], Expr::AssertionSite),
            _ => panic!("expected sequence"),
        }
    }

    #[test]
    fn validate_rejects_empty_expression() {
        let a = assertion(Expr::AssertionSite);
        assert_eq!(a.validate(), Err(crate::SpecError::EmptyExpression));
    }

    #[test]
    fn validate_rejects_multiple_sites() {
        let a = assertion(Expr::Sequence(vec![
            Expr::AssertionSite,
            ev("f"),
            Expr::AssertionSite,
        ]));
        assert_eq!(
            a.validate(),
            Err(crate::SpecError::MultipleAssertionSites(2))
        );
    }

    #[test]
    fn validate_accepts_previously() {
        let a = assertion(Expr::previously(ev("f")));
        assert!(a.validate().is_ok());
    }

    #[test]
    fn expr_with_site_appends_when_missing() {
        let a = assertion(ev("f"));
        assert_eq!(a.expr.count_sites(), 0);
        assert_eq!(a.expr_with_site().count_sites(), 1);
        // Already-sited expressions are unchanged.
        let b = assertion(Expr::previously(ev("f")));
        assert_eq!(b.expr_with_site(), b.expr);
    }

    #[test]
    fn count_events_recurses() {
        let e = Expr::Bool {
            op: BoolOp::Or,
            exprs: vec![ev("a"), Expr::Sequence(vec![ev("b"), ev("c")])],
        };
        assert_eq!(e.count_events(), 3);
    }

    #[test]
    fn has_modifier_finds_nested() {
        let e = Expr::Sequence(vec![Expr::Modified {
            modifier: Modifier::Strict,
            expr: Box::new(ev("a")),
        }]);
        assert!(e.has_modifier(Modifier::Strict));
        assert!(!e.has_modifier(Modifier::Optional));
    }

    #[test]
    fn referenced_vars_covers_return_pattern() {
        let e = EventExpr::FunctionEvent {
            name: "f".into(),
            args: vec![
                ArgPattern::any_ptr(),
                ArgPattern::Var {
                    index: 2,
                    name: "o".into(),
                },
            ],
            kind: CallKind::ExitWithReturn(ArgPattern::Var {
                index: 0,
                name: "r".into(),
            }),
        };
        assert_eq!(e.referenced_vars(), vec![2, 0]);
    }

    #[test]
    fn bounds_within_uses_entry_and_exit() {
        let b = Bounds::within("syscall");
        assert_eq!(b.start, StaticEvent::Call("syscall".into()));
        assert_eq!(b.end, StaticEvent::ReturnFrom("syscall".into()));
    }
}
