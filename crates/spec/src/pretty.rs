//! Pretty-printing of assertions back to the figure-5 surface syntax.
//!
//! The printer and [`crate::parser`] round-trip: printing an assertion
//! and re-parsing it yields a structurally equal assertion (checked by
//! a property test in the crate's test suite). This is the format used
//! in diagnostics and in `.tesla` manifest dumps.

use crate::ast::{Assertion, BoolOp, CallKind, Context, EventExpr, Expr, Modifier, StaticEvent};
use std::fmt;

impl fmt::Display for StaticEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticEvent::Call(name) => write!(f, "call({name})"),
            StaticEvent::ReturnFrom(name) => write!(f, "returnfrom({name})"),
        }
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modifier::Optional => "optional",
            Modifier::Callee => "callee",
            Modifier::Caller => "caller",
            Modifier::Strict => "strict",
            Modifier::Conditional => "conditional",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::FunctionEvent { name, args, kind } => {
                let write_args = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                };
                match kind {
                    CallKind::Entry => {
                        write!(f, "call(")?;
                        write_args(f)?;
                        write!(f, ")")
                    }
                    CallKind::Exit => {
                        write!(f, "returnfrom(")?;
                        write_args(f)?;
                        write!(f, ")")
                    }
                    CallKind::ExitWithReturn(ret) => {
                        write_args(f)?;
                        write!(f, " == {ret}")
                    }
                }
            }
            EventExpr::FieldAssignEvent {
                struct_name,
                field_name,
                object,
                op,
                value,
            } => {
                if struct_name.is_empty() {
                    write!(f, "{object}.{field_name} {op} {value}")
                } else {
                    write!(f, "{struct_name}({object}).{field_name} {op} {value}")
                }
            }
            EventExpr::MessageEvent {
                receiver,
                selector,
                args,
                kind,
            } => {
                let write_msg = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    write!(f, "[{receiver} ")?;
                    if args.is_empty() {
                        write!(f, "{selector}")?;
                    } else {
                        for (part, arg) in selector.split_terminator(':').zip(args.iter()) {
                            write!(f, "{part}: {arg} ")?;
                        }
                    }
                    write!(f, "]")
                };
                match kind {
                    CallKind::Entry => write_msg(f),
                    CallKind::Exit | CallKind::ExitWithReturn(_) => {
                        write!(f, "returnfrom(")?;
                        write_msg(f)?;
                        write!(f, ")")
                    }
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Event(e) => write!(f, "{e}"),
            Expr::AssertionSite => write!(f, "TESLA_ASSERTION_SITE"),
            Expr::InCallStack(name) => write!(f, "incallstack({name})"),
            Expr::Sequence(es) => {
                write!(f, "TSEQUENCE(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Bool { op, exprs } => {
                let sep = match op {
                    BoolOp::Or => " || ",
                    BoolOp::Xor => " ^ ",
                };
                // Parenthesise via TSEQUENCE-free grouping: operands
                // that are themselves boolean get a strict() wrapper in
                // the grammar; we print nested bools inside TSEQUENCE
                // of one element to preserve grouping.
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "{sep}")?;
                    }
                    if matches!(e, Expr::Bool { .. }) {
                        write!(f, "TSEQUENCE({e})")?;
                    } else {
                        write!(f, "{e}")?;
                    }
                }
                Ok(())
            }
            Expr::AtLeast { n, exprs } => {
                write!(f, "ATLEAST({n}")?;
                for e in exprs {
                    write!(f, ", {e}")?;
                }
                write!(f, ")")
            }
            Expr::Modified { modifier, expr } => write!(f, "{modifier}({expr})"),
        }
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = match self.context {
            Context::Global => "global",
            Context::PerThread => "perthread",
        };
        write!(
            f,
            "TESLA_ASSERT({ctx}, {}, {}, {})",
            self.bounds.start, self.bounds.end, self.expr
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_assertion, parse_assertion_with_consts};
    use std::collections::HashMap;

    /// Printing then re-parsing must reproduce the same structure
    /// (variable numbering may be re-derived but is deterministic).
    fn roundtrip(src: &str) {
        let a = parse_assertion(src).unwrap();
        let printed = a.to_string();
        let b = parse_assertion(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        assert_eq!(a.context, b.context, "context mismatch for {printed}");
        assert_eq!(a.bounds, b.bounds, "bounds mismatch for {printed}");
        assert_eq!(a.expr, b.expr, "expr mismatch for {printed}");
        assert_eq!(a.variables, b.variables, "variables mismatch for {printed}");
    }

    #[test]
    fn roundtrips_paper_assertions() {
        roundtrip(
            "TESLA_WITHIN(enclosing_fn, previously(\
                 security_check(ANY(ptr), o, op) == 0))",
        );
        roundtrip("TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)");
        roundtrip(
            "TESLA_WITHIN(main, previously(\
               EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1))",
        );
        roundtrip(
            "TESLA_SYSCALL(incallstack(ufs_readdir) \
               || previously(mac_vnode_check_read(ANY(ptr), vp) == 0))",
        );
        roundtrip(
            "TESLA_WITHIN(startDrawing, previously(ATLEAST(0, \
               [ANY(id) push], [ANY(id) pop], \
               [ANY(id) drawWithFrame: ANY(NSRect) inView: ANY(id)])))",
        );
        roundtrip("TESLA_GLOBAL(call(a), returnfrom(b), eventually(audit(x)))");
        roundtrip("TESLA_WITHIN(f, strict(a() ^ b()))");
        roundtrip("TESLA_WITHIN(f, optional(socket(so).so_qstate = 5))");
        roundtrip("TESLA_WITHIN(f, TSEQUENCE(s.count += 1, TESLA_ASSERTION_SITE))");
    }

    #[test]
    fn flags_print_as_hex_and_reparse() {
        let consts: HashMap<String, u64> = [("IO_NOMACCHECK".to_string(), 0x80u64)].into();
        let a = parse_assertion_with_consts(
            "TESLA_WITHIN(f, previously(call(vn_rdwr(vp, flags(IO_NOMACCHECK)))))",
            &consts,
        )
        .unwrap();
        let printed = a.to_string();
        assert!(printed.contains("flags(0x80)"), "printed: {printed}");
        let b = parse_assertion(&printed).unwrap();
        assert_eq!(a.expr, b.expr);
    }
}
