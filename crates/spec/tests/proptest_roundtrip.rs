//! Property tests: every assertion the builder can construct prints
//! to surface syntax that re-parses to the identical assertion
//! (expression tree, variable table, bounds, context).

use proptest::prelude::*;
use tesla_spec::{
    call, field_assign, msg_send, parse_assertion, AssertionBuilder, ExprBuilder, FieldOp,
};

const VARS: [&str; 4] = ["vp", "so", "cred", "op_arg"];
const FNS: [&str; 5] = [
    "mac_check",
    "vn_rdwr",
    "security_check",
    "audit_event",
    "EVP_VerifyFinal",
];
const SELS: [&str; 3] = ["push", "pop", "drawWithFrame:inView:"];
const STRUCTS: [&str; 2] = ["socket", "proc"];
const FIELDS: [&str; 2] = ["so_qstate", "p_flag"];

/// A recipe for one event (kept as data so the strategy stays
/// `Clone`).
#[derive(Debug, Clone)]
enum EventRecipe {
    Call {
        f: usize,
        args: Vec<ArgRecipe>,
        ret: Option<RetRecipe>,
        entry: bool,
    },
    Msg {
        s: usize,
        n_args: usize,
    },
    Field {
        st: usize,
        fi: usize,
        var: usize,
        op: u8,
        value: i64,
    },
}

#[derive(Debug, Clone)]
enum ArgRecipe {
    Any,
    Const(i64),
    Var(usize),
    Flags(u64),
    Bitmask(u64),
    Out(usize),
}

#[derive(Debug, Clone)]
enum RetRecipe {
    Const(i64),
    Var(usize),
}

#[derive(Debug, Clone)]
enum ExprRecipe {
    Event(EventRecipe),
    Or(Vec<ExprRecipe>),
    Xor(Vec<ExprRecipe>),
    Seq(Vec<ExprRecipe>),
    AtLeast(usize, Vec<ExprRecipe>),
    Optional(Box<ExprRecipe>),
    Strict(Box<ExprRecipe>),
    Caller(Box<ExprRecipe>),
}

fn arg_strategy() -> impl Strategy<Value = ArgRecipe> {
    prop_oneof![
        Just(ArgRecipe::Any),
        (-4i64..100).prop_map(ArgRecipe::Const),
        (0usize..VARS.len()).prop_map(ArgRecipe::Var),
        (1u64..0xffff).prop_map(ArgRecipe::Flags),
        (1u64..0xffff).prop_map(ArgRecipe::Bitmask),
        (0usize..VARS.len()).prop_map(ArgRecipe::Out),
    ]
}

fn event_strategy() -> impl Strategy<Value = EventRecipe> {
    prop_oneof![
        (
            0usize..FNS.len(),
            proptest::collection::vec(arg_strategy(), 0..3),
            proptest::option::of(prop_oneof![
                (-2i64..5).prop_map(RetRecipe::Const),
                (0usize..VARS.len()).prop_map(RetRecipe::Var),
            ]),
            any::<bool>(),
        )
            .prop_map(|(f, args, ret, entry)| EventRecipe::Call {
                f,
                args,
                ret,
                entry
            }),
        (0usize..SELS.len(), 0usize..3).prop_map(|(s, n_args)| EventRecipe::Msg { s, n_args }),
        (
            0usize..STRUCTS.len(),
            0usize..FIELDS.len(),
            0usize..VARS.len(),
            0u8..5,
            0i64..64
        )
            .prop_map(|(st, fi, var, op, value)| EventRecipe::Field {
                st,
                fi,
                var,
                op,
                value
            }),
    ]
}

fn expr_strategy() -> impl Strategy<Value = ExprRecipe> {
    let leaf = event_strategy().prop_map(ExprRecipe::Event);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(ExprRecipe::Or),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(ExprRecipe::Xor),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(ExprRecipe::Seq),
            (0usize..3, proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, es)| ExprRecipe::AtLeast(n, es)),
            inner
                .clone()
                .prop_map(|e| ExprRecipe::Optional(Box::new(e))),
            inner.clone().prop_map(|e| ExprRecipe::Strict(Box::new(e))),
            inner.prop_map(|e| ExprRecipe::Caller(Box::new(e))),
        ]
    })
}

fn build_event(r: &EventRecipe) -> ExprBuilder {
    match r {
        EventRecipe::Call {
            f,
            args,
            ret,
            entry,
        } => {
            let mut c = call(FNS[*f]);
            for a in args {
                c = match a {
                    ArgRecipe::Any => c.any_ptr(),
                    ArgRecipe::Const(v) => c.arg_const(*v),
                    ArgRecipe::Var(i) => c.arg_var(VARS[*i]),
                    ArgRecipe::Flags(b) => c.arg_flags(*b),
                    ArgRecipe::Bitmask(b) => c.arg_bitmask(*b),
                    ArgRecipe::Out(i) => c.arg_out(VARS[*i]),
                };
            }
            match (ret, entry) {
                (Some(RetRecipe::Const(v)), _) => c.returns(*v).into(),
                (Some(RetRecipe::Var(i)), _) => c.returns_var(VARS[*i]).into(),
                (None, true) => c.entry().into(),
                (None, false) => c.into(),
            }
        }
        EventRecipe::Msg { s, n_args } => {
            let sel = SELS[*s];
            // Argument count must match the selector's colon count for
            // the printed form to re-parse.
            let colons = sel.matches(':').count();
            let mut m = msg_send(sel);
            for _ in 0..(*n_args).min(colons) {
                m = m.any("id");
            }
            m.into()
        }
        EventRecipe::Field {
            st,
            fi,
            var,
            op,
            value,
        } => {
            let op = match op {
                0 => FieldOp::Assign,
                1 => FieldOp::AddAssign,
                2 => FieldOp::SubAssign,
                3 => FieldOp::OrAssign,
                _ => FieldOp::AndAssign,
            };
            field_assign(STRUCTS[*st], FIELDS[*fi])
                .object_var(VARS[*var])
                .op(op)
                .value_const(*value)
                .into()
        }
    }
}

fn build_expr(r: &ExprRecipe) -> ExprBuilder {
    match r {
        ExprRecipe::Event(e) => build_event(e),
        ExprRecipe::Or(es) => {
            let mut it = es.iter();
            let mut out = build_expr(it.next().unwrap());
            for e in it {
                out = out.or(build_expr(e));
            }
            out
        }
        ExprRecipe::Xor(es) => {
            let mut it = es.iter();
            let mut out = build_expr(it.next().unwrap());
            for e in it {
                out = out.xor(build_expr(e));
            }
            out
        }
        ExprRecipe::Seq(es) => {
            let mut it = es.iter();
            let mut out = build_expr(it.next().unwrap());
            for e in it {
                out = out.then(build_expr(e));
            }
            out
        }
        ExprRecipe::AtLeast(n, es) => tesla_spec::atleast(*n, es.iter().map(build_expr).collect()),
        ExprRecipe::Optional(e) => build_expr(e).optional(),
        ExprRecipe::Strict(e) => build_expr(e).strict(),
        ExprRecipe::Caller(e) => build_expr(e).caller(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(recipe in expr_strategy(), global: bool) {
        let mut b = AssertionBuilder::within("enclosing_fn").named("prop");
        if global {
            b = b.global();
        }
        let a = b.previously(build_expr(&recipe)).build().unwrap();
        let printed = a.to_string();
        let back = parse_assertion(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        prop_assert_eq!(&a.expr, &back.expr, "printed: {}", printed);
        prop_assert_eq!(&a.variables, &back.variables, "printed: {}", printed);
        prop_assert_eq!(a.bounds, back.bounds);
        prop_assert_eq!(a.context, back.context);
    }

    /// Every builder-produced assertion validates and (state-cap
    /// permitting) compiles to an automaton whose symbol patterns
    /// reference only declared variables.
    #[test]
    fn built_assertions_validate(recipe in expr_strategy()) {
        let a = AssertionBuilder::within("f")
            .previously(build_expr(&recipe))
            .build()
            .unwrap();
        prop_assert!(a.validate().is_ok());
        let n_vars = a.variables.len();
        a.expr.for_each_event(&mut |e| {
            for v in e.referenced_vars() {
                assert!(v < n_vars, "variable index {v} out of range {n_vars}");
            }
        });
    }
}
