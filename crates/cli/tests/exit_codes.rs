//! The CLI exit-status contract, end to end against the real binary:
//!
//! * `0` — clean: the command did its work, no denied diagnostics;
//! * `1` — diagnostics at warning level or above under `--deny`
//!   (the command itself worked);
//! * `2` — usage, I/O, or build/run failure.
//!
//! Scripts and the CI lint-smoke job match on these values, so they
//! are pinned here rather than left to drift.

use std::path::PathBuf;
use std::process::{Command, Output};

fn example(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/minic")
        .join(name);
    p.to_str().expect("utf-8 path").to_string()
}

fn tesla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tesla"))
        .args(args)
        .output()
        .expect("spawn tesla")
}

fn assert_exit(out: &Output, want: i32) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn clean_lint_exits_zero_even_with_deny() {
    let out = tesla(&["lint", "--deny", &example("safe.c")]);
    assert_exit(&out, 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
}

#[test]
fn lint_findings_exit_zero_without_deny_and_one_with() {
    let path = example("lint_pathologies.c");
    // Findings alone never fail the command…
    let out = tesla(&["lint", &path]);
    assert_exit(&out, 0);
    // …but `--deny` turns them into exit status 1, and the findings
    // still reach stdout in the requested format.
    let out = tesla(&["lint", "--deny", "--format=sarif", &path]);
    assert_exit(&out, 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in ["TESLA-L001", "TESLA-L002", "TESLA-L003", "TESLA-L004"] {
        let rule = format!("\"ruleId\": \"{code}\"");
        assert_eq!(stdout.matches(&rule).count(), 1, "{code} in {stdout}");
    }
}

#[test]
fn build_lint_deny_exits_one_on_pathologies() {
    let out = tesla(&["build", "--lint=deny", &example("lint_pathologies.c")]);
    assert_exit(&out, 1);
    // Plain --lint reports on stderr but exits clean.
    let out = tesla(&["build", "--lint", &example("lint_pathologies.c")]);
    assert_exit(&out, 0);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("TESLA-L001"), "{stderr}");
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No arguments at all.
    assert_exit(&tesla(&[]), 2);
    // Unknown command.
    assert_exit(&tesla(&["frobnicate"]), 2);
    // Missing input file.
    assert_exit(&tesla(&["lint", "no-such-file.c"]), 2);
    // Bad flag value.
    assert_exit(&tesla(&["lint", "--format=xml", &example("safe.c")]), 2);
    // A trailing flag with its value missing.
    assert_exit(
        &tesla(&["lint", &example("lint_pathologies.c"), "--format"]),
        2,
    );
}

#[test]
fn static_check_deny_contract_matches_lint() {
    // The buggy CVE corpus has a definite violation: exit 1 under
    // --deny, 0 without.
    let path = example("cve_unchecked.c");
    assert_exit(&tesla(&["static-check", &path]), 0);
    assert_exit(&tesla(&["static-check", "--deny", &path]), 1);
}
