//! The CLI exit-status contract, end to end against the real binary:
//!
//! * `0` — clean: the command did its work, no denied diagnostics;
//! * `1` — diagnostics at warning level or above under `--deny`
//!   (the command itself worked);
//! * `2` — usage, I/O, or build/run failure.
//!
//! Scripts and the CI lint-smoke job match on these values, so they
//! are pinned here rather than left to drift.

use std::path::PathBuf;
use std::process::{Command, Output};

fn example(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/minic")
        .join(name);
    p.to_str().expect("utf-8 path").to_string()
}

fn tesla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tesla"))
        .args(args)
        .output()
        .expect("spawn tesla")
}

fn assert_exit(out: &Output, want: i32) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn clean_lint_exits_zero_even_with_deny() {
    let out = tesla(&["lint", "--deny", &example("safe.c")]);
    assert_exit(&out, 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
}

#[test]
fn lint_findings_exit_zero_without_deny_and_one_with() {
    let path = example("lint_pathologies.c");
    // Findings alone never fail the command…
    let out = tesla(&["lint", &path]);
    assert_exit(&out, 0);
    // …but `--deny` turns them into exit status 1, and the findings
    // still reach stdout in the requested format.
    let out = tesla(&["lint", "--deny", "--format=sarif", &path]);
    assert_exit(&out, 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in ["TESLA-L001", "TESLA-L002", "TESLA-L003", "TESLA-L004"] {
        let rule = format!("\"ruleId\": \"{code}\"");
        assert_eq!(stdout.matches(&rule).count(), 1, "{code} in {stdout}");
    }
}

#[test]
fn build_lint_deny_exits_one_on_pathologies() {
    let out = tesla(&["build", "--lint=deny", &example("lint_pathologies.c")]);
    assert_exit(&out, 1);
    // Plain --lint reports on stderr but exits clean.
    let out = tesla(&["build", "--lint", &example("lint_pathologies.c")]);
    assert_exit(&out, 0);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("TESLA-L001"), "{stderr}");
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No arguments at all.
    assert_exit(&tesla(&[]), 2);
    // Unknown command.
    assert_exit(&tesla(&["frobnicate"]), 2);
    // Missing input file.
    assert_exit(&tesla(&["lint", "no-such-file.c"]), 2);
    // Bad flag value.
    assert_exit(&tesla(&["lint", "--format=xml", &example("safe.c")]), 2);
    // A trailing flag with its value missing.
    assert_exit(
        &tesla(&["lint", &example("lint_pathologies.c"), "--format"]),
        2,
    );
}

#[test]
fn static_check_deny_contract_matches_lint() {
    // The buggy CVE corpus has a definite violation: exit 1 under
    // --deny, 0 without.
    let path = example("cve_unchecked.c");
    assert_exit(&tesla(&["static-check", &path]), 0);
    assert_exit(&tesla(&["static-check", "--deny", &path]), 1);
}

#[test]
fn bad_fault_specs_exit_two() {
    let path = example("safe.c");
    let run = |spec: &str| {
        tesla(&[
            "run", &path, "--entry", "ssl_main", "--arg", "5", "--arg", "5", "--chaos", "42",
            "--faults", spec,
        ])
    };
    // A valid spec runs clean…
    assert_exit(&run("panic=40,drop=16"), 0);
    // …but duplicate kinds and trailing garbage are usage errors, not
    // last-write-wins or silently-eaten.
    let out = run("panic=1,panic=2");
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("duplicate fault kind `panic`"), "{stderr}");
    let out = run("panic=40,");
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty segment"), "{stderr}");
}

#[test]
fn baseline_and_anomaly_exit_codes() {
    let dir = std::env::temp_dir().join(format!("tesla-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // Learn a baseline from a healthy run: exit 0, versioned header.
    let base = p("safe.base.json");
    let out = tesla(&[
        "baseline",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--out",
        &base,
    ]);
    assert_exit(&out, 0);
    let text = std::fs::read_to_string(&base).unwrap();
    assert!(text.starts_with("{\"tesla_baseline\":1}"), "{text}");

    // Scoring the same healthy run against its own baseline is clean.
    let out = tesla(&[
        "observe",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--baseline",
        &base,
        "--anomalies",
    ]);
    assert_exit(&out, 0);

    // --anomalies without a baseline to score against is a usage error.
    let out = tesla(&["observe", &example("safe.c"), "--anomalies"]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--anomalies needs --baseline"), "{stderr}");

    // A malformed baseline is a *positioned* usage error, mirroring
    // the trace-schema contract: exit 2 before any run happens.
    let bad = p("bad.base.json");
    std::fs::write(&bad, "{\"tesla_baseline\":1}\nnot json\n").unwrap();
    let out = tesla(&[
        "observe",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--baseline",
        &bad,
        "--anomalies",
    ]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("malformed baseline line 2") && stderr.contains("byte offset 21"),
        "{stderr}"
    );

    // A version-bumped header names both versions and exits 2.
    let v2 = p("v2.base.json");
    std::fs::write(&v2, "{\"tesla_baseline\":2}\n").unwrap();
    let out = tesla(&[
        "observe",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--baseline",
        &v2,
        "--anomalies",
    ]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unsupported baseline version 2"),
        "{stderr}"
    );

    // A bad --govern value is caught before the program builds.
    let out = tesla(&[
        "run",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--govern",
        "0.5x",
    ]);
    assert_exit(&out, 2);
    // …and --allow-shed without --govern has nothing to act on.
    let out = tesla(&[
        "run",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--allow-shed",
    ]);
    assert_exit(&out, 2);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_exit_codes_match_the_run_contract() {
    let dir = std::env::temp_dir().join(format!("tesla-exitcodes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // Record a clean run; replay exits 0 like the run did.
    let trace = p("safe.jsonl");
    let out = tesla(&[
        "run",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--record",
        &trace,
    ]);
    assert_exit(&out, 0);
    assert_exit(&tesla(&["replay", &trace, "--spec", &example("safe.c")]), 0);

    // A violating run exits 2; so does its replay.
    let cve_trace = p("cve.jsonl");
    let out = tesla(&[
        "run",
        &example("cve_unchecked.c"),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--record",
        &cve_trace,
    ]);
    assert_exit(&out, 2);
    let out = tesla(&["replay", &cve_trace, "--spec", &example("cve_unchecked.c")]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("violation"), "{stderr}");

    // Missing trace file: exit 2 with an I/O diagnostic.
    let out = tesla(&["replay", &p("no-such.jsonl"), "--spec", &example("safe.c")]);
    assert_exit(&out, 2);

    // Malformed line: exit 2 with a line + byte-offset diagnostic.
    let bad = p("bad.jsonl");
    std::fs::write(&bad, "{\"tesla_trace\":1}\nnot json\n").unwrap();
    let out = tesla(&["replay", &bad, "--spec", &example("safe.c")]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2") && stderr.contains("byte offset 18"),
        "{stderr}"
    );

    // A trace truncated mid-line: positioned diagnostic, never a
    // panic.
    let full = std::fs::read_to_string(&cve_trace).unwrap();
    let trunc = p("trunc.jsonl");
    std::fs::write(&trunc, &full[..full.len() - 4]).unwrap();
    let out = tesla(&["replay", &trunc, "--spec", &example("cve_unchecked.c")]);
    assert_exit(&out, 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed trace line"), "{stderr}");

    // Replay without --spec is a usage error.
    assert_exit(&tesla(&["replay", &trace]), 2);

    std::fs::remove_dir_all(&dir).ok();
}
