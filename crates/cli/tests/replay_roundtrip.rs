//! Run → record → replay round-trips, end to end against the real
//! binary: for every corpus program, a recorded live run and its
//! replay must produce byte-identical violation lists, byte-identical
//! latency-free metrics snapshots, and the same exit status.

use std::path::PathBuf;
use std::process::{Command, Output};

fn example(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/minic")
        .join(name);
    p.to_str().expect("utf-8 path").to_string()
}

fn tesla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tesla"))
        .args(args)
        .output()
        .expect("spawn tesla")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tesla-roundtrip-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Record a run of `file`, replay it, and return
/// `(run_exit, replay_exit, live_violations, replayed_violations,
/// live_metrics, replayed_metrics)`.
#[allow(clippy::type_complexity)]
fn round_trip(tag: &str, file: &str) -> (i32, i32, String, String, String, String) {
    let dir = scratch(tag);
    let p = |n: &str| dir.join(n).to_str().unwrap().to_string();
    let (trace, lv, lm, rv, rm) = (
        p("trace.jsonl"),
        p("live.viol"),
        p("live.metrics"),
        p("replay.viol"),
        p("replay.metrics"),
    );
    let run = tesla(&[
        "run",
        &example(file),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--record",
        &trace,
        "--violations",
        &lv,
        "--metrics",
        &lm,
    ]);
    let replay = tesla(&[
        "replay",
        &trace,
        "--spec",
        &example(file),
        "--violations",
        &rv,
        "--metrics",
        &rm,
    ]);
    let out = (
        run.status.code().unwrap(),
        replay.status.code().unwrap(),
        std::fs::read_to_string(&lv).unwrap(),
        std::fs::read_to_string(&rv).unwrap(),
        std::fs::read_to_string(&lm).unwrap(),
        std::fs::read_to_string(&rm).unwrap(),
    );
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn clean_run_replays_identically() {
    let (run, replay, lv, rv, lm, rm) = round_trip("safe", "safe.c");
    assert_eq!(run, 0);
    assert_eq!(replay, 0);
    assert_eq!(lv, "", "a clean run has no violations");
    assert_eq!(lv, rv, "violation lists must be byte-identical");
    assert_eq!(lm, rm, "metrics snapshots must be byte-identical");
    assert!(lm.contains("\"events_total\""), "{lm}");
}

#[test]
fn violating_run_replays_identically() {
    let (run, replay, lv, rv, lm, rm) = round_trip("cve", "cve_unchecked.c");
    assert_eq!(run, 2, "violation fail-stops the live run");
    assert_eq!(replay, 2, "and its replay");
    assert!(lv.contains("assertion-site violation"), "{lv}");
    assert_eq!(lv, rv, "violation lists must be byte-identical");
    assert_eq!(lm, rm, "metrics snapshots must be byte-identical");
}

#[test]
fn recorded_trace_is_schema_versioned_jsonl() {
    let dir = scratch("schema");
    let trace = dir.join("trace.jsonl").to_str().unwrap().to_string();
    let out = tesla(&[
        "run",
        &example("safe.c"),
        "--entry",
        "ssl_main",
        "--arg",
        "5",
        "--arg",
        "5",
        "--record",
        &trace,
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&trace).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("{\"tesla_trace\":1}"));
    for l in lines {
        assert!(l.starts_with("{\"ev\":\""), "unexpected line {l}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
