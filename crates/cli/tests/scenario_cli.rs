//! `tesla scenario` end to end against the real binary: exit-code
//! contract (0 clean corpus, 1 failing expectations, 2 malformed
//! input with a positioned diagnostic), TAP version 14 shape, and
//! byte-level determinism of the seeded fuzzer.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tesla(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tesla"))
        .args(args)
        .output()
        .expect("spawn tesla")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tesla-scenario-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &PathBuf, name: &str, body: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, body).unwrap();
    p.to_str().unwrap().to_string()
}

/// A self-contained passing scenario: the spec runner needs no
/// simulator state, so it round-trips anywhere.
const SPEC_PASS: &str = "\
tesla_scenario: 1
name: spec-pass
runner: spec
config:
  assertions: [\"TESLA_WITHIN(foo, previously(check(x) == 0))\"]
timeline:
  - op: fn_entry
    fn: foo
  - op: fn_entry
    fn: check
    args: [7]
  - op: fn_exit
    fn: check
    args: [7]
    ret: 0
  - op: site
    class: 0
    values: [7]
  - op: fn_exit
    fn: foo
expect:
  verdict: pass
  violations: 0
";

/// Same automaton, but the site fires without its `check` — a site
/// violation the expectation block deliberately mispredicts.
const SPEC_WRONG_EXPECT: &str = "\
tesla_scenario: 1
name: spec-wrong-expect
runner: spec
config:
  assertions: [\"TESLA_WITHIN(foo, previously(check(x) == 0))\"]
timeline:
  - op: fn_entry
    fn: foo
  - op: site
    class: 0
    values: [7]
  - op: fn_exit
    fn: foo
expect:
  verdict: pass
  violations: 0
";

#[test]
fn malformed_scenario_exits_2_with_positioned_diagnostic() {
    let dir = scratch("malformed");
    let bad = write(&dir, "bad.yaml", "tesla_scenario: 1\nname: x\nbroken\n");
    let out = tesla(&["scenario", "run", &bad]);
    assert_eq!(out.status.code(), Some(2), "malformed scenario must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("malformed scenario line 3 (byte offset 26): expected `key: value`, got `broken`"),
        "diagnostic must carry line and byte offset, got: {err}"
    );
}

#[test]
fn unsupported_version_exits_2() {
    let dir = scratch("version");
    let bad = write(&dir, "v9.yaml", "tesla_scenario: 9\nname: x\nrunner: spec\n");
    let out = tesla(&["scenario", "run", &bad]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unsupported scenario version 9; this build speaks version 1"),
        "got: {err}"
    );
}

#[test]
fn passing_corpus_emits_tap_14_and_exits_0() {
    let dir = scratch("tap-pass");
    write(&dir, "a.yaml", SPEC_PASS);
    let out = tesla(&["scenario", "run", dir.to_str().unwrap(), "--tap"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let tap = String::from_utf8_lossy(&out.stdout);
    assert!(tap.starts_with("TAP version 14\n"), "got: {tap}");
    assert!(tap.contains("1..1"), "plan line missing: {tap}");
    assert!(tap.contains("ok 1 - spec-pass"), "test point missing: {tap}");
}

#[test]
fn failing_expectation_yields_not_ok_and_exit_1() {
    let dir = scratch("tap-fail");
    write(&dir, "a.yaml", SPEC_PASS);
    write(&dir, "b.yaml", SPEC_WRONG_EXPECT);
    let out = tesla(&["scenario", "run", dir.to_str().unwrap(), "--tap"]);
    assert_eq!(out.status.code(), Some(1), "failing scenario must exit 1");
    let tap = String::from_utf8_lossy(&out.stdout);
    assert!(tap.contains("1..2"), "plan line missing: {tap}");
    assert!(tap.contains("ok 1 - spec-pass"), "got: {tap}");
    assert!(tap.contains("not ok 2 - spec-wrong-expect"), "got: {tap}");
    // The YAML diagnostic block names the mismatch.
    assert!(tap.contains("failures:"), "diagnostic block missing: {tap}");
}

#[test]
fn tap_out_file_matches_stdout_mode() {
    let dir = scratch("tap-out");
    write(&dir, "a.yaml", SPEC_PASS);
    let tap_path = dir.join("report.tap");
    let out = tesla(&[
        "scenario",
        "run",
        dir.to_str().unwrap(),
        "--out",
        tap_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let written = std::fs::read_to_string(&tap_path).unwrap();
    assert!(written.starts_with("TAP version 14\n"));
    assert!(written.contains("ok 1 - spec-pass"));
}

/// Same corpus, same seed, same iteration budget ⇒ byte-identical
/// saved scenarios. This is the determinism contract the nightly
/// fuzz-smoke double-run relies on.
#[test]
fn fuzz_is_deterministic_for_fixed_seed() {
    let corpus = scratch("fuzz-corpus");
    write(&corpus, "a.yaml", SPEC_PASS);
    let out1 = scratch("fuzz-out1");
    let out2 = scratch("fuzz-out2");
    for out_dir in [&out1, &out2] {
        let out = tesla(&[
            "scenario",
            "fuzz",
            corpus.to_str().unwrap(),
            "--seed",
            "7",
            "--iterations",
            "40",
            "--out",
            out_dir.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let mut names1: Vec<String> = std::fs::read_dir(&out1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    let mut names2: Vec<String> = std::fs::read_dir(&out2)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names1.sort();
    names2.sort();
    assert_eq!(names1, names2, "saved-scenario sets differ between runs");
    for name in &names1 {
        let a = std::fs::read(out1.join(name)).unwrap();
        let b = std::fs::read(out2.join(name)).unwrap();
        assert_eq!(a, b, "saved scenario {name} differs byte-for-byte");
    }
}

/// Whatever the fuzzer saves must replay green through `scenario run`
/// — the corpus only grows with self-checking scenarios.
#[test]
fn fuzz_saved_scenarios_replay_green() {
    let corpus = scratch("fuzz-replay-corpus");
    write(&corpus, "a.yaml", SPEC_PASS);
    let saved = scratch("fuzz-replay-out");
    let out = tesla(&[
        "scenario",
        "fuzz",
        corpus.to_str().unwrap(),
        "--seed",
        "7",
        "--iterations",
        "40",
        "--out",
        saved.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    if std::fs::read_dir(&saved).unwrap().next().is_none() {
        return; // nothing interesting found at this budget — fine
    }
    let rerun = tesla(&["scenario", "run", saved.to_str().unwrap()]);
    assert_eq!(
        rerun.status.code(),
        Some(0),
        "saved scenarios must pass their own recomputed expectations: {}",
        String::from_utf8_lossy(&rerun.stdout)
    );
}
