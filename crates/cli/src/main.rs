//! `tesla` — the command-line front door to the TESLA toolchain.
//!
//! ```text
//! tesla check  '<assertion>'          parse + compile an assertion, describe the automaton
//! tesla graph  '<assertion>'          emit the automaton as Graphviz DOT
//! tesla analyse <file.c>...           run the analyser, print the merged .tesla manifest
//! tesla static-check <file.c>...      flow-sensitive model checking + diagnostics
//!                                     [--deny] [--format text|json|sarif]
//! tesla lint    <file.c>...           specification-level lints (TESLA-L001…L006)
//!                                     [--deny] [--format text|json|sarif] [--graph out.dot]
//! tesla build   <file.c>...           full TESLA build, print instrumentation stats
//!                                     [--reinstrument naive|fingerprint|delta] [--jobs N]
//!                                     [--timings] [--lint[=deny]]
//! tesla run     <file.c>... [--entry f] [--arg N]... [--graph out.dot]
//!               [--chaos SEED] [--faults k=p,...] [--govern SLO [--allow-shed]]
//!               [--record trace.jsonl] [--violations out] [--metrics out]
//!                                     build, weave, execute under libtesla (fail-stop;
//!                                     --chaos: seeded fault injection, ledger on exit;
//!                                     --govern: adaptive overhead governor holding the
//!                                     SLO, decision log + final estimate on exit;
//!                                     --record: tee every hook event to a JSONL trace)
//! tesla replay  <trace.jsonl> --spec <file.c>...
//!               [--violations out] [--metrics out]
//!                                     re-drive a recorded trace against the spec's
//!                                     automata: same verdicts, counters, exit status
//! tesla attach  <socket> --spec <file.c>...
//!               [--timeout-ms N] [--conns N] [--violations out] [--metrics out]
//!                                     bind a Unix socket, check live event streams
//! tesla observe <file.c>... [--format prom|json|dot|trace] [--entry f] [--arg N]... [-o out]
//!               [--replay trace.jsonl] [--chaos SEED] [--faults k=p,...]
//!               [--baseline base.json --anomalies [--format text|json|prom]]
//!                                     run under full telemetry, emit the report;
//!                                     --baseline/--anomalies: score the run against a
//!                                     recorded baseline (TESLA-A001/A002/A003)
//! tesla baseline <file.c>... [--entry f] [--arg N]... [--out base.json]
//!               [--from-trace trace.jsonl]
//!                                     learn a healthy-run baseline (transition-weight
//!                                     distributions + hook-latency profiles)
//! tesla scenario run <dir|file.yaml> [--tap] [--out tap.txt]
//!                                     execute declarative YAML scenarios, TAP v14 output
//! tesla scenario fuzz <dir> [--seed N] [--iterations N] [--budget-ms N] [--out dir]
//!                                     coverage-guided fuzzing over the scenario corpus
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use tesla::pipeline::{
    replay_with_tesla, run_with_tesla, run_with_tesla_recorded, BuildArtifacts, BuildOptions,
    BuildSystem, Project, ReinstrumentPolicy,
};
use tesla::prelude::*;
use tesla::runtime::telemetry::analysis;

/// Why the process is exiting non-zero. The exit-status contract is
/// part of the CLI surface (scripts and CI match on it):
///
/// * `0` — clean: the command did its work and no denied diagnostics;
/// * `1` — [`CliError::Denied`]: diagnostics present and `--deny` was
///   given (the command itself worked);
/// * `2` — [`CliError::Usage`]: bad invocation, unreadable input, or
///   a build/run failure.
enum CliError {
    /// Diagnostics at warning level or above under `--deny`.
    Denied(String),
    /// Everything else: usage, I/O, compile, or execution failure.
    Usage(String),
}

impl From<String> for CliError {
    fn from(e: String) -> CliError {
        CliError::Usage(e)
    }
}

impl From<&str> for CliError {
    fn from(e: &str) -> CliError {
        CliError::Usage(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let r: Result<(), CliError> = match cmd.as_str() {
        "check" => check(rest).map_err(CliError::Usage),
        "graph" => graph(rest).map_err(CliError::Usage),
        "analyse" | "analyze" => analyse(rest).map_err(CliError::Usage),
        "static-check" => static_check_cmd(rest),
        "lint" => lint(rest),
        "build" => build(rest),
        "run" => run(rest).map_err(CliError::Usage),
        "replay" => replay(rest).map_err(CliError::Usage),
        "attach" => attach(rest).map_err(CliError::Usage),
        "observe" => observe(rest),
        "baseline" => baseline_cmd(rest).map_err(CliError::Usage),
        "scenario" => scenario_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Denied(e)) => {
            eprintln!("tesla: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("tesla: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  tesla check  '<assertion>'     describe the compiled automaton
  tesla graph  '<assertion>'     emit Graphviz DOT
  tesla analyse <file.c>...      print the merged .tesla manifest
  tesla static-check [--deny] [--format text|json|sarif] <file.c>...
                                 compile-time assertion checking (§7):
                                 model-check, report, and elide; --deny
                                 makes warnings/errors a nonzero exit
  tesla lint    [--deny] [--format text|json|sarif] [--graph out.dot]
                <file.c>...
                                 specification-level lints over the
                                 assertions themselves (TESLA-L001…
                                 L006): vacuity, contradiction,
                                 subsumption, dead states, bounds that
                                 never close, incompatible matchers;
                                 --graph writes DOT with mergeable
                                 states highlighted
  tesla build   <file.c>... [--reinstrument naive|fingerprint|delta]
                [--jobs N] [--timings] [--lint[=deny]]
                                 TESLA build; print instrumentation
                                 stats. `delta` re-weaves only units
                                 whose assertions changed and fans the
                                 back-end out over N threads (0=auto);
                                 --timings prints a per-stage breakdown;
                                 --lint runs the specification lints
                                 first (=deny fails the build on them)
  tesla run     <file.c>... [--entry main] [--arg N]... [--graph out.dot]
                [--chaos SEED] [--faults k=p,...]
                [--govern SLO [--allow-shed]]
                [--record trace.jsonl] [--violations out] [--metrics out]
                                 build and execute under libtesla;
                                 --graph writes transition-weighted
                                 automaton graphs after the run;
                                 --chaos runs under a seeded fault plan
                                 (governed, log-and-continue) and prints
                                 the injected/absorbed ledger; --faults
                                 picks kinds and periods (e.g.
                                 panic=7,drop=16; default: full menu);
                                 --govern runs the adaptive overhead
                                 governor against an SLO like 1.2 (a
                                 1.2x instrumented-overhead target),
                                 printing its rate decisions and final
                                 overhead estimate; --allow-shed lets
                                 it shed clones (sound but inexact)
                                 past the exact levels;
                                 --record tees every hook event into a
                                 versioned JSONL trace that `tesla
                                 replay` re-drives; --violations /
                                 --metrics write the violation list and
                                 a latency-free counters snapshot
  tesla replay  <trace.jsonl> --spec <file.c>...
                [--violations out] [--metrics out]
                [--batch-size N | --no-batch]
                                 re-drive a recorded event trace
                                 against the spec's automata, through
                                 the same verdict and telemetry
                                 machinery as a live run: identical
                                 violations, counters and exit status;
                                 events are drained in batches (256 by
                                 default) to amortise per-event costs —
                                 --batch-size tunes the batch,
                                 --no-batch forces per-event dispatch;
                                 malformed traces get a line/byte-offset
                                 diagnostic and exit status 2
  tesla attach  <socket> --spec <file.c>...
                [--timeout-ms N] [--conns N]
                [--violations out] [--metrics out]
                [--batch-size N | --no-batch]
                                 bind a Unix socket and check live
                                 JSONL event streams as they arrive
                                 (--conns connections served in turn,
                                 --timeout-ms per accept and per read,
                                 batching as in replay)
  tesla observe <file.c>... [--format prom|json|dot|trace]
                [--entry main] [--arg N]... [-o out]
                [--replay trace.jsonl] [--chaos SEED] [--faults k=p,...]
                [--baseline base.json --anomalies]
                                 build, run under full telemetry, and
                                 report: Prometheus text (prom), JSON
                                 metrics snapshot (json), weighted
                                 fig. 9 graphs (dot), or a
                                 chrome://tracing event log (trace);
                                 --replay drives a recorded trace
                                 instead of executing the program;
                                 --baseline + --anomalies score the
                                 run against a recorded baseline and
                                 report TESLA-A001 (novel transition),
                                 A002 (weight divergence), A003
                                 (latency regression) with flight-
                                 recorder evidence — findings exit 1;
                                 anomaly --format: text|json|prom
  tesla baseline <file.c>... [--entry main] [--arg N]...
                [--out base.json] [--from-trace trace.jsonl]
                                 learn a healthy-run baseline:
                                 per-automaton transition-weight
                                 distributions and per-hook latency
                                 profiles, from a live run or a
                                 recorded trace (--from-trace), as a
                                 versioned baseline file (stdout when
                                 --out is omitted)
  tesla scenario run <dir|file.yaml> [--tap] [--out tap.txt]
                                 execute declarative YAML scenarios:
                                 each file names a runner (spec,
                                 sim-ssl, sim-kernel, sim-gui,
                                 workload, minic), a config, an event
                                 timeline, optional injected faults,
                                 and the expected outcome; --tap
                                 prints TAP version 14 (one point per
                                 scenario, YAML diagnostics on
                                 failure), --out also writes the TAP
                                 to a file; any failing scenario
                                 exits 1, malformed scenarios get a
                                 line/byte-offset diagnostic and
                                 exit 2
  tesla scenario fuzz <dir> [--seed N] [--iterations N]
                [--budget-ms N] [--out dir]
                                 coverage-guided scenario fuzzing:
                                 deterministically mutate the corpus
                                 timelines and fault plans, keep
                                 mutants that reach automaton
                                 (state, symbol) cells or violation
                                 signatures the seeds don't, ddmin-
                                 minimise them, and save them back as
                                 replayable corpus scenarios
                                 (--out, default the corpus dir)

exit status: 0 clean; 1 diagnostics present under --deny (or anomalies
under --anomalies, or failing scenarios); 2 usage, I/O, or build/run
failure";

fn parse_one(src: &str) -> Result<tesla::spec::Assertion, String> {
    parse_assertion(src).map_err(|e| e.to_string())
}

/// Parse a `--govern` SLO like `1.2` or `1.2x` into ×1000 units.
fn parse_slo(v: &str) -> Result<u32, String> {
    let f: f64 = v
        .trim_end_matches('x')
        .parse()
        .map_err(|e| format!("bad --govern SLO `{v}`: {e}"))?;
    if !(f > 1.0 && f <= 1000.0) {
        return Err(format!(
            "bad --govern SLO `{v}`: must be above 1.0 (an overhead target like 1.2)"
        ));
    }
    Ok((f * 1000.0).round() as u32)
}

fn check(rest: &[String]) -> Result<(), String> {
    let src = rest.first().ok_or("check needs an assertion string")?;
    let a = parse_one(src)?;
    let auto = compile(&a).map_err(|e| e.to_string())?;
    println!("assertion : {a}");
    println!("context   : {}", a.context);
    println!("bounds    : {} .. {}", a.bounds.start, a.bounds.end);
    println!("variables : {:?}", a.variables);
    println!("states    : {}", auto.n_states);
    println!("symbols   : {}", auto.n_symbols());
    for s in &auto.symbols {
        println!("  #{:<3} {}", s.id.0, s.kind);
    }
    let dfa = tesla::automata::Dfa::from_automaton(&auto);
    println!("DFA states: {}", dfa.n_states());
    println!("instrument: {:?}", auto.instrumentation_targets());
    Ok(())
}

fn graph(rest: &[String]) -> Result<(), String> {
    let src = rest.first().ok_or("graph needs an assertion string")?;
    let a = parse_one(src)?;
    let auto = compile(&a).map_err(|e| e.to_string())?;
    print!(
        "{}",
        tesla::automata::dot::render(&auto, &tesla::automata::dot::Unweighted)
    );
    Ok(())
}

fn load_project(files: &[String]) -> Result<Project, String> {
    if files.is_empty() {
        return Err("no source files given".into());
    }
    let mut units = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        units.push((f.clone(), src));
    }
    Ok(Project::from_sources(
        &units
            .iter()
            .map(|(f, s)| (f.as_str(), s.as_str()))
            .collect::<Vec<_>>(),
    ))
}

fn analyse(rest: &[String]) -> Result<(), String> {
    let project = load_project(rest)?;
    let mut manifests = Vec::new();
    for u in &project.units {
        let out = tesla::cc::compile_unit(&u.source, &u.file).map_err(|e| e.to_string())?;
        manifests.push(out.manifest);
    }
    let merged = tesla::automata::Manifest::merge(&manifests);
    println!("{}", merged.to_tesla());
    eprintln!(
        "({} assertions across {} units; instrumentation plan: {:?})",
        merged.entries.len(),
        project.units.len(),
        merged
            .instrumentation_plan()
            .map_err(|(n, e)| format!("{n}: {e}"))?
    );
    Ok(())
}

/// Shared `--deny` / `--format` / file-list parsing for the two
/// diagnostic commands.
fn parse_diag_flags(
    rest: &[String],
    graph: Option<&mut Option<String>>,
) -> Result<(Vec<String>, bool, tesla::instrument::OutputFormat), CliError> {
    let mut files = Vec::new();
    let mut deny = false;
    let mut format = tesla::instrument::OutputFormat::Text;
    let mut graph = graph;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--format" => {
                format = it.next().ok_or("--format needs text|json|sarif")?.parse()?;
            }
            "--graph" if graph.is_some() => {
                let path = it.next().ok_or("--graph needs a path")?.clone();
                **graph.as_mut().unwrap() = Some(path);
            }
            f => match f.strip_prefix("--format=") {
                Some(v) => format = v.parse()?,
                None => files.push(f.to_string()),
            },
        }
    }
    Ok((files, deny, format))
}

fn static_check_cmd(rest: &[String]) -> Result<(), CliError> {
    let (files, deny, format) = parse_diag_flags(rest, None)?;
    let project = load_project(&files)?;
    // The static toolchain model-checks the pristine program and
    // records per-assertion verdicts alongside the flow-insensitive
    // findings; both feed the diagnostics below.
    let mut bs = BuildSystem::new(project, BuildOptions::static_toolchain());
    let art = bs.build().map_err(|e| e.to_string())?;
    let diags = tesla::instrument::diagnose(&art.findings, &art.verdicts);
    print!("{}", tesla::instrument::render(&diags, format));
    // Exit status contract: findings alone never fail the build;
    // `--deny` turns warnings and errors into exit status 1 for CI.
    if deny && tesla::instrument::has_denials(&diags) {
        return Err(CliError::Denied(
            "static check failed (--deny: warnings or errors present)".into(),
        ));
    }
    Ok(())
}

fn lint(rest: &[String]) -> Result<(), CliError> {
    let mut graph: Option<String> = None;
    let (files, deny, format) = parse_diag_flags(rest, Some(&mut graph))?;
    let project = load_project(&files)?;
    // Lints need only the assertions, not a woven build: parse and
    // analyse each unit, merge the manifests, compile the automata
    // once and hand them to the lint pass.
    let mut manifests = Vec::new();
    for u in &project.units {
        let out = tesla::cc::compile_unit(&u.source, &u.file).map_err(|e| e.to_string())?;
        manifests.push(out.manifest);
    }
    let merged = tesla::automata::Manifest::merge(&manifests);
    let automata = merged.compile_all().map_err(|(n, e)| format!("{n}: {e}"))?;
    let lints = tesla::instrument::lint_compiled(&merged, &automata);
    let diags = tesla::instrument::diagnose_lints(&lints);
    print!("{}", tesla::instrument::render(&diags, format));
    if let Some(path) = graph {
        // One DOT digraph per automaton with dead/mergeable states,
        // mergeable groups sharing a fill colour.
        let mut dot = String::new();
        for l in &lints {
            if let tesla::instrument::LintFinding::DeadStates {
                assertion, groups, ..
            } = l
            {
                if let Some(a) = automata.iter().find(|a| a.name == *assertion) {
                    dot.push_str(&tesla::automata::dot::render_with_merge_groups(a, groups));
                }
            }
        }
        std::fs::write(&path, &dot).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote dead-state graphs to {path}");
    }
    if deny && tesla::instrument::has_denials(&diags) {
        return Err(CliError::Denied(
            "lint failed (--deny: warnings or errors present)".into(),
        ));
    }
    Ok(())
}

fn parse_reinstrument(v: &str) -> Result<ReinstrumentPolicy, String> {
    match v {
        "naive" => Ok(ReinstrumentPolicy::Naive),
        "fingerprint" => Ok(ReinstrumentPolicy::Fingerprint),
        "delta" => Ok(ReinstrumentPolicy::Delta),
        other => Err(format!(
            "unknown --reinstrument `{other}` (expected naive|fingerprint|delta)"
        )),
    }
}

fn build(rest: &[String]) -> Result<(), CliError> {
    let mut files = Vec::new();
    let mut policy = ReinstrumentPolicy::Naive;
    let mut jobs = 0usize;
    let mut timings = false;
    let mut lint = false;
    let mut lint_deny = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reinstrument" => {
                policy = parse_reinstrument(
                    it.next()
                        .ok_or("--reinstrument needs naive|fingerprint|delta")?,
                )?;
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a count (0 = auto)")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--timings" => timings = true,
            "--lint" => lint = true,
            "--lint=deny" => {
                lint = true;
                lint_deny = true;
            }
            f => match f.strip_prefix("--reinstrument=") {
                Some(v) => policy = parse_reinstrument(v)?,
                None => match f.strip_prefix("--jobs=") {
                    Some(v) => jobs = v.parse().map_err(|e| format!("bad --jobs: {e}"))?,
                    None => files.push(f.to_string()),
                },
            },
        }
    }
    let project = load_project(&files)?;
    let opts = BuildOptions {
        reinstrument: policy,
        jobs,
        lint,
        ..BuildOptions::tesla_toolchain()
    };
    let mut bs = BuildSystem::new(project, opts);
    let art = bs.build().map_err(|e| e.to_string())?;
    if lint {
        let diags = tesla::instrument::diagnose_lints(&art.lints);
        eprint!(
            "{}",
            tesla::instrument::render(&diags, tesla::instrument::OutputFormat::Text)
        );
        if lint_deny && tesla::instrument::has_denials(&diags) {
            return Err(CliError::Denied(
                "build failed (--lint=deny: specification lints present)".into(),
            ));
        }
    }
    println!(
        "compiled {} units; instrumented {}; {} hooks; {} sites; {} TIR instructions",
        art.stats.compiled_units,
        art.stats.instrumented_units,
        art.stats.hooks_inserted,
        art.manifest.entries.len(),
        art.stats.linked_insts
    );
    if timings {
        let t = &art.timings;
        println!(
            "timings: frontend {:?}; analyse {:?}; model-check {:?}; instrument {:?}; link {:?}",
            t.frontend, t.analyse, t.model_check, t.instrument, t.link
        );
    }
    Ok(())
}

fn run(rest: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut entry = "main".to_string();
    let mut prog_args: Vec<i64> = Vec::new();
    let mut graph: Option<String> = None;
    let mut chaos: Option<u64> = None;
    let mut fault_arg: Option<String> = None;
    let mut record: Option<String> = None;
    let mut violations_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut govern: Option<u32> = None;
    let mut allow_shed = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = it.next().ok_or("--entry needs a name")?.clone(),
            "--arg" => prog_args.push(
                it.next()
                    .ok_or("--arg needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --arg: {e}"))?,
            ),
            "--graph" => graph = Some(it.next().ok_or("--graph needs a path")?.clone()),
            "--chaos" => {
                chaos = Some(
                    it.next()
                        .ok_or("--chaos needs a seed")?
                        .parse()
                        .map_err(|e| format!("bad --chaos seed: {e}"))?,
                )
            }
            "--faults" => fault_arg = Some(it.next().ok_or("--faults needs a spec")?.clone()),
            "--govern" => {
                govern = Some(parse_slo(
                    it.next().ok_or("--govern needs an SLO like 1.2")?,
                )?)
            }
            "--allow-shed" => allow_shed = true,
            "--record" => record = Some(it.next().ok_or("--record needs a path")?.clone()),
            "--violations" => {
                violations_out = Some(it.next().ok_or("--violations needs a path")?.clone())
            }
            "--metrics" => metrics_out = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            f => files.push(f.to_string()),
        }
    }
    if allow_shed && govern.is_none() {
        return Err("--allow-shed needs --govern <slo>".into());
    }
    let plan = match chaos {
        Some(seed) => {
            let spec = match &fault_arg {
                Some(s) => s.parse::<FaultSpec>()?,
                None => FaultSpec::default_chaos(),
            };
            Some(Arc::new(FaultPlan::new(seed, spec)))
        }
        None if fault_arg.is_some() => {
            return Err("--faults needs --chaos <seed> to schedule against".into())
        }
        None => None,
    };
    let project = load_project(&files)?;
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    let art = bs.build().map_err(|e| e.to_string())?;
    // --graph needs live transition weights, so it switches telemetry
    // on; plain runs keep the zero-overhead default. Chaos runs are
    // governed (quota + LRU + degraded mode), log-and-continue so the
    // workload completes, and fully telemetered so every absorbed
    // fault is accounted.
    let engine = Arc::new(Tesla::new(Config {
        telemetry: graph.is_some() || plan.is_some() || metrics_out.is_some(),
        fail_mode: if plan.is_some() {
            FailMode::Log
        } else {
            FailMode::FailStop
        },
        max_instances: if plan.is_some() { Some(64) } else { None },
        eviction: if plan.is_some() {
            EvictionPolicy::Lru
        } else {
            EvictionPolicy::Error
        },
        faults: plan.clone(),
        governor: govern.map(|slo_milli| GovernorConfig {
            slo_milli,
            allow_shed,
            ..GovernorConfig::default()
        }),
        ..Config::default()
    }));
    if plan.is_some() {
        tesla::runtime::faults::silence_injected_panics();
    }
    let result = match &record {
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            run_with_tesla_recorded(&art, &engine, &entry, &prog_args, 100_000_000, &mut w)
        }
        None => run_with_tesla(&art, &engine, &entry, &prog_args, 100_000_000),
    };
    // Verdict/metrics artifacts are written even for violating runs:
    // their whole point is comparing a failed run with its replay.
    write_outputs(&engine, &violations_out, &metrics_out)?;
    if let Some(path) = graph {
        let dot = weighted_graphs(&engine);
        std::fs::write(&path, &dot).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {} weighted graph(s) to {path}", engine.n_classes());
    }
    if let Some(g) = engine.governor() {
        let decisions = g.render_decisions();
        if !decisions.is_empty() {
            println!("{decisions}");
        }
        let est = g.estimate_overhead_milli(engine.metrics());
        println!(
            "governed overhead {} (SLO {}), level {}, {} hook events",
            analysis::fmt_overhead(est),
            analysis::fmt_overhead(u64::from(g.config().slo_milli)),
            g.level(),
            g.events()
        );
    }
    if let Some(p) = engine.fault_plan() {
        let ledger = p.ledger();
        println!("chaos seed {} spec {}", p.seed(), p.spec());
        print!("{}", ledger.render());
        let absorbed = engine.metrics().faults_absorbed();
        println!(
            "absorbed {} of {} injected; ledger {}",
            absorbed,
            ledger.total_injected(),
            if ledger.balanced() && absorbed == ledger.total_injected() {
                "balanced"
            } else {
                "UNBALANCED"
            }
        );
    }
    match result {
        Ok(rc) => {
            println!("{entry}({prog_args:?}) = {rc}");
            println!("{} violations", engine.violations().len());
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// Write the post-run artifacts shared by `run`, `replay` and
/// `attach`: the violation list (one rendered violation per line) and
/// the latency-free JSON counters snapshot — both byte-comparable
/// between a live run and a replay of its recording.
fn write_outputs(
    engine: &Tesla,
    violations: &Option<String>,
    metrics: &Option<String>,
) -> Result<(), String> {
    if let Some(p) = violations {
        let mut text = String::new();
        for v in engine.violations() {
            text.push_str(&v.to_string());
            text.push('\n');
        }
        std::fs::write(p, &text).map_err(|e| format!("{p}: {e}"))?;
    }
    if let Some(p) = metrics {
        let text = tesla::runtime::telemetry::export::json_counters(&engine.metrics().snapshot());
        std::fs::write(p, &text).map_err(|e| format!("{p}: {e}"))?;
    }
    Ok(())
}

/// Build the `--spec` sources into artifacts whose manifest carries
/// the automata a replayed or attached event stream is checked
/// against.
fn build_specs(specs: &[String]) -> Result<BuildArtifacts, String> {
    if specs.is_empty() {
        return Err("needs at least one --spec <file.c>".into());
    }
    let project = load_project(specs)?;
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    bs.build().map_err(|e| e.to_string())
}

/// Drive any event source against freshly built spec artifacts and
/// report exactly as a live run would: the shared tail of `replay`
/// and `attach`.
fn drive_source(
    verb: &str,
    art: &BuildArtifacts,
    source: &mut dyn tesla::runtime::EventSource,
    violations_out: &Option<String>,
    metrics_out: &Option<String>,
    batch_size: Option<usize>,
) -> Result<(), String> {
    let mut config = Config {
        telemetry: metrics_out.is_some(),
        ..Config::default()
    };
    if let Some(n) = batch_size {
        config.batch_size = n;
    }
    let engine = Arc::new(Tesla::new(config));
    let result = replay_with_tesla(art, &engine, source);
    write_outputs(&engine, violations_out, metrics_out)?;
    match result {
        Ok(stats) => {
            println!(
                "{verb}: {} events ({} sites); {} violations",
                stats.events,
                stats.sites,
                engine.violations().len()
            );
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Parse a `--batch-size` operand: a dispatch batch size of at
/// least 1.
fn parse_batch_size(arg: Option<&String>) -> Result<usize, String> {
    let n: usize = arg
        .ok_or("--batch-size needs a count")?
        .parse()
        .map_err(|e| format!("bad --batch-size: {e}"))?;
    if n == 0 {
        return Err("bad --batch-size: must be at least 1".into());
    }
    Ok(n)
}

fn replay(rest: &[String]) -> Result<(), String> {
    let mut trace: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut violations_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut batch_size: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => specs.push(it.next().ok_or("--spec needs a file")?.clone()),
            "--violations" => {
                violations_out = Some(it.next().ok_or("--violations needs a path")?.clone())
            }
            "--metrics" => metrics_out = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--batch-size" => batch_size = Some(parse_batch_size(it.next())?),
            "--no-batch" => batch_size = Some(1),
            f if trace.is_none() => trace = Some(f.to_string()),
            f => return Err(format!("unexpected argument `{f}` (specs go via --spec)")),
        }
    }
    let trace = trace.ok_or("replay needs a trace file")?;
    let art = build_specs(&specs).map_err(|e| format!("replay {e}"))?;
    let mut src = tesla::runtime::JsonlSource::open(std::path::Path::new(&trace))
        .map_err(|e| e.to_string())?;
    drive_source(
        "replayed",
        &art,
        &mut src,
        &violations_out,
        &metrics_out,
        batch_size,
    )
}

#[cfg(unix)]
fn attach(rest: &[String]) -> Result<(), String> {
    let mut socket: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut violations_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut conns: Option<u64> = None;
    let mut batch_size: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => specs.push(it.next().ok_or("--spec needs a file")?.clone()),
            "--violations" => {
                violations_out = Some(it.next().ok_or("--violations needs a path")?.clone())
            }
            "--metrics" => metrics_out = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--batch-size" => batch_size = Some(parse_batch_size(it.next())?),
            "--no-batch" => batch_size = Some(1),
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                )
            }
            "--conns" => {
                conns = Some(
                    it.next()
                        .ok_or("--conns needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --conns: {e}"))?,
                )
            }
            f if socket.is_none() => socket = Some(f.to_string()),
            f => return Err(format!("unexpected argument `{f}` (specs go via --spec)")),
        }
    }
    let socket = socket.ok_or("attach needs a socket path")?;
    let art = build_specs(&specs).map_err(|e| format!("attach {e}"))?;
    let mut src = tesla::runtime::SocketSource::bind(std::path::Path::new(&socket))
        .map_err(|e| e.to_string())?;
    if let Some(ms) = timeout_ms {
        let d = std::time::Duration::from_millis(ms);
        src = src.read_timeout(d).accept_timeout(d);
    }
    if let Some(n) = conns {
        src = src.max_conns(n);
    }
    eprintln!("listening on {socket}");
    drive_source(
        "attached",
        &art,
        &mut src,
        &violations_out,
        &metrics_out,
        batch_size,
    )
}

#[cfg(not(unix))]
fn attach(_rest: &[String]) -> Result<(), String> {
    Err("attach requires Unix domain sockets (unsupported on this platform)".into())
}

/// One transition-weighted DOT digraph per registered class, weighted
/// by the engine's live telemetry (fig. 9's "observations of dynamic
/// behaviour" combined with the static automaton).
fn weighted_graphs(engine: &Tesla) -> String {
    use tesla::automata::dot;
    let mut out = String::new();
    for (i, def) in engine.class_defs().iter().enumerate() {
        match engine.metrics().weight_source(i as u32) {
            Some(w) => out.push_str(&dot::render(&def.automaton, &*w)),
            None => out.push_str(&dot::render(&def.automaton, &dot::Unweighted)),
        }
    }
    out
}

fn observe(rest: &[String]) -> Result<(), CliError> {
    let mut files = Vec::new();
    let mut entry = "main".to_string();
    let mut prog_args: Vec<i64> = Vec::new();
    let mut format: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut anomalies = false;
    let mut replay_trace: Option<String> = None;
    let mut chaos: Option<u64> = None;
    let mut fault_arg: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = it.next().ok_or("--entry needs a name")?.clone(),
            "--arg" => prog_args.push(
                it.next()
                    .ok_or("--arg needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --arg: {e}"))?,
            ),
            "--format" => {
                format = Some(
                    it.next()
                        .ok_or("--format needs prom|json|dot|trace (or text under --anomalies)")?
                        .clone(),
                )
            }
            "-o" | "--output" => out_path = Some(it.next().ok_or("-o needs a path")?.clone()),
            "--baseline" => {
                baseline_path = Some(it.next().ok_or("--baseline needs a path")?.clone())
            }
            "--anomalies" => anomalies = true,
            "--replay" => {
                replay_trace = Some(it.next().ok_or("--replay needs a trace file")?.clone())
            }
            "--chaos" => {
                chaos = Some(
                    it.next()
                        .ok_or("--chaos needs a seed")?
                        .parse()
                        .map_err(|e| format!("bad --chaos seed: {e}"))?,
                )
            }
            "--faults" => fault_arg = Some(it.next().ok_or("--faults needs a spec")?.clone()),
            f => match f.strip_prefix("--format=") {
                Some(v) => format = Some(v.to_string()),
                None => files.push(f.to_string()),
            },
        }
    }
    if anomalies && baseline_path.is_none() {
        return Err("--anomalies needs --baseline <file>".into());
    }
    // Scoring is on when a baseline is given; --anomalies alone names
    // the intent but the baseline is what makes it possible.
    let scoring = baseline_path.is_some();
    let format = format.unwrap_or_else(|| if scoring { "text" } else { "prom" }.to_string());
    let valid = if scoring {
        matches!(format.as_str(), "text" | "prom" | "json")
    } else {
        matches!(format.as_str(), "prom" | "json" | "dot" | "trace")
    };
    if !valid {
        return Err(format!(
            "unknown --format `{format}` (expected {})",
            if scoring {
                "text|json|prom under --baseline"
            } else {
                "prom|json|dot|trace"
            }
        )
        .into());
    }
    // Load the baseline before the run so a malformed or
    // version-bumped file is a positioned usage error (exit 2),
    // mirroring the trace-schema contract.
    let baseline = match &baseline_path {
        Some(p) => Some(Baseline::load(std::path::Path::new(p)).map_err(|e| e.to_string())?),
        None => None,
    };
    let plan = match chaos {
        Some(seed) => {
            let spec = match &fault_arg {
                Some(s) => s.parse::<FaultSpec>()?,
                None => FaultSpec::default_chaos(),
            };
            Some(Arc::new(FaultPlan::new(seed, spec)))
        }
        None if fault_arg.is_some() => {
            return Err("--faults needs --chaos <seed> to schedule against".into())
        }
        None => None,
    };
    let project = load_project(&files)?;
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    let art = bs.build().map_err(|e| e.to_string())?;

    // Full telemetry: metrics registry (auto-attached by the engine)
    // plus a flight recorder for the event log. Violations are
    // observations here, not failures — log-and-continue.
    let engine = Arc::new(Tesla::new(Config {
        telemetry: true,
        fail_mode: FailMode::Log,
        faults: plan.clone(),
        ..Config::default()
    }));
    if plan.is_some() {
        tesla::runtime::faults::silence_injected_panics();
    }
    let recorder = Arc::new(FlightRecorder::default());
    engine.add_handler(recorder.clone());

    let driven = match &replay_trace {
        Some(trace) => {
            let mut src = tesla::runtime::JsonlSource::open(std::path::Path::new(trace))
                .map_err(|e| e.to_string())?;
            let stats = replay_with_tesla(&art, &engine, &mut src).map_err(|e| e.to_string())?;
            format!("replayed {} events ({} sites)", stats.events, stats.sites)
        }
        None => {
            let rc = run_with_tesla(&art, &engine, &entry, &prog_args, 100_000_000)?;
            format!("{entry}({prog_args:?}) = {rc}")
        }
    };

    use tesla::runtime::telemetry::export;
    let snap = engine.metrics().snapshot();
    let (report, verdict) = match &baseline {
        Some(base) => {
            let scored = analysis::score(base, &snap, Some(&recorder), &ScorerConfig::default());
            let text = match format.as_str() {
                "json" => analysis::anomaly::json(&scored),
                "prom" => analysis::anomaly::prometheus(&scored),
                _ => analysis::anomaly::render_text(&scored),
            };
            (text, Some(scored))
        }
        None => {
            let text = match format.as_str() {
                "prom" => export::prometheus(&snap),
                "json" => export::json(&snap),
                "trace" => export::chrome_trace(&recorder.snapshot()),
                _ => weighted_graphs(&engine),
            };
            (text, None)
        }
    };
    match out_path {
        Some(p) => std::fs::write(&p, &report).map_err(|e| format!("{p}: {e}"))?,
        None => print!("{report}"),
    }
    eprintln!(
        "{driven}; {} events, {} violations, {} recorded ({} overwritten)",
        engine.metrics().events_total(),
        engine.metrics().violations(),
        recorder.total_recorded(),
        recorder.overwritten(),
    );
    if let Some(scored) = verdict {
        eprintln!(
            "anomalies: {} finding(s) over {} scored class(es) ({} unmatched)",
            scored.anomalies.len(),
            scored.classes_scored,
            scored.classes_unmatched
        );
        if !scored.is_clean() {
            let codes: Vec<&str> = scored.anomalies.iter().map(|a| a.code.code()).collect();
            return Err(CliError::Denied(format!(
                "anomalies detected: {}",
                codes.join(", ")
            )));
        }
    }
    Ok(())
}

fn baseline_cmd(rest: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut entry = "main".to_string();
    let mut prog_args: Vec<i64> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut from_trace: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = it.next().ok_or("--entry needs a name")?.clone(),
            "--arg" => prog_args.push(
                it.next()
                    .ok_or("--arg needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --arg: {e}"))?,
            ),
            "--out" | "-o" => out_path = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--from-trace" => {
                from_trace = Some(it.next().ok_or("--from-trace needs a trace file")?.clone())
            }
            f => files.push(f.to_string()),
        }
    }
    let project = load_project(&files)?;
    let mut bs = BuildSystem::new(project, BuildOptions::tesla_toolchain());
    let art = bs.build().map_err(|e| e.to_string())?;
    // A baseline is a statement about healthy behaviour: violations
    // are recorded (log-and-continue) but do not abort the learning
    // run — the operator decides whether the run was healthy.
    let engine = Arc::new(Tesla::new(Config {
        telemetry: true,
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    match &from_trace {
        Some(trace) => {
            let mut src = tesla::runtime::JsonlSource::open(std::path::Path::new(trace))
                .map_err(|e| e.to_string())?;
            let stats = replay_with_tesla(&art, &engine, &mut src).map_err(|e| e.to_string())?;
            eprintln!(
                "learned from {trace}: {} events ({} sites)",
                stats.events, stats.sites
            );
        }
        None => {
            let rc = run_with_tesla(&art, &engine, &entry, &prog_args, 100_000_000)?;
            eprintln!("learned from {entry}({prog_args:?}) = {rc}");
        }
    }
    let base = Baseline::from_snapshot(&engine.metrics().snapshot());
    eprintln!(
        "baseline: {} hook profile(s), {} class distribution(s), {} violation(s) during learning",
        base.hooks.len(),
        base.classes.len(),
        engine.violations().len()
    );
    match out_path {
        Some(p) => base
            .save(std::path::Path::new(&p))
            .map_err(|e| e.to_string())?,
        None => print!("{}", base.render()),
    }
    Ok(())
}

/// `tesla scenario <run|fuzz>` — the declarative scenario engine.
fn scenario_cmd(rest: &[String]) -> Result<(), CliError> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("scenario needs a subcommand: run or fuzz".into());
    };
    match sub.as_str() {
        "run" => scenario_run(rest),
        "fuzz" => scenario_fuzz(rest).map_err(CliError::Usage),
        other => Err(CliError::Usage(format!(
            "unknown scenario subcommand `{other}` (expected run or fuzz)"
        ))),
    }
}

fn scenario_run(rest: &[String]) -> Result<(), CliError> {
    let mut tap = false;
    let mut out_path: Option<String> = None;
    let mut path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tap" => tap = true,
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a file path")?.clone());
            }
            p => {
                if path.is_some() {
                    return Err(CliError::Usage(format!(
                        "scenario run takes one path, got a second: `{p}`"
                    )));
                }
                path = Some(p.to_string());
            }
        }
    }
    let path = path.ok_or("scenario run needs a scenario file or directory")?;
    let results =
        tesla::scenario::run_batch(std::path::Path::new(&path)).map_err(CliError::Usage)?;
    let tap_text = tesla::scenario::render_tap(&results);
    if tap {
        print!("{tap_text}");
    } else {
        let mut coverage = tesla::automata::CoverageMap::new();
        for r in &results {
            coverage.merge(&r.coverage);
            if r.ok() {
                println!("ok   {}", r.name);
            } else {
                println!("FAIL {}", r.name);
                for f in &r.failures {
                    println!("     - {f}");
                }
            }
        }
        let (covered, total) = coverage.totals();
        println!(
            "{} scenarios, {} failed; transition coverage {covered}/{total}",
            results.len(),
            results.iter().filter(|r| !r.ok()).count()
        );
    }
    if let Some(o) = &out_path {
        std::fs::write(o, &tap_text).map_err(|e| format!("{o}: {e}"))?;
    }
    let failed = results.iter().filter(|r| !r.ok()).count();
    if failed > 0 {
        return Err(CliError::Denied(format!(
            "{failed} of {} scenario(s) failed",
            results.len()
        )));
    }
    Ok(())
}

fn scenario_fuzz(rest: &[String]) -> Result<(), String> {
    let mut params = tesla::scenario::FuzzParams::default();
    let mut out_dir: Option<String> = None;
    let mut path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                params.seed = v.parse().map_err(|e| format!("bad --seed `{v}`: {e}"))?;
            }
            "--iterations" => {
                let v = it.next().ok_or("--iterations needs a value")?;
                params.iterations = v
                    .parse()
                    .map_err(|e| format!("bad --iterations `{v}`: {e}"))?;
            }
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a value")?;
                params.budget_ms =
                    Some(v.parse().map_err(|e| format!("bad --budget-ms `{v}`: {e}"))?);
            }
            "--out" => {
                out_dir = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            p => {
                if path.is_some() {
                    return Err(format!("scenario fuzz takes one corpus dir, got `{p}`"));
                }
                path = Some(p.to_string());
            }
        }
    }
    let path = path.ok_or("scenario fuzz needs a corpus directory")?;
    let corpus_dir = std::path::Path::new(&path);
    let files = tesla::scenario::collect_scenario_files(corpus_dir)?;
    let mut seeds = Vec::with_capacity(files.len());
    for f in &files {
        let stem = f
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("scenario")
            .to_string();
        seeds.push((stem, tesla::scenario::load_scenario_file(f)?));
    }
    let base_dir = if corpus_dir.is_dir() {
        corpus_dir.to_path_buf()
    } else {
        corpus_dir
            .parent()
            .unwrap_or(std::path::Path::new("."))
            .to_path_buf()
    };
    let outcome = tesla::scenario::fuzz_corpus(&seeds, &base_dir, params);
    println!(
        "fuzz: seed {}, {} mutant(s) tried, {} interesting, {} saved",
        params.seed, outcome.attempts, outcome.interesting, outcome.saved.len()
    );
    println!(
        "coverage: {}/{} cells before, {}/{} after",
        outcome.baseline.0, outcome.baseline.1, outcome.after.0, outcome.after.1
    );
    let out_dir = out_dir.map_or_else(|| base_dir.clone(), std::path::PathBuf::from);
    if !outcome.saved.is_empty() {
        std::fs::create_dir_all(&out_dir)
            .map_err(|e| format!("{}: {e}", out_dir.display()))?;
    }
    for saved in &outcome.saved {
        let file = out_dir.join(format!("{}.yaml", saved.name));
        std::fs::write(&file, tesla::scenario::fuzz::render_saved(saved))
            .map_err(|e| format!("{}: {e}", file.display()))?;
        println!(
            "saved {} ({} new cell(s), {} novel violation(s))",
            file.display(),
            saved.new_cells.len(),
            saved.novel_violations.len()
        );
        for (class, state, symbol) in &saved.new_cells {
            println!("  new cell: {class} state {state} symbol {symbol}");
        }
        for sig in &saved.novel_violations {
            println!("  novel violation: {sig}");
        }
    }
    Ok(())
}
