//! An AppKit-like UI library over the objc runtime: views that
//! delegate drawing to cells, a graphics context with named gstates,
//! a cursor stack, tracking rectangles and a run loop.
//!
//! Both §2.3/§3.5.3 bugs are seeded behind [`GuiBugs`]:
//!
//! * **Cursor push/pop imbalance** — "events invalidating cursor
//!   tracking rectangles were being delivered after events that
//!   inspected those rectangles", so mouse-entered events are not
//!   correctly paired with mouse-exited events and the same cursor is
//!   pushed onto the cursor stack multiple times.
//! * **Non-LIFO gstate restore** — "the new back end's inability to
//!   save and restore graphics states in a non-LIFO order": the buggy
//!   backend treats `setGState:` as a plain pop.

use crate::objc::{objc_msg_send, ObjId, ObjcRuntime, Sel};
use std::collections::HashMap;

/// Seeded GNUstep bugs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuiBugs {
    /// Tracking-rect invalidations delivered after inspection:
    /// duplicate cursor pushes.
    pub duplicate_cursor_push: bool,
    /// Backend restores gstates LIFO-only, ignoring the requested
    /// state id.
    pub backend_lifo_only: bool,
}

/// A draw command in the "framebuffer" — the observable rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrawOp {
    /// A stroked line with the current colour.
    Line {
        /// Start.
        from: (i64, i64),
        /// End.
        to: (i64, i64),
        /// Colour at stroke time.
        color: i64,
    },
    /// A filled rectangle.
    Fill {
        /// Origin.
        at: (i64, i64),
        /// Size.
        size: (i64, i64),
        /// Colour at fill time.
        color: i64,
    },
}

/// One graphics state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GState {
    /// Current colour.
    pub color: i64,
    /// Current line width.
    pub line_width: i64,
    /// Current point.
    pub pos: (i64, i64),
}

impl Default for GState {
    fn default() -> GState {
        GState {
            color: 0,
            line_width: 1,
            pos: (0, 0),
        }
    }
}

/// A view with an optional cursor-tracking rectangle.
#[derive(Debug, Clone, Copy)]
pub struct ViewState {
    /// The view object.
    pub obj: ObjId,
    /// Its cell (drawing delegate).
    pub cell: ObjId,
    /// Frame (x, y, w, h).
    pub frame: (i64, i64, i64, i64),
    /// Cursor id pushed while the mouse is inside (0 = none).
    pub cursor: i64,
    /// Tracking bookkeeping: is the mouse believed to be inside?
    pub inside: bool,
}

impl ViewState {
    fn contains(&self, p: (i64, i64)) -> bool {
        let (x, y, w, h) = self.frame;
        p.0 >= x && p.0 < x + w && p.1 >= y && p.1 < y + h
    }
}

/// Replayable UI events (the GNU Xnee substitute feeds these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UiEvent {
    /// Pointer motion.
    MouseMoved(i64, i64),
    /// Something moved/scrolled: tracking rectangles must be
    /// re-established. The buggy ordering drops the exit events.
    InvalidateTracking,
    /// Damage everything: full redraw.
    Expose,
}

/// Interned selectors the library uses on hot paths.
#[derive(Debug, Clone, Copy)]
pub struct Sels {
    /// `[NSCursor push]`
    pub push: Sel,
    /// `[NSCursor pop]`
    pub pop: Sel,
    /// `mouseEntered:`
    pub mouse_entered: Sel,
    /// `mouseExited:`
    pub mouse_exited: Sel,
    /// `drawRect:`
    pub draw_rect: Sel,
    /// `drawWithFrame:inView:`
    pub draw_with_frame: Sel,
    /// `defineGState`
    pub define_gstate: Sel,
    /// `setGState:`
    pub set_gstate: Sel,
    /// `saveGraphicsState`
    pub save_gstate: Sel,
    /// `restoreGraphicsState`
    pub restore_gstate: Sel,
    /// `setColor:`
    pub set_color: Sel,
    /// `setLineWidth:`
    pub set_line_width: Sel,
    /// `moveToPoint::`
    pub move_to: Sel,
    /// `lineToPoint::`
    pub line_to: Sel,
    /// `fillRect::::`
    pub fill_rect: Sel,
}

/// The assembled UI world. Holds the objc runtime (so the whole
/// world is the `W` the runtime dispatches through).
pub struct GuiWorld {
    /// The objc runtime.
    pub rt: ObjcRuntime<GuiWorld>,
    /// Hot-path selectors.
    pub sels: Sels,
    /// Current graphics state.
    pub gstate: GState,
    /// LIFO save/restore stack.
    pub gstack: Vec<GState>,
    /// Named gstates (correct backend).
    pub named_gstates: HashMap<i64, GState>,
    /// LIFO-only "new backend" storage (buggy).
    pub lifo_gstates: Vec<GState>,
    /// Next gstate name.
    pub next_gstate: i64,
    /// Cursor stack (the bug's victim).
    pub cursor_stack: Vec<i64>,
    /// Views, in z-order.
    pub views: Vec<ViewState>,
    /// Rendered output.
    pub framebuffer: Vec<DrawOp>,
    /// Mouse position.
    pub mouse: (i64, i64),
    /// Seeded bugs.
    pub bugs: GuiBugs,
    /// The graphics-context singleton.
    pub ctx: ObjId,
    /// The shared cursor object.
    pub cursor_obj: ObjId,
}

impl AsMut<ObjcRuntime<GuiWorld>> for GuiWorld {
    fn as_mut(&mut self) -> &mut ObjcRuntime<GuiWorld> {
        &mut self.rt
    }
}

impl AsRef<ObjcRuntime<GuiWorld>> for GuiWorld {
    fn as_ref(&self) -> &ObjcRuntime<GuiWorld> {
        &self.rt
    }
}

/// How many auxiliary instrumentable methods to register, so the
/// interposition set matches the paper's "roughly 110 methods".
pub const N_AUX_METHODS: usize = 95;

impl GuiWorld {
    /// Build the world: runtime, classes, the ~110 instrumentable
    /// selectors and an empty scene.
    pub fn new(mode: crate::objc::TraceMode, bugs: GuiBugs) -> GuiWorld {
        let mut rt: ObjcRuntime<GuiWorld> = ObjcRuntime::new(mode);

        let ns_ctx = rt.define_class("NSGraphicsContext");
        let ns_cursor = rt.define_class("NSCursor");
        let ns_view = rt.define_class("NSView");
        let ns_cell = rt.define_class("NSCell");
        let gs_aux = rt.define_class("GSAuxOps");

        let sels = Sels {
            push: rt.sel("push"),
            pop: rt.sel("pop"),
            mouse_entered: rt.sel("mouseEntered:"),
            mouse_exited: rt.sel("mouseExited:"),
            draw_rect: rt.sel("drawRect:"),
            draw_with_frame: rt.sel("drawWithFrame:inView:"),
            define_gstate: rt.sel("defineGState"),
            set_gstate: rt.sel("setGState:"),
            save_gstate: rt.sel("saveGraphicsState"),
            restore_gstate: rt.sel("restoreGraphicsState"),
            set_color: rt.sel("setColor:"),
            set_line_width: rt.sel("setLineWidth:"),
            move_to: rt.sel("moveToPoint::"),
            line_to: rt.sel("lineToPoint::"),
            fill_rect: rt.sel("fillRect::::"),
        };

        // NSGraphicsContext methods.
        rt.add_method(ns_ctx, sels.save_gstate, |w, _r, _a| {
            w.gstack.push(w.gstate);
            0
        });
        rt.add_method(ns_ctx, sels.restore_gstate, |w, _r, _a| {
            if let Some(s) = w.gstack.pop() {
                w.gstate = s;
            }
            0
        });
        rt.add_method(ns_ctx, sels.define_gstate, |w, _r, _a| {
            let id = w.next_gstate;
            w.next_gstate += 1;
            w.named_gstates.insert(id, w.gstate);
            w.lifo_gstates.push(w.gstate);
            id
        });
        rt.add_method(ns_ctx, sels.set_gstate, |w, _r, a| {
            if w.bugs.backend_lifo_only {
                // BUG (§3.5.3): the new backend cannot restore in
                // non-LIFO order; it ignores the id and pops.
                if let Some(s) = w.lifo_gstates.pop() {
                    w.gstate = s;
                }
            } else if let Some(s) = w.named_gstates.get(&a[0]) {
                w.gstate = *s;
            }
            0
        });
        rt.add_method(ns_ctx, sels.set_color, |w, _r, a| {
            w.gstate.color = a[0];
            0
        });
        rt.add_method(ns_ctx, sels.set_line_width, |w, _r, a| {
            w.gstate.line_width = a[0];
            0
        });
        rt.add_method(ns_ctx, sels.move_to, |w, _r, a| {
            w.gstate.pos = (a[0], a[1]);
            0
        });
        rt.add_method(ns_ctx, sels.line_to, |w, _r, a| {
            let from = w.gstate.pos;
            let to = (a[0], a[1]);
            let color = w.gstate.color;
            w.framebuffer.push(DrawOp::Line { from, to, color });
            w.gstate.pos = to;
            0
        });
        rt.add_method(ns_ctx, sels.fill_rect, |w, _r, a| {
            let color = w.gstate.color;
            w.framebuffer.push(DrawOp::Fill {
                at: (a[0], a[1]),
                size: (a[2], a[3]),
                color,
            });
            0
        });

        // NSCursor.
        rt.add_method(ns_cursor, sels.push, |w, r, _a| {
            w.cursor_stack.push(i64::from(r.0));
            0
        });
        rt.add_method(ns_cursor, sels.pop, |w, _r, _a| {
            w.cursor_stack.pop();
            0
        });

        // NSView: tracking events push/pop the cursor; drawing
        // delegates to the cell.
        rt.add_method(ns_view, sels.mouse_entered, |w, _r, _a| {
            let cursor = w.cursor_obj;
            let push = w.sels.push;
            objc_msg_send(w, cursor, push, &[]).expect("cursor push");
            0
        });
        rt.add_method(ns_view, sels.mouse_exited, |w, _r, _a| {
            let cursor = w.cursor_obj;
            let pop = w.sels.pop;
            objc_msg_send(w, cursor, pop, &[]).expect("cursor pop");
            0
        });
        rt.add_method(ns_view, sels.draw_rect, |w, r, _a| {
            // "many views delegate drawing to 'cells'".
            let view = w.views.iter().find(|v| v.obj == r).copied();
            if let Some(v) = view {
                let dwf = w.sels.draw_with_frame;
                objc_msg_send(w, v.cell, dwf, &[v.frame.0, v.frame.1, i64::from(r.0)])
                    .expect("cell draw");
            }
            0
        });

        // NSCell: save state, set colour from its identity, draw a
        // line across the frame, restore.
        rt.add_method(ns_cell, sels.draw_with_frame, |w, r, a| {
            let (save, set_color, move_to, line_to, restore) = (
                w.sels.save_gstate,
                w.sels.set_color,
                w.sels.move_to,
                w.sels.line_to,
                w.sels.restore_gstate,
            );
            let ctx = w.ctx;
            objc_msg_send(w, ctx, save, &[]).expect("save");
            objc_msg_send(w, ctx, set_color, &[i64::from(r.0)]).expect("color");
            objc_msg_send(w, ctx, move_to, &[a[0], a[1]]).expect("move");
            objc_msg_send(w, ctx, line_to, &[a[0] + 10, a[1] + 10]).expect("line");
            objc_msg_send(w, ctx, restore, &[]).expect("restore");
            0
        });

        // Auxiliary instrumentable methods, filling the selector set
        // out to the paper's ~110.
        for i in 0..N_AUX_METHODS {
            let sel = rt.sel(&format!("gsAuxOp{i}:"));
            rt.add_method(gs_aux, sel, |w, _r, a| {
                w.gstate.line_width = (w.gstate.line_width + a[0]) & 0xff;
                0
            });
        }

        let mut world = GuiWorld {
            sels,
            gstate: GState::default(),
            gstack: Vec::new(),
            named_gstates: HashMap::new(),
            lifo_gstates: Vec::new(),
            next_gstate: 1,
            cursor_stack: Vec::new(),
            views: Vec::new(),
            framebuffer: Vec::new(),
            mouse: (0, 0),
            bugs,
            ctx: ObjId(0),
            cursor_obj: ObjId(0),
            rt,
        };
        world.ctx = world.rt.alloc(ns_ctx);
        world.cursor_obj = world.rt.alloc(ns_cursor);
        world
    }

    /// Add a view (with its cell) to the scene; `cursor != 0` adds a
    /// tracking rectangle.
    pub fn add_view(&mut self, frame: (i64, i64, i64, i64), cursor: i64) -> ObjId {
        let ns_view = self.find_class("NSView");
        let ns_cell = self.find_class("NSCell");
        let obj = self.rt.alloc(ns_view);
        let cell = self.rt.alloc(ns_cell);
        self.views.push(ViewState {
            obj,
            cell,
            frame,
            cursor,
            inside: false,
        });
        obj
    }

    fn find_class(&self, name: &str) -> crate::objc::ClassId {
        (0..self.rt.n_classes() as u32)
            .map(crate::objc::ClassId)
            .find(|c| self.rt.class_name(*c) == name)
            .expect("class exists")
    }

    /// Deliver one UI event (tracking-rectangle bookkeeping and the
    /// seeded reordering bug live here).
    ///
    /// # Errors
    ///
    /// Propagates interposer aborts (TESLA fail-stop).
    pub fn deliver(&mut self, ev: UiEvent) -> Result<(), String> {
        match ev {
            UiEvent::MouseMoved(x, y) => {
                self.mouse = (x, y);
                for i in 0..self.views.len() {
                    let v = self.views[i];
                    if v.cursor == 0 {
                        continue;
                    }
                    let now_inside = v.contains((x, y));
                    if now_inside && !v.inside {
                        let sel = self.sels.mouse_entered;
                        objc_msg_send(self, v.obj, sel, &[v.cursor])?;
                        self.views[i].inside = true;
                    } else if !now_inside && v.inside {
                        let sel = self.sels.mouse_exited;
                        objc_msg_send(self, v.obj, sel, &[v.cursor])?;
                        self.views[i].inside = false;
                    }
                }
                Ok(())
            }
            UiEvent::InvalidateTracking => {
                if self.bugs.duplicate_cursor_push {
                    // BUG: the invalidation is processed after the
                    // inspection pass already ran — the "inside"
                    // bookkeeping is cleared without delivering the
                    // paired mouseExited events. The next motion
                    // inside the rect pushes the same cursor again.
                    for v in &mut self.views {
                        v.inside = false;
                    }
                } else {
                    // Correct ordering: exits are delivered first.
                    for i in 0..self.views.len() {
                        let v = self.views[i];
                        if v.cursor != 0 && v.inside {
                            let sel = self.sels.mouse_exited;
                            objc_msg_send(self, v.obj, sel, &[v.cursor])?;
                            self.views[i].inside = false;
                        }
                    }
                }
                Ok(())
            }
            UiEvent::Expose => self.redraw(),
        }
    }

    /// Redraw every view.
    ///
    /// # Errors
    ///
    /// Propagates interposer aborts.
    pub fn redraw(&mut self) -> Result<(), String> {
        for i in 0..self.views.len() {
            let v = self.views[i];
            let sel = self.sels.draw_rect;
            objc_msg_send(self, v.obj, sel, &[])?;
            let _ = v;
        }
        Ok(())
    }

    /// The non-LIFO gstate usage pattern of §3.5.3: define states for
    /// two "cells", then draw switching between them in non-LIFO
    /// order. Returns the colours actually stroked.
    ///
    /// # Errors
    ///
    /// Propagates interposer aborts.
    pub fn draw_non_lifo_scene(&mut self) -> Result<Vec<i64>, String> {
        let ctx = self.ctx;
        let s = self.sels;
        let start = self.framebuffer.len();
        // Define two named states with different colours.
        objc_msg_send(self, ctx, s.set_color, &[0xff0000])?; // red
        let ga = objc_msg_send(self, ctx, s.define_gstate, &[])?;
        objc_msg_send(self, ctx, s.set_color, &[0x0000ff])?; // blue
        let gb = objc_msg_send(self, ctx, s.define_gstate, &[])?;
        // Non-LIFO: a, then b, then a again.
        for g in [ga, gb, ga] {
            objc_msg_send(self, ctx, s.set_gstate, &[g])?;
            objc_msg_send(self, ctx, s.move_to, &[0, 0])?;
            objc_msg_send(self, ctx, s.line_to, &[5, 5])?;
        }
        Ok(self.framebuffer[start..]
            .iter()
            .map(|op| match op {
                DrawOp::Line { color, .. } | DrawOp::Fill { color, .. } => *color,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objc::TraceMode;

    #[test]
    fn cell_drawing_saves_and_restores() {
        let mut w = GuiWorld::new(TraceMode::Release, GuiBugs::default());
        w.add_view((0, 0, 10, 10), 0);
        let before = w.gstate;
        w.redraw().unwrap();
        assert_eq!(w.framebuffer.len(), 1);
        // The cell restored the state after drawing.
        assert_eq!(w.gstate, before);
    }

    #[test]
    fn tracking_pushes_and_pops_cursors_in_balance() {
        let mut w = GuiWorld::new(TraceMode::Release, GuiBugs::default());
        w.add_view((0, 0, 10, 10), 7);
        w.deliver(UiEvent::MouseMoved(5, 5)).unwrap();
        assert_eq!(w.cursor_stack.len(), 1);
        w.deliver(UiEvent::MouseMoved(50, 50)).unwrap();
        assert!(w.cursor_stack.is_empty());
        // With a well-ordered invalidation in between: still balanced.
        w.deliver(UiEvent::MouseMoved(5, 5)).unwrap();
        w.deliver(UiEvent::InvalidateTracking).unwrap();
        assert!(w.cursor_stack.is_empty());
        w.deliver(UiEvent::MouseMoved(6, 6)).unwrap();
        w.deliver(UiEvent::MouseMoved(50, 50)).unwrap();
        assert!(w.cursor_stack.is_empty());
    }

    #[test]
    fn cursor_bug_duplicates_pushes() {
        let bugs = GuiBugs {
            duplicate_cursor_push: true,
            ..GuiBugs::default()
        };
        let mut w = GuiWorld::new(TraceMode::Release, bugs);
        w.add_view((0, 0, 10, 10), 7);
        w.deliver(UiEvent::MouseMoved(5, 5)).unwrap(); // push
        w.deliver(UiEvent::InvalidateTracking).unwrap(); // late invalidation: no exit!
        w.deliver(UiEvent::MouseMoved(6, 6)).unwrap(); // duplicate push
        w.deliver(UiEvent::MouseMoved(50, 50)).unwrap(); // one pop
                                                         // "a later pop only popping one of a number of duplicated
                                                         // copies of the same cursor, leaving the UI in the wrong
                                                         // state."
        assert_eq!(w.cursor_stack, vec![i64::from(w.cursor_obj.0)]);
    }

    #[test]
    fn non_lifo_gstates_render_correctly_on_the_good_backend() {
        let mut w = GuiWorld::new(TraceMode::Release, GuiBugs::default());
        let colors = w.draw_non_lifo_scene().unwrap();
        assert_eq!(colors, vec![0xff0000, 0x0000ff, 0xff0000]);
    }

    #[test]
    fn lifo_only_backend_draws_wrong_colours() {
        let bugs = GuiBugs {
            backend_lifo_only: true,
            ..GuiBugs::default()
        };
        let mut w = GuiWorld::new(TraceMode::Release, bugs);
        let colors = w.draw_non_lifo_scene().unwrap();
        assert_ne!(colors, vec![0xff0000, 0x0000ff, 0xff0000]);
    }

    #[test]
    fn selector_population_matches_paper_scale() {
        let w = GuiWorld::new(TraceMode::Release, GuiBugs::default());
        // "roughly 110 methods"
        assert!(w.rt.n_selectors() >= 110, "got {}", w.rt.n_selectors());
    }
}
