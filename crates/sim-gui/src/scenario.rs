//! Timeline adapter: drive a [`GuiApp`] from declarative scenario
//! steps (`tesla scenario`, runner `sim-gui`).
//!
//! UI events accumulate until a `flush` delivers them as one run-loop
//! iteration (the fig. 8 temporal bound); a trailing unflushed batch
//! is delivered by [`GuiScenario::finish`], so timelines may omit the
//! final `flush`:
//!
//! | op           | arguments                                |
//! |--------------|------------------------------------------|
//! | `mouse`      | `x` (int, default 0), `y` (int, default 0) |
//! | `invalidate` | —                                        |
//! | `expose`     | —                                        |
//! | `flush`      | — (deliver the pending batch)            |
//!
//! A run-loop iteration returning an error (a fail-stopped violation)
//! is an outcome recorded as a note, not a step error.

use crate::appkit::{GuiBugs, UiEvent};
use crate::{GuiApp, GuiMode};
use std::sync::Arc;
use tesla_runtime::scenario::Step;
use tesla_runtime::Tesla;

/// Scenario-driven GUI app plus its pending event batch.
pub struct GuiScenario {
    app: GuiApp,
    pending: Vec<UiEvent>,
    /// Human-readable outcome log, one line per delivered batch.
    pub notes: Vec<String>,
}

impl GuiScenario {
    /// Build the app — instrumented under `tesla`, or Release when
    /// `None` — with the given seeded bugs.
    pub fn new(tesla: Option<Arc<Tesla>>, bugs: GuiBugs) -> GuiScenario {
        let mode = match tesla {
            Some(engine) => GuiMode::Tesla(engine),
            None => GuiMode::Release,
        };
        GuiScenario {
            app: GuiApp::new(mode, bugs),
            pending: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Execute one timeline step.
    ///
    /// # Errors
    ///
    /// A description of the first malformed argument or unknown op.
    pub fn step(&mut self, step: &Step) -> Result<(), String> {
        match step.op.as_str() {
            "mouse" => {
                let x = step.int_or("x", 0)?;
                let y = step.int_or("y", 0)?;
                self.pending.push(UiEvent::MouseMoved(x, y));
            }
            "invalidate" => self.pending.push(UiEvent::InvalidateTracking),
            "expose" => self.pending.push(UiEvent::Expose),
            "flush" => self.flush(),
            other => return Err(format!("sim-gui runner: unknown op `{other}`")),
        }
        Ok(())
    }

    /// Deliver any trailing unflushed batch and record the final
    /// cursor-stack depth. The fig. 8 automaton is a pure tracing
    /// automaton (`ATLEAST(0, …)` never rejects), so the cursor
    /// push/pop pairing bugs it illuminates surface here as a note a
    /// scenario can pin with `notes_contain`, not as a violation.
    pub fn finish(&mut self) {
        if !self.pending.is_empty() {
            self.flush();
        }
        self.notes.push(format!(
            "cursor stack: {} cursor(s) left",
            self.app.world.cursor_stack.len()
        ));
    }

    fn flush(&mut self) {
        let batch = std::mem::take(&mut self.pending);
        match self.app.run_loop_iteration(&batch) {
            Ok(()) => self
                .notes
                .push(format!("run_loop_iteration ok ({} events)", batch.len())),
            Err(e) => self.notes.push(format!("run_loop_iteration failed: {e}")),
        }
    }
}
