//! An Objective-C-like runtime with message-send interposition.
//!
//! "In Objective-C, interprocedural flow control is either a C
//! function call or a message send; methods can be replaced at run
//! time … message sends are implemented by the `objc_msgSend`
//! function, provided by the Objective-C runtime library. We modified
//! these functions in the GNUstep Objective-C runtime to provide a
//! new interposition mechanism. Before calling any method, the
//! runtime consults a global table of interposition hooks" (§4.3).
//!
//! The four cost tiers of fig. 14a correspond to:
//!
//! * [`TraceMode::Release`] — dispatch without tracing support;
//! * [`TraceMode::TracingEnabled`] — the modified runtime consults
//!   the (possibly empty) interposition table on every send;
//! * a trivial interposer registered via
//!   [`ObjcRuntime::set_interposer`];
//! * a TESLA interposer feeding libtesla (installed by
//!   `tesla-sim-gui`'s world).

use std::collections::HashMap;
use std::sync::Arc;

/// An object handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

/// An interned selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sel(pub u32);

/// A class handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u32);

/// A method implementation. Takes the world (passed back by the
/// dispatcher), the receiver, and word-sized arguments.
pub type Imp<W> = fn(&mut W, ObjId, &[i64]) -> i64;

/// Pre/post interposition hooks. Errors abort the send (TESLA
/// fail-stop).
pub trait Interposer<W>: Send + Sync {
    /// Called before the method body.
    ///
    /// # Errors
    ///
    /// A message aborts the send.
    fn pre(&self, world: &W, recv: ObjId, sel: &str, args: &[i64]) -> Result<(), String>;
    /// Called after the method body with its return value.
    ///
    /// # Errors
    ///
    /// A message aborts the send.
    fn post(&self, world: &W, recv: ObjId, sel: &str, args: &[i64], ret: i64)
        -> Result<(), String>;
}

/// Runtime tracing support level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing not compiled in: raw dispatch.
    #[default]
    Release,
    /// The modified runtime: consult the interposition table per
    /// send, even when empty.
    TracingEnabled,
}

struct ClassDef<W> {
    name: String,
    methods: HashMap<Sel, Imp<W>>,
}

struct Object {
    class: ClassId,
}

/// The runtime: classes, selectors, objects and the interposition
/// table.
pub struct ObjcRuntime<W> {
    classes: Vec<ClassDef<W>>,
    sel_by_name: HashMap<String, Sel>,
    sel_names: Vec<String>,
    objects: Vec<Object>,
    mode: TraceMode,
    interposer: Option<Arc<dyn Interposer<W>>>,
    /// Message sends dispatched (statistics).
    pub sends: u64,
}

impl<W> Default for ObjcRuntime<W> {
    fn default() -> ObjcRuntime<W> {
        ObjcRuntime {
            classes: Vec::new(),
            sel_by_name: HashMap::new(),
            sel_names: Vec::new(),
            objects: Vec::new(),
            mode: TraceMode::Release,
            interposer: None,
            sends: 0,
        }
    }
}

impl<W> ObjcRuntime<W> {
    /// Fresh runtime in `mode`.
    pub fn new(mode: TraceMode) -> ObjcRuntime<W> {
        ObjcRuntime {
            mode,
            ..ObjcRuntime::default()
        }
    }

    /// The trace mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Register (or look up) a selector.
    pub fn sel(&mut self, name: &str) -> Sel {
        if let Some(s) = self.sel_by_name.get(name) {
            return *s;
        }
        let s = Sel(self.sel_names.len() as u32);
        self.sel_names.push(name.to_string());
        self.sel_by_name.insert(name.to_string(), s);
        s
    }

    /// Selector name.
    pub fn sel_name(&self, s: Sel) -> &str {
        &self.sel_names[s.0 as usize]
    }

    /// Number of registered selectors.
    pub fn n_selectors(&self) -> usize {
        self.sel_names.len()
    }

    /// Define a class.
    pub fn define_class(&mut self, name: &str) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.to_string(),
            methods: HashMap::new(),
        });
        id
    }

    /// Add (or replace — methods are dynamic) a method.
    pub fn add_method(&mut self, class: ClassId, sel: Sel, imp: Imp<W>) {
        self.classes[class.0 as usize].methods.insert(sel, imp);
    }

    /// Allocate an instance.
    pub fn alloc(&mut self, class: ClassId) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object { class });
        id
    }

    /// Class of an object.
    pub fn class_of(&self, obj: ObjId) -> ClassId {
        self.objects[obj.0 as usize].class
    }

    /// Class name.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.0 as usize].name
    }

    /// Number of defined classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Install the global interposer ("a global table of
    /// interposition hooks").
    pub fn set_interposer(&mut self, i: Arc<dyn Interposer<W>>) {
        self.interposer = Some(i);
    }

    /// Remove the interposer.
    pub fn clear_interposer(&mut self) {
        self.interposer = None;
    }

    /// Look up the implementation for `[recv sel]` — "even for an
    /// object of a known class it is impossible to tell statically
    /// which method will be invoked", so this happens per send.
    fn lookup(&self, recv: ObjId, sel: Sel) -> Option<Imp<W>> {
        let class = self.objects.get(recv.0 as usize)?.class;
        self.classes[class.0 as usize].methods.get(&sel).copied()
    }
}

/// `objc_msgSend`: dispatch `[recv sel args]` through `world`'s
/// runtime. Free function (not a method) so implementations can
/// recursively send messages through the same world.
///
/// # Errors
///
/// Returns the interposer's abort message (TESLA fail-stop), or a
/// does-not-respond error.
pub fn objc_msg_send<W: AsMut<ObjcRuntime<W>> + AsRef<ObjcRuntime<W>>>(
    world: &mut W,
    recv: ObjId,
    sel: Sel,
    args: &[i64],
) -> Result<i64, String> {
    let rt = world.as_mut();
    rt.sends += 1;
    let imp = rt
        .lookup(recv, sel)
        .ok_or_else(|| format!("[{recv:?} {}]: does not respond", rt.sel_name(sel)))?;
    let traced = rt.mode == TraceMode::TracingEnabled;
    let interposer = if traced { rt.interposer.clone() } else { None };
    if let Some(ip) = &interposer {
        let rt = world.as_ref();
        let name = rt.sel_name(sel).to_string();
        ip.pre(world, recv, &name, args)?;
        let ret = imp(world, recv, args);
        ip.post(world, recv, &name, args, ret)?;
        Ok(ret)
    } else {
        Ok(imp(world, recv, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A minimal world for runtime-only tests.
    struct W {
        rt: ObjcRuntime<W>,
        counter: i64,
    }

    impl AsMut<ObjcRuntime<W>> for W {
        fn as_mut(&mut self) -> &mut ObjcRuntime<W> {
            &mut self.rt
        }
    }

    impl AsRef<ObjcRuntime<W>> for W {
        fn as_ref(&self) -> &ObjcRuntime<W> {
            &self.rt
        }
    }

    fn world(mode: TraceMode) -> (W, ObjId, Sel, Sel) {
        let mut w = W {
            rt: ObjcRuntime::new(mode),
            counter: 0,
        };
        let cls = w.rt.define_class("Counter");
        let bump = w.rt.sel("bumpBy:");
        let get = w.rt.sel("value");
        w.rt.add_method(cls, bump, |w, _recv, args| {
            w.counter += args[0];
            w.counter
        });
        w.rt.add_method(cls, get, |w, _recv, _args| w.counter);
        let obj = w.rt.alloc(cls);
        (w, obj, bump, get)
    }

    #[test]
    fn dispatch_runs_methods() {
        let (mut w, obj, bump, get) = world(TraceMode::Release);
        assert_eq!(objc_msg_send(&mut w, obj, bump, &[5]).unwrap(), 5);
        assert_eq!(objc_msg_send(&mut w, obj, bump, &[2]).unwrap(), 7);
        assert_eq!(objc_msg_send(&mut w, obj, get, &[]).unwrap(), 7);
        assert_eq!(w.rt.sends, 3);
    }

    #[test]
    fn unknown_selector_errors() {
        let (mut w, obj, _, _) = world(TraceMode::Release);
        let bogus = w.rt.sel("explode");
        assert!(objc_msg_send(&mut w, obj, bogus, &[]).is_err());
    }

    #[test]
    fn methods_can_be_replaced_at_runtime() {
        let (mut w, obj, bump, _) = world(TraceMode::Release);
        let cls = w.rt.class_of(obj);
        w.rt.add_method(cls, bump, |_, _, _| -1);
        assert_eq!(objc_msg_send(&mut w, obj, bump, &[5]).unwrap(), -1);
    }

    struct CountingInterposer {
        pre: AtomicU64,
        post: AtomicU64,
    }

    impl Interposer<W> for CountingInterposer {
        fn pre(&self, _w: &W, _r: ObjId, _s: &str, _a: &[i64]) -> Result<(), String> {
            self.pre.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn post(&self, _w: &W, _r: ObjId, _s: &str, _a: &[i64], _ret: i64) -> Result<(), String> {
            self.post.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn interposition_fires_only_in_tracing_mode() {
        for (mode, expect) in [(TraceMode::Release, 0u64), (TraceMode::TracingEnabled, 2)] {
            let (mut w, obj, bump, _) = world(mode);
            let ip = Arc::new(CountingInterposer {
                pre: AtomicU64::new(0),
                post: AtomicU64::new(0),
            });
            w.rt.set_interposer(ip.clone());
            objc_msg_send(&mut w, obj, bump, &[1]).unwrap();
            objc_msg_send(&mut w, obj, bump, &[1]).unwrap();
            assert_eq!(ip.pre.load(Ordering::Relaxed), expect);
            assert_eq!(ip.post.load(Ordering::Relaxed), expect);
        }
    }

    struct AbortingInterposer;

    impl Interposer<W> for AbortingInterposer {
        fn pre(&self, _w: &W, _r: ObjId, sel: &str, _a: &[i64]) -> Result<(), String> {
            if sel == "bumpBy:" {
                Err("violation".into())
            } else {
                Ok(())
            }
        }
        fn post(&self, _w: &W, _r: ObjId, _s: &str, _a: &[i64], _ret: i64) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn interposer_can_abort_the_send() {
        let (mut w, obj, bump, get) = world(TraceMode::TracingEnabled);
        w.rt.set_interposer(Arc::new(AbortingInterposer));
        assert!(objc_msg_send(&mut w, obj, bump, &[1]).is_err());
        // Other selectors unaffected; the aborted send never ran.
        assert_eq!(objc_msg_send(&mut w, obj, get, &[]).unwrap(), 0);
    }
}
