//! # tesla-sim-gui — the GNUstep case-study substrate
//!
//! Reproduces the stateful-API exploration of §2.3/§3.5.3 (see
//! DESIGN.md): an Objective-C-like runtime whose `objc_msgSend`
//! consults a global interposition table ([`objc`], §4.3), an
//! AppKit-like library with cells, gstates, cursors and tracking
//! rectangles ([`appkit`]), the fig. 8 tracing assertion over ~110
//! selectors, and both investigated bugs behind flags.
//!
//! Unlike the C substrates, "we only need to run the instrumenter on
//! a single compilation unit … instrumentation spans two libraries
//! and multiple classes but is all inserted via interposition"
//! (§5.3) — here the [`TeslaInterposer`] installed into the runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appkit;
pub mod objc;
pub mod scenario;

use appkit::{GuiBugs, GuiWorld, UiEvent};
use objc::{Interposer, ObjId, TraceMode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tesla_runtime::{ClassId as RtClassId, NameId, Tesla};
use tesla_spec::{atleast, msg_send, AssertionBuilder, ExprBuilder, Value};

/// The instrumentation tier, matching fig. 14's four bars.
#[derive(Clone, Default)]
pub enum GuiMode {
    /// "normal release build".
    #[default]
    Release,
    /// "linked against the Objective-C runtime with tracing enabled"
    /// (table consulted, nothing registered).
    TracingEnabled,
    /// "a trivial interposition function on the message send".
    Interposed,
    /// "a TESLA automaton processing the events".
    Tesla(Arc<Tesla>),
    /// TESLA plus a custom event handler printing traces (the §3.5.3
    /// investigation mode).
    TeslaTracing(Arc<Tesla>, Arc<dyn Fn(&TraceEvent) + Send + Sync>),
}

/// One interposed message, as handed to custom handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// `true` for entry (send), `false` for return.
    pub entry: bool,
    /// Receiver.
    pub receiver: u32,
    /// Receiver's class name.
    pub class: String,
    /// Selector.
    pub selector: String,
}

/// The trivial interposer: counts sends (fig. 14a's third bar).
#[derive(Default)]
pub struct TrivialInterposer {
    count: std::sync::atomic::AtomicU64,
}

impl TrivialInterposer {
    /// Messages observed.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Interposer<GuiWorld> for TrivialInterposer {
    fn pre(&self, _w: &GuiWorld, _r: ObjId, _s: &str, _a: &[i64]) -> Result<(), String> {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
    fn post(
        &self,
        _w: &GuiWorld,
        _r: ObjId,
        _s: &str,
        _a: &[i64],
        _ret: i64,
    ) -> Result<(), String> {
        Ok(())
    }
}

/// The TESLA interposer: converts message sends/returns into libtesla
/// events (§4.3) and optionally forwards them to a custom handler
/// (§3.5.3's trace investigation).
pub struct TeslaInterposer {
    engine: Arc<Tesla>,
    sel_ids: Mutex<HashMap<String, NameId>>,
    handler: Option<Arc<dyn Fn(&TraceEvent) + Send + Sync>>,
}

impl TeslaInterposer {
    /// Wrap an engine.
    pub fn new(
        engine: Arc<Tesla>,
        handler: Option<Arc<dyn Fn(&TraceEvent) + Send + Sync>>,
    ) -> TeslaInterposer {
        TeslaInterposer {
            engine,
            sel_ids: Mutex::new(HashMap::new()),
            handler,
        }
    }

    fn sel_id(&self, name: &str) -> NameId {
        let mut m = self.sel_ids.lock();
        if let Some(id) = m.get(name) {
            return *id;
        }
        let id = self.engine.intern_selector(name);
        m.insert(name.to_string(), id);
        id
    }

    fn emit(&self, w: &GuiWorld, entry: bool, recv: ObjId, sel: &str) {
        if let Some(h) = &self.handler {
            let class = w.rt.class_name(w.rt.class_of(recv)).to_string();
            h(&TraceEvent {
                entry,
                receiver: recv.0,
                class,
                selector: sel.to_string(),
            });
        }
    }
}

impl Interposer<GuiWorld> for TeslaInterposer {
    fn pre(&self, w: &GuiWorld, recv: ObjId, sel: &str, args: &[i64]) -> Result<(), String> {
        self.emit(w, true, recv, sel);
        let id = self.sel_id(sel);
        let vals: Vec<Value> = args.iter().map(|a| Value(*a as u64)).collect();
        self.engine
            .msg_entry(id, Value(u64::from(recv.0)), &vals)
            .map_err(|v| v.to_string())
    }

    fn post(
        &self,
        w: &GuiWorld,
        recv: ObjId,
        sel: &str,
        args: &[i64],
        ret: i64,
    ) -> Result<(), String> {
        self.emit(w, false, recv, sel);
        let id = self.sel_id(sel);
        let vals: Vec<Value> = args.iter().map(|a| Value(*a as u64)).collect();
        self.engine
            .msg_exit(id, Value(u64::from(recv.0)), &vals, Value(ret as u64))
            .map_err(|v| v.to_string())
    }
}

/// The fig. 8 assertion: within a run-loop iteration ("startDrawing"
/// bounds in the paper), some (or none) of the instrumented API
/// methods should have been called — a pure tracing automaton over
/// the full selector list.
pub fn figure8_assertion(selectors: &[String]) -> tesla_spec::Assertion {
    let alts: Vec<ExprBuilder> = selectors.iter().map(|s| msg_send(s).into()).collect();
    AssertionBuilder::within("run_loop_iteration")
        .named("gui/trace")
        .previously(atleast(0, alts))
        .build()
        .expect("figure 8 assertion is valid")
}

/// The application under investigation: a GuiWorld plus TESLA
/// plumbing and a scene.
pub struct GuiApp {
    /// The world.
    pub world: GuiWorld,
    tesla: Option<(Arc<Tesla>, RtClassId, NameId)>,
}

impl GuiApp {
    /// Build the app in the given instrumentation tier, with a small
    /// dialog-like scene: a grid of cell-backed views and one
    /// cursor-tracking view.
    pub fn new(mode: GuiMode, bugs: GuiBugs) -> GuiApp {
        let trace_mode = match mode {
            GuiMode::Release => TraceMode::Release,
            _ => TraceMode::TracingEnabled,
        };
        let mut world = GuiWorld::new(trace_mode, bugs);
        // The scene: 6 plain views and one tracking view.
        for i in 0..6 {
            world.add_view((i * 20, 0, 15, 15), 0);
        }
        world.add_view((0, 40, 20, 20), 1);

        let tesla = match mode {
            GuiMode::Release | GuiMode::TracingEnabled => None,
            GuiMode::Interposed => {
                world
                    .rt
                    .set_interposer(Arc::new(TrivialInterposer::default()));
                None
            }
            GuiMode::Tesla(engine) => Some((engine, None)),
            GuiMode::TeslaTracing(engine, handler) => Some((engine, Some(handler))),
        }
        .map(|(engine, handler)| {
            // Register the fig. 8 automaton over every selector.
            let selectors: Vec<String> = (0..world.rt.n_selectors() as u32)
                .map(|i| world.rt.sel_name(objc::Sel(i)).to_string())
                .collect();
            let auto =
                tesla_automata::compile(&figure8_assertion(&selectors)).expect("figure 8 compiles");
            let class = engine.register(auto).expect("registration succeeds");
            let bound = engine.intern_fn("run_loop_iteration");
            world
                .rt
                .set_interposer(Arc::new(TeslaInterposer::new(engine.clone(), handler)));
            (engine, class, bound)
        });
        GuiApp { world, tesla }
    }

    /// One run-loop iteration: deliver the events, then redraw. The
    /// iteration is the temporal bound; the assertion site sits at
    /// its end, as the paper placed its instrumentation points "at
    /// the start and end of a run-loop iteration".
    ///
    /// # Errors
    ///
    /// Propagates TESLA fail-stops from interposition.
    pub fn run_loop_iteration(&mut self, events: &[UiEvent]) -> Result<(), String> {
        if let Some((engine, _, bound)) = &self.tesla {
            engine.fn_entry(*bound, &[]).map_err(|v| v.to_string())?;
        }
        let mut result = Ok(());
        for ev in events {
            result = self.world.deliver(*ev);
            if result.is_err() {
                break;
            }
        }
        if result.is_ok() {
            result = self.world.redraw();
        }
        if let Some((engine, class, bound)) = &self.tesla {
            if result.is_ok() {
                engine
                    .assertion_site(*class, &[])
                    .map_err(|v| v.to_string())?;
            }
            engine
                .fn_exit(*bound, &[], Value(0))
                .map_err(|v| v.to_string())?;
        }
        result
    }
}

/// Offline analysis of a collected trace: detect unbalanced cursor
/// push/pop — "the same cursors were pushed onto the cursor stack
/// multiple times" (§3.5.3).
pub fn cursor_imbalance(trace: &[TraceEvent]) -> i64 {
    let mut depth: i64 = 0;
    let mut entered: i64 = 0;
    for ev in trace {
        if !ev.entry {
            continue;
        }
        match ev.selector.as_str() {
            "push" => depth += 1,
            "pop" => depth -= 1,
            "mouseEntered:" => entered += 1,
            "mouseExited:" => entered -= 1,
            _ => {}
        }
    }
    // A healthy session returns to zero; the bug leaves residue.
    depth.max(entered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_runtime::{Config, FailMode};

    fn drive(app: &mut GuiApp) {
        // An Xnee-ish little session: move over the tracking view,
        // invalidate, move again, leave, expose.
        app.run_loop_iteration(&[UiEvent::MouseMoved(5, 45)])
            .unwrap();
        app.run_loop_iteration(&[UiEvent::InvalidateTracking])
            .unwrap();
        app.run_loop_iteration(&[UiEvent::MouseMoved(6, 46)])
            .unwrap();
        app.run_loop_iteration(&[UiEvent::MouseMoved(500, 500)])
            .unwrap();
        app.run_loop_iteration(&[UiEvent::Expose]).unwrap();
    }

    #[test]
    fn all_modes_render_identically() {
        let fb = |mode: GuiMode| {
            let mut app = GuiApp::new(mode, GuiBugs::default());
            drive(&mut app);
            app.world.framebuffer.clone()
        };
        let engine = Arc::new(Tesla::with_defaults());
        let release = fb(GuiMode::Release);
        assert_eq!(release, fb(GuiMode::TracingEnabled));
        assert_eq!(release, fb(GuiMode::Interposed));
        assert_eq!(release, fb(GuiMode::Tesla(engine)));
        assert!(!release.is_empty());
    }

    #[test]
    fn tesla_traces_reveal_the_cursor_bug() {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let sink = trace.clone();
        let engine = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::Log,
            ..Config::default()
        }));
        let handler: Arc<dyn Fn(&TraceEvent) + Send + Sync> =
            Arc::new(move |ev| sink.lock().push(ev.clone()));

        // Healthy app: balanced.
        let mut app = GuiApp::new(
            GuiMode::TeslaTracing(engine.clone(), handler.clone()),
            GuiBugs::default(),
        );
        drive(&mut app);
        assert_eq!(cursor_imbalance(&trace.lock()), 0);
        assert!(app.world.cursor_stack.is_empty());

        // Buggy app: the trace shows unpaired pushes.
        trace.lock().clear();
        let bugs = GuiBugs {
            duplicate_cursor_push: true,
            ..GuiBugs::default()
        };
        let mut app = GuiApp::new(GuiMode::TeslaTracing(engine, handler), bugs);
        drive(&mut app);
        assert!(cursor_imbalance(&trace.lock()) > 0);
        assert!(!app.world.cursor_stack.is_empty());
    }

    #[test]
    fn tesla_traces_reveal_the_non_lifo_backend_bug() {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let sink = trace.clone();
        let engine = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::Log,
            ..Config::default()
        }));
        let handler: Arc<dyn Fn(&TraceEvent) + Send + Sync> =
            Arc::new(move |ev| sink.lock().push(ev.clone()));
        let bugs = GuiBugs {
            backend_lifo_only: true,
            ..GuiBugs::default()
        };
        let mut app = GuiApp::new(GuiMode::TeslaTracing(engine, handler), bugs);
        let colors = app.world.draw_non_lifo_scene().unwrap();
        // Wrong rendering...
        assert_ne!(colors, vec![0xff0000, 0x0000ff, 0xff0000]);
        // ...and the trace shows exactly the non-LIFO setGState:
        // sequence that the backend author "was not aware … was a
        // valid sequence of operations".
        let sets: Vec<String> = trace
            .lock()
            .iter()
            .filter(|e| e.entry && e.selector == "setGState:")
            .map(|e| e.selector.clone())
            .collect();
        assert_eq!(sets.len(), 3);
    }

    #[test]
    fn figure8_automaton_counts_method_events() {
        let counting = Arc::new(tesla_runtime::CountingHandler::new());
        let engine = Arc::new(Tesla::with_defaults());
        engine.add_handler(counting.clone());
        let mut app = GuiApp::new(GuiMode::Tesla(engine), GuiBugs::default());
        drive(&mut app);
        // The tracing automaton consumed plenty of events.
        assert!(counting.updates() > 10, "updates: {}", counting.updates());
        assert!(counting.errors() == 0);
    }

    #[test]
    fn message_send_counts_scale_with_tier() {
        let mut release = GuiApp::new(GuiMode::Release, GuiBugs::default());
        drive(&mut release);
        let engine = Arc::new(Tesla::with_defaults());
        let mut tesla = GuiApp::new(GuiMode::Tesla(engine), GuiBugs::default());
        drive(&mut tesla);
        // Same dispatch count regardless of tier — the overhead is in
        // the per-send work, not the message mix.
        assert_eq!(release.world.rt.sends, tesla.world.rt.sends);
    }
}
