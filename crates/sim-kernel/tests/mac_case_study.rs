//! The FreeBSD MAC case study (§3.5.2), end to end: the seeded bugs
//! TESLA found in the paper are found here, clean kernels pass, and
//! the coverage analysis reproduces the 26-of-37-unexercised result.

use std::sync::Arc;
use tesla_runtime::{Config, FailMode, Tesla, ViolationKind};
use tesla_sim_kernel::assertions::{register_sets, AssertionSet};
use tesla_sim_kernel::mac::MacFramework;
use tesla_sim_kernel::proc::ProcfsOp;
use tesla_sim_kernel::state::Proto;
use tesla_sim_kernel::types::{oflags, KError, Pid};
use tesla_sim_kernel::{Bugs, Kernel, KernelConfig};

fn kernel_with(sets: &[AssertionSet], bugs: Bugs, fail: FailMode) -> (Kernel, Arc<Tesla>) {
    let tesla = Arc::new(Tesla::new(Config {
        fail_mode: fail,
        ..Config::default()
    }));
    let reg = register_sets(&tesla, sets).unwrap();
    let k = Kernel::new(
        KernelConfig {
            bugs,
            debug_checks: false,
        },
        MacFramework::new(),
        Some((tesla.clone(), reg.sites)),
    );
    (k, tesla)
}

/// A slice of FreeBSD's regression suite: exercise files, sockets and
/// the 11 classic inter-process operations — but not procfs, CPUSET
/// or POSIX-RT.
fn run_test_suite(k: &Kernel) -> Result<(), KError> {
    let init = k.init_pid();
    k.mkdir_p("/tmp", 0).unwrap();
    k.mkdir_p("/bin", 0).unwrap();
    k.mkfile("/tmp/data", b"hello world", 0, false).unwrap();
    k.mkfile("/bin/sh", b"#!", 0, true).unwrap();

    // Filesystem.
    let fd = k.sys_open(init, "/tmp/data", oflags::O_RDONLY)?;
    assert_eq!(k.sys_read(init, fd, 5)?, b"hello");
    k.sys_write(init, fd, b"!")?;
    k.sys_close(init, fd)?;
    let newfd = k.sys_open(init, "/tmp/new", oflags::O_CREAT)?;
    k.sys_close(init, newfd)?;
    let dirfd = k.sys_open(init, "/tmp", oflags::O_RDONLY)?;
    let names = k.sys_readdir(init, dirfd)?;
    assert!(names.contains(&"data".to_string()));
    k.sys_stat(init, "/tmp/data")?;
    k.sys_lookup(init, "/tmp/data")?;
    k.sys_setmode(init, "/tmp/data", 0o600)?;
    k.sys_setowner(init, "/tmp/data", 10)?;
    k.sys_setutimes(init, "/tmp/data")?;
    k.sys_link(init, "/tmp/data", "/tmp/data2")?;
    k.sys_rename(init, "/tmp/data2", "/tmp/data3")?;
    k.sys_unlink(init, "/tmp/data3")?;
    k.sys_mmap(init, "/tmp/data")?;
    k.sys_mprotect(init, "/tmp/data")?;
    k.sys_extattr_set(init, "/tmp/data", "user.tag", b"x")?;
    assert_eq!(k.sys_extattr_get(init, "/tmp/data", "user.tag")?, b"x");
    k.sys_extattr_list(init, "/tmp/data")?;
    k.sys_extattr_delete(init, "/tmp/data", "user.tag")?;
    k.sys_acl_set(init, "/tmp/data", b"u::rw-")?;
    assert_eq!(k.sys_acl_get(init, "/tmp/data")?, b"u::rw-");
    k.sys_acl_delete(init, "/tmp/data")?;
    k.sys_revoke(init, "/tmp/data")?;
    k.sys_exec(init, "/bin/sh")?;
    k.sys_kldload(init, "/bin/sh")?;
    k.sys_sysctl(init, "kern.maxproc", 100)?;

    // Sockets.
    let (cli, srv) = k.socketpair(init)?;
    k.sys_send(init, cli, b"ping")?;
    assert_eq!(k.sys_recv(init, srv)?, Some(b"ping".to_vec()));
    k.sys_poll(init, cli)?;
    k.sys_select(init, &[cli, srv])?;
    k.sys_kevent(init, cli)?;
    k.sys_sockvisible(init, cli)?;
    k.sys_sockstat(init, cli)?;
    k.sys_sockrelabel(init, cli, 0)?;
    let u = k.sys_socket(init, Proto::Unix)?;
    k.sys_bind(init, u)?;
    k.sys_listen(init, u)?;

    // Inter-process (the 11 exercised P assertions).
    let child = k.sys_fork(init)?;
    k.sys_kill(init, child, 15)?;
    k.sys_killpg(init, 1, 10)?;
    k.sys_ptrace_attach(init, child)?;
    k.sys_getpriority(init, child)?;
    k.sys_setpriority(init, child, 5)?;
    k.sys_ktrace(init, child)?;
    k.sys_getpgid(init, child)?;
    k.sys_setpgid(init, child, 42)?;
    k.sys_reap_acquire(init, child)?;
    k.sys_cred_visible(init, child)?;
    k.sys_setuid(init, 0)?;

    // Reap the child.
    k.sys_exit(child, 7)?;
    assert_eq!(k.sys_wait(init, child)?, 7);
    Ok(())
}

#[test]
fn clean_kernel_with_all_assertions_passes() {
    let (k, t) = kernel_with(&[AssertionSet::All], Bugs::default(), FailMode::FailStop);
    run_test_suite(&k).unwrap();
    assert!(
        t.violations().is_empty(),
        "violations: {:?}",
        t.violations()
    );
}

#[test]
fn release_kernel_runs_without_tesla() {
    let k = Kernel::release(KernelConfig::default());
    run_test_suite(&k).unwrap();
}

#[test]
fn kqueue_bug_is_caught_only_on_the_kevent_path() {
    let bugs = Bugs {
        kqueue_skips_mac_poll: true,
        ..Bugs::default()
    };
    let (k, t) = kernel_with(&[AssertionSet::MS], bugs, FailMode::FailStop);
    let init = k.init_pid();
    let (cli, _srv) = k.socketpair(init).unwrap();
    // poll and select perform the check: fine.
    k.sys_poll(init, cli).unwrap();
    k.sys_select(init, &[cli]).unwrap();
    // kqueue skips it: the fig. 4 assertion fires.
    let err = k.sys_kevent(init, cli).unwrap_err();
    match err {
        KError::Tesla(v) => {
            assert_eq!(v.kind, ViolationKind::Site);
            assert_eq!(v.assertion, "socket/poll");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(t.violations().len(), 1);
}

#[test]
fn wrong_credential_bug_is_caught_via_binding_mismatch() {
    // "one of two present checks was performed using the wrong
    // credential": the check *does* run, but with file_cred; the
    // assertion binds active_cred and cannot match.
    let bugs = Bugs {
        poll_passes_file_cred: true,
        ..Bugs::default()
    };
    let (k, _t) = kernel_with(&[AssertionSet::MS], bugs, FailMode::FailStop);
    let init = k.init_pid();
    let (cli, _srv) = k.socketpair(init).unwrap();
    // Same process: file_cred == active_cred, bug invisible.
    k.sys_select(init, &[cli]).unwrap();
    // Child inherits the fd; its active cred differs from the cached
    // file_cred, so the buggy path authorises with the wrong one.
    let child = k.sys_fork(init).unwrap();
    let err = k.sys_select(child, &[cli]).unwrap_err();
    match err {
        KError::Tesla(v) => {
            assert_eq!(v.kind, ViolationKind::Site);
            assert_eq!(v.assertion, "socket/poll");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The plain poll path is unaffected.
    k.sys_poll(child, cli).unwrap();
}

#[test]
fn sugid_bug_is_caught_at_syscall_exit() {
    let bugs = Bugs {
        setuid_skips_sugid: true,
        ..Bugs::default()
    };
    let (k, _t) = kernel_with(&[AssertionSet::MP], bugs, FailMode::FailStop);
    let init = k.init_pid();
    let err = k.sys_setuid(init, 0).unwrap_err();
    match err {
        KError::Tesla(v) => {
            assert_eq!(v.kind, ViolationKind::Cleanup);
            assert_eq!(v.assertion, "proc/sugid-eventually");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Without the bug, the same call passes.
    let (k2, _) = kernel_with(&[AssertionSet::MP], Bugs::default(), FailMode::FailStop);
    k2.sys_setuid(k2.init_pid(), 0).unwrap();
}

#[test]
fn readdir_internal_reads_use_the_incallstack_guard() {
    let (k, t) = kernel_with(&[AssertionSet::MF], Bugs::default(), FailMode::FailStop);
    let init = k.init_pid();
    k.mkdir_p("/tmp", 0).unwrap();
    k.mkfile("/tmp/a", b"", 0, false).unwrap();
    let dirfd = k.sys_open(init, "/tmp", oflags::O_RDONLY).unwrap();
    // ufs_readdir internally calls ffs_read without a fresh MAC
    // check; the incallstack(ufs_readdir) branch authorises it.
    let names = k.sys_readdir(init, dirfd).unwrap();
    assert_eq!(names, vec!["a".to_string()]);
    assert!(t.violations().is_empty());
}

#[test]
fn acl_reads_use_the_io_nomaccheck_branch() {
    let (k, t) = kernel_with(&[AssertionSet::MF], Bugs::default(), FailMode::FailStop);
    let init = k.init_pid();
    k.mkdir_p("/tmp", 0).unwrap();
    k.mkfile("/tmp/f", b"data", 0, false).unwrap();
    k.sys_acl_set(init, "/tmp/f", b"u::r--").unwrap();
    // __acl_get_file reads the ACL via vn_rdwr(IO_NOMACCHECK) →
    // ffs_read: the second fig. 7 branch, no read check expected.
    assert_eq!(k.sys_acl_get(init, "/tmp/f").unwrap(), b"u::r--");
    assert!(t.violations().is_empty());
}

#[test]
fn page_fault_reads_are_bounded_by_trap_pfault() {
    let (k, t) = kernel_with(&[AssertionSet::MF], Bugs::default(), FailMode::FailStop);
    let init = k.init_pid();
    k.mkdir_p("/tmp", 0).unwrap();
    let vp = k.mkfile("/tmp/mapped", b"page data", 0, false).unwrap();
    // No syscall active: the fault path checks + reads under its own
    // bound.
    let data = k.fault_in_page(init, vp, 0).unwrap();
    assert_eq!(&data, b"page data");
    assert!(t.violations().is_empty());
}

#[test]
fn exec_and_kldload_authorise_ufs_open_differently() {
    let (k, t) = kernel_with(&[AssertionSet::MF], Bugs::default(), FailMode::FailStop);
    let init = k.init_pid();
    k.mkdir_p("/boot", 0).unwrap();
    k.mkfile("/boot/kernel.ko", b"\x7fELF", 0, true).unwrap();
    // Both paths reach ufs_open's site; each is authorised by its own
    // check in the fig. 7 disjunction.
    k.sys_exec(init, "/boot/kernel.ko").unwrap();
    k.sys_kldload(init, "/boot/kernel.ko").unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn coverage_reproduces_26_of_37_unexercised() {
    let (k, t) = kernel_with(&[AssertionSet::P], Bugs::default(), FailMode::Log);
    run_test_suite(&k).unwrap();
    let cov = t.coverage();
    assert_eq!(cov.len(), 37);
    let unexercised: Vec<&str> = cov
        .iter()
        .filter(|(_, hits, _)| *hits == 0)
        .map(|(n, _, _)| n.as_str())
        .collect();
    assert_eq!(unexercised.len(), 26, "unexercised: {unexercised:?}");
    // "Most omissions (19) were in procfs ... Two were in the CPUSET
    // facility ... five further were in the POSIX real-time
    // scheduling facility."
    assert_eq!(
        unexercised
            .iter()
            .filter(|n| n.starts_with("procfs/"))
            .count(),
        19
    );
    assert_eq!(
        unexercised
            .iter()
            .filter(|n| n.starts_with("cpuset/"))
            .count(),
        2
    );
    assert_eq!(
        unexercised.iter().filter(|n| n.starts_with("rt/")).count(),
        5
    );

    // An extended suite that also drives procfs/cpuset/rt exercises
    // everything — TESLA helping improve test coverage (§3.5.2).
    let init = k.init_pid();
    let target = k.sys_fork(init).unwrap();
    for op in ProcfsOp::ALL {
        k.sys_procfs(init, target, op).unwrap();
    }
    k.sys_cpuset_get(init, target).unwrap();
    k.sys_cpuset_set(init, target, 0b11).unwrap();
    k.sys_rtprio_get(init, target).unwrap();
    k.sys_rtprio_set(init, target, 1).unwrap();
    k.sys_sched_getparam(init, target).unwrap();
    k.sys_sched_setparam(init, target, 2).unwrap();
    k.sys_sched_setscheduler(init, target, 1).unwrap();
    let cov = t.coverage();
    assert!(cov.iter().all(|(_, hits, _)| *hits > 0));
}

#[test]
fn mac_policy_denial_prevents_operation_without_violation() {
    use tesla_sim_kernel::mac::{BibaPolicy, MacPolicy};
    let tesla = Arc::new(Tesla::with_defaults());
    let reg = register_sets(&tesla, &[AssertionSet::MF]).unwrap();
    let mut fw = MacFramework::new();
    fw.register(Box::new(BibaPolicy) as Box<dyn MacPolicy>);
    let k = Kernel::new(
        KernelConfig::default(),
        fw,
        Some((tesla.clone(), reg.sites)),
    );
    k.mkdir_p("/tmp", 0).unwrap();
    k.mkfile("/tmp/secret", b"top", 5, false).unwrap();
    let init = k.init_pid();
    // Drop privilege: new low-integrity process.
    let child = k.sys_fork(init).unwrap();
    {
        // Forge a low-integrity credential for the child.
        let low = k.fresh_cred(100, 100, 1);
        let mut st = k.state_for_tests();
        st.proc_mut(child).unwrap().cred = low;
    }
    let err = k
        .sys_open(child, "/tmp/secret", oflags::O_RDONLY)
        .unwrap_err();
    assert!(matches!(
        err,
        KError::Errno(tesla_sim_kernel::Errno::EACCES)
    ));
    // Denied before the object op: no assertion site reached, no
    // violation.
    assert!(tesla.violations().is_empty());
}

#[test]
fn log_mode_collects_all_bugs_in_one_run() {
    let bugs = Bugs {
        kqueue_skips_mac_poll: true,
        poll_passes_file_cred: true,
        setuid_skips_sugid: true,
    };
    let (k, t) = kernel_with(&[AssertionSet::All], bugs, FailMode::Log);
    let init = k.init_pid();
    let (cli, _srv) = k.socketpair(init).unwrap();
    k.sys_kevent(init, cli).unwrap();
    let child = k.sys_fork(init).unwrap();
    k.sys_select(child, &[cli]).unwrap();
    k.sys_setuid(init, 0).unwrap();
    let vs = t.violations();
    assert!(vs.len() >= 3, "got {} violations", vs.len());
    let names: Vec<&str> = vs.iter().map(|v| v.assertion.as_str()).collect();
    assert!(names.contains(&"socket/poll"));
    assert!(names.contains(&"proc/sugid-eventually"));
}
