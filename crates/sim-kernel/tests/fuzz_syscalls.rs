//! Fuzz-style property tests: arbitrary syscall sequences against a
//! bug-free kernel with **all 96 assertions enabled** must never
//! produce a TESLA violation (errnos are fine) — in either
//! initialisation mode. "TESLA relies on test suites and exercise
//! tools (such as fuzzers) to trigger coverage of pertinent code
//! paths" (§3.5.2); this is that fuzzer, asserting zero false
//! positives.

use proptest::prelude::*;
use std::sync::Arc;
use tesla_runtime::{Config, FailMode, InitMode, Tesla};
use tesla_sim_kernel::assertions::{register_sets, AssertionSet};
use tesla_sim_kernel::mac::MacFramework;
use tesla_sim_kernel::proc::ProcfsOp;
use tesla_sim_kernel::state::Proto;
use tesla_sim_kernel::types::{KError, Pid};
use tesla_sim_kernel::{Bugs, Fd, Kernel, KernelConfig};

#[derive(Debug, Clone, Copy)]
enum Op {
    Open(u8, u8),
    Close(u8),
    Read(u8),
    Write(u8),
    Readdir(u8),
    Stat(u8),
    Unlink(u8),
    Link(u8, u8),
    Setmode(u8),
    ExtattrSet(u8),
    ExtattrGet(u8),
    AclSet(u8),
    AclGet(u8),
    Mmap(u8),
    Exec,
    KldLoad,
    Sysctl,
    Socket,
    SocketPair,
    Bind(u8),
    Listen(u8),
    Send(u8),
    Recv(u8),
    Poll(u8),
    Select(u8, u8),
    Kevent(u8),
    SockStat(u8),
    Fork,
    Kill(u8),
    KillPg,
    Ptrace(u8),
    GetPrio(u8),
    SetPrio(u8),
    Ktrace(u8),
    SetPgid(u8),
    Wait(u8),
    Setuid,
    CpusetGet(u8),
    RtSet(u8),
    Procfs(u8, u8),
    PageFault(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..2).prop_map(|(p, c)| Op::Open(p, c)),
        (0u8..8).prop_map(Op::Close),
        (0u8..8).prop_map(Op::Read),
        (0u8..8).prop_map(Op::Write),
        (0u8..8).prop_map(Op::Readdir),
        (0u8..6).prop_map(Op::Stat),
        (0u8..6).prop_map(Op::Unlink),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Op::Link(a, b)),
        (0u8..6).prop_map(Op::Setmode),
        (0u8..6).prop_map(Op::ExtattrSet),
        (0u8..6).prop_map(Op::ExtattrGet),
        (0u8..6).prop_map(Op::AclSet),
        (0u8..6).prop_map(Op::AclGet),
        (0u8..6).prop_map(Op::Mmap),
        Just(Op::Exec),
        Just(Op::KldLoad),
        Just(Op::Sysctl),
        Just(Op::Socket),
        Just(Op::SocketPair),
        (0u8..8).prop_map(Op::Bind),
        (0u8..8).prop_map(Op::Listen),
        (0u8..8).prop_map(Op::Send),
        (0u8..8).prop_map(Op::Recv),
        (0u8..8).prop_map(Op::Poll),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Op::Select(a, b)),
        (0u8..8).prop_map(Op::Kevent),
        (0u8..8).prop_map(Op::SockStat),
        Just(Op::Fork),
        (0u8..4).prop_map(Op::Kill),
        Just(Op::KillPg),
        (0u8..4).prop_map(Op::Ptrace),
        (0u8..4).prop_map(Op::GetPrio),
        (0u8..4).prop_map(Op::SetPrio),
        (0u8..4).prop_map(Op::Ktrace),
        (0u8..4).prop_map(Op::SetPgid),
        (0u8..4).prop_map(Op::Wait),
        Just(Op::Setuid),
        (0u8..4).prop_map(Op::CpusetGet),
        (0u8..4).prop_map(Op::RtSet),
        (0u8..4, 0u8..19).prop_map(|(t, o)| Op::Procfs(t, o)),
        (0u8..6).prop_map(Op::PageFault),
    ]
}

fn fresh_kernel(init_mode: InitMode) -> (Arc<Kernel>, Arc<Tesla>) {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::FailStop,
        init_mode,
        instance_capacity: 128,
        ..Config::default()
    }));
    let reg = register_sets(&t, &[AssertionSet::All]).unwrap();
    let k = Arc::new(Kernel::new(
        KernelConfig {
            bugs: Bugs::default(),
            debug_checks: false,
        },
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    k.mkdir_p("/tmp", 0).unwrap();
    k.mkdir_p("/bin", 0).unwrap();
    for i in 0..6 {
        k.mkfile(&format!("/tmp/f{i}"), b"contents", 0, false)
            .unwrap();
    }
    k.mkfile("/bin/prog", b"\x7fELF", 0, true).unwrap();
    (k, t)
}

/// Execute one op; errnos are acceptable, violations are not.
fn exec(k: &Kernel, pids: &mut Vec<Pid>, op: Op) -> Result<(), KError> {
    use tesla_sim_kernel::types::oflags;
    let me = pids[0];
    let path = |p: u8| format!("/tmp/f{}", p % 6);
    let tgt = |t: u8, pids: &[Pid]| pids[t as usize % pids.len()];
    let r: Result<i64, KError> = match op {
        Op::Open(p, c) => {
            let flags = if c == 1 {
                oflags::O_CREAT
            } else {
                oflags::O_RDONLY
            };
            k.sys_open(me, &path(p), flags).map(|f| i64::from(f.0))
        }
        Op::Close(f) => k.sys_close(me, Fd(u32::from(f))).map(|()| 0),
        Op::Read(f) => k.sys_read(me, Fd(u32::from(f)), 8).map(|d| d.len() as i64),
        Op::Write(f) => k.sys_write(me, Fd(u32::from(f)), b"x").map(|n| n as i64),
        Op::Readdir(f) => k.sys_readdir(me, Fd(u32::from(f))).map(|d| d.len() as i64),
        Op::Stat(p) => k.sys_stat(me, &path(p)),
        Op::Unlink(p) => k.sys_unlink(me, &path(p)),
        Op::Link(a, b) => k.sys_link(me, &path(a), &format!("/tmp/link{b}")),
        Op::Setmode(p) => k.sys_setmode(me, &path(p), 0o600),
        Op::ExtattrSet(p) => k.sys_extattr_set(me, &path(p), "user.x", b"v"),
        Op::ExtattrGet(p) => k
            .sys_extattr_get(me, &path(p), "user.x")
            .map(|d| d.len() as i64),
        Op::AclSet(p) => k.sys_acl_set(me, &path(p), b"u::rw-"),
        Op::AclGet(p) => k.sys_acl_get(me, &path(p)).map(|d| d.len() as i64),
        Op::Mmap(p) => k.sys_mmap(me, &path(p)),
        Op::Exec => k.sys_exec(me, "/bin/prog").map(|()| 0),
        Op::KldLoad => k.sys_kldload(me, "/bin/prog").map(|()| 0),
        Op::Sysctl => k.sys_sysctl(me, "kern.x", 1).map(|()| 0),
        Op::Socket => k.sys_socket(me, Proto::Tcp).map(|f| i64::from(f.0)),
        Op::SocketPair => k.socketpair(me).map(|(a, _)| i64::from(a.0)),
        Op::Bind(f) => k.sys_bind(me, Fd(u32::from(f))),
        Op::Listen(f) => k.sys_listen(me, Fd(u32::from(f))),
        Op::Send(f) => k.sys_send(me, Fd(u32::from(f)), b"m"),
        Op::Recv(f) => k.sys_recv(me, Fd(u32::from(f))).map(|_| 0),
        Op::Poll(f) => k.sys_poll(me, Fd(u32::from(f))),
        Op::Select(a, b) => k.sys_select(me, &[Fd(u32::from(a)), Fd(u32::from(b))]),
        Op::Kevent(f) => k.sys_kevent(me, Fd(u32::from(f))),
        Op::SockStat(f) => k.sys_sockstat(me, Fd(u32::from(f))),
        Op::Fork => k.sys_fork(me).map(|p| {
            pids.push(p);
            i64::from(p.0)
        }),
        Op::Kill(t) => k.sys_kill(me, tgt(t, pids), 15),
        Op::KillPg => k.sys_killpg(me, 1, 10),
        Op::Ptrace(t) => k.sys_ptrace_attach(me, tgt(t, pids)),
        Op::GetPrio(t) => k.sys_getpriority(me, tgt(t, pids)),
        Op::SetPrio(t) => k.sys_setpriority(me, tgt(t, pids), 3),
        Op::Ktrace(t) => k.sys_ktrace(me, tgt(t, pids)),
        Op::SetPgid(t) => k.sys_setpgid(me, tgt(t, pids), 7),
        Op::Wait(t) => k.sys_wait(me, tgt(t, pids)),
        Op::Setuid => k.sys_setuid(me, 0),
        Op::CpusetGet(t) => k.sys_cpuset_get(me, tgt(t, pids)),
        Op::RtSet(t) => k.sys_rtprio_set(me, tgt(t, pids), 1),
        Op::Procfs(t, o) => k
            .sys_procfs(me, tgt(t, pids), ProcfsOp::ALL[o as usize % 19])
            .map(|d| d.len() as i64),
        Op::PageFault(p) => {
            // Fault a page of a known file vnode (skip if unlinked).
            let vp = k.state_for_tests().namei(&path(p));
            match vp {
                Ok(vp) => k.fault_in_page(me, vp, 0).map(|d| d.len() as i64),
                Err(e) => Err(e),
            }
        }
    };
    match r {
        Ok(_) | Err(KError::Errno(_)) => Ok(()),
        Err(v @ KError::Tesla(_)) => Err(v),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_syscalls_never_violate_on_clean_kernel(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        lazy: bool,
    ) {
        let init = if lazy { InitMode::Lazy } else { InitMode::Naive };
        let (k, t) = fresh_kernel(init);
        let mut pids = vec![k.init_pid()];
        for op in &ops {
            if let Err(v) = exec(&k, &mut pids, *op) {
                prop_assert!(false, "unexpected violation on clean kernel: {v} (op {op:?})");
            }
        }
        prop_assert!(t.violations().is_empty(), "{:?}", t.violations());
        tesla_runtime::engine::reset_thread_state();
    }

    /// With all three bugs enabled and log mode, the same fuzzer
    /// attributes violations only to the three affected assertions.
    #[test]
    fn buggy_kernel_violations_are_attributed_precisely(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let t = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::Log,
            init_mode: InitMode::Lazy,
            instance_capacity: 128,
            ..Config::default()
        }));
        let reg = register_sets(&t, &[AssertionSet::All]).unwrap();
        let bugs = Bugs {
            kqueue_skips_mac_poll: true,
            poll_passes_file_cred: true,
            setuid_skips_sugid: true,
        };
        let k = Arc::new(Kernel::new(
            KernelConfig { bugs, debug_checks: false },
            MacFramework::new(),
            Some((t.clone(), reg.sites)),
        ));
        k.mkdir_p("/tmp", 0).unwrap();
        k.mkdir_p("/bin", 0).unwrap();
        for i in 0..6 {
            k.mkfile(&format!("/tmp/f{i}"), b"contents", 0, false).unwrap();
        }
        k.mkfile("/bin/prog", b"\x7fELF", 0, true).unwrap();
        let mut pids = vec![k.init_pid()];
        for op in &ops {
            let _ = exec(&k, &mut pids, *op); // log mode: keep going
        }
        for v in t.violations() {
            prop_assert!(
                v.assertion == "socket/poll" || v.assertion == "proc/sugid-eventually",
                "violation blamed on unexpected assertion: {}",
                v.assertion
            );
        }
        tesla_runtime::engine::reset_thread_state();
    }
}
