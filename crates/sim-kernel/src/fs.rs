//! VFS and the UFS-like filesystem: syscalls, MAC checks, TESLA
//! sites.
//!
//! The layering mirrors fig. 3 and fig. 7: the *syscall/VFS layer*
//! performs `mac_vnode_check_*` checks, then calls into the *UFS
//! implementation* (`ufs_open`, `ffs_read`, `ufs_readdir`, extattr
//! and ACL ops) where the TESLA assertion sites live. The subtle
//! code-path-dependent expectations of fig. 7 are all present:
//!
//! * `ufs_open` is reached by plain `open(2)`, by `exec(2)` and by
//!   `kldload(2)` — three *different* MAC checks authorise it;
//! * `ffs_read` is reached by `read(2)` (after
//!   `mac_vnode_check_read`), internally by `ufs_readdir` without
//!   re-checking (the `incallstack` branch), and via `vn_rdwr` with
//!   `IO_NOMACCHECK` when UFS itself reads ACLs out of extended
//!   attributes;
//! * page-fault I/O (`trap_pfault`) performs the read check under its
//!   own temporal bound.

use crate::mac::MacObject;
use crate::state::{FObj, FileDesc, VKind};
use crate::types::{ioflags, oflags, Errno, Fd, KResult, Pid, Ucred, VnodeId};
use crate::Kernel;
use tesla_spec::Value;

/// How `ufs_open` was reached — selects which MAC check authorised
/// it (fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenVia {
    /// `open(2)`.
    Open,
    /// `exec(2)`.
    Exec,
    /// `kldload(2)`.
    KldLoad,
}

impl Kernel {
    // ----------------------------------------------------------------
    // Syscall layer (VFS): checks here, sites in UFS below.
    // ----------------------------------------------------------------

    /// `open(2)`.
    pub fn sys_open(&self, pid: Pid, path: &str, flags: u64) -> KResult<Fd> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let (vp, created) = {
                let st = self.state.lock();
                match st.namei(path) {
                    Ok(vp) => (vp, false),
                    Err(_) if flags & oflags::O_CREAT != 0 => {
                        let (parent, name) = st.namei_parent(path)?;
                        let plabel = st.vnode(parent).label;
                        drop(st);
                        // Creation is checked against the parent.
                        self.mac_require(
                            "mac_vnode_check_create",
                            "vnode_create",
                            &cred,
                            Value::from(parent),
                            &MacObject::Vnode { label: plabel },
                            &[],
                        )?;
                        let mut st = self.state.lock();
                        let vp = st.mknod(parent, name, false, cred.label.min(plabel), cred.uid)?;
                        self.site("vnode/create", &[Value::from(parent)])?;
                        (vp, true)
                    }
                    Err(e) => return Err(e),
                }
            };
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_open",
                "vnode_open",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[Value(flags)],
            )?;
            self.ufs_open(&cred, vp, OpenVia::Open)?;
            let _ = created;
            let mut st = self.state.lock();
            st.fd_alloc(
                pid,
                FileDesc {
                    obj: FObj::Vnode(vp),
                    file_cred: cred,
                    offset: 0,
                    flags,
                },
            )
        })
    }

    /// `close(2)`.
    pub fn sys_close(&self, pid: Pid, fd: Fd) -> KResult<()> {
        self.with_syscall(pid, || {
            let mut st = self.state.lock();
            let p = st.proc_mut(pid)?;
            let slot = p.fds.get_mut(fd.0 as usize).ok_or(Errno::EBADF)?;
            if slot.take().is_none() {
                return Err(Errno::EBADF.into());
            }
            Ok(())
        })
    }

    /// `read(2)`.
    pub fn sys_read(&self, pid: Pid, fd: Fd, len: usize) -> KResult<Vec<u8>> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let desc = self.state.lock().fd_get(pid, fd)?;
            let FObj::Vnode(vp) = desc.obj else {
                return Err(Errno::EISDIR.into());
            };
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_read",
                "vnode_read",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            let data = self.ffs_read(vp, desc.offset, len)?;
            self.state.lock().fd_mut(pid, fd)?.offset += data.len();
            Ok(data)
        })
    }

    /// `write(2)`.
    pub fn sys_write(&self, pid: Pid, fd: Fd, data: &[u8]) -> KResult<usize> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let desc = self.state.lock().fd_get(pid, fd)?;
            let FObj::Vnode(vp) = desc.obj else {
                return Err(Errno::EISDIR.into());
            };
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_write",
                "vnode_write",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.ffs_write(vp, data)
        })
    }

    /// `getdirentries(2)`-style readdir.
    pub fn sys_readdir(&self, pid: Pid, fd: Fd) -> KResult<Vec<String>> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let desc = self.state.lock().fd_get(pid, fd)?;
            let FObj::Vnode(vp) = desc.obj else {
                return Err(Errno::ENOTDIR.into());
            };
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_readdir",
                "vnode_readdir",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.ufs_readdir(vp)
        })
    }

    /// `exec(2)` — authorises via `mac_vnode_check_exec`, then takes
    /// the same `ufs_open` path as `open(2)` (fig. 7).
    pub fn sys_exec(&self, pid: Pid, path: &str) -> KResult<()> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let vp = self.state.lock().namei(path)?;
            let (label, is_exec) = {
                let st = self.state.lock();
                (st.vnode(vp).label, st.vnode(vp).is_exec)
            };
            if !is_exec {
                return Err(Errno::EACCES.into());
            }
            self.mac_require(
                "mac_vnode_check_exec",
                "vnode_exec",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.ufs_open(&cred, vp, OpenVia::Exec)?;
            self.site("proc/exec", &[])?;
            Ok(())
        })
    }

    /// `kldload(2)` — loading a kernel module opens its vnode too.
    pub fn sys_kldload(&self, pid: Pid, path: &str) -> KResult<()> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let vp = self.state.lock().namei(path)?;
            self.mac_require(
                "mac_kld_check_load",
                "kld_load",
                &cred,
                Value::from(vp),
                &MacObject::System,
                &[],
            )?;
            self.site("system/kld", &[Value::from(vp)])?;
            self.ufs_open(&cred, vp, OpenVia::KldLoad)?;
            Ok(())
        })
    }

    /// `sysctl(2)`-style system configuration write.
    pub fn sys_sysctl(&self, pid: Pid, _name: &str, _value: i64) -> KResult<()> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            self.mac_require(
                "mac_system_check_sysctl",
                "system_sysctl",
                &cred,
                Value(0),
                &MacObject::System,
                &[],
            )?;
            self.site("system/sysctl", &[Value(0)])?;
            Ok(())
        })
    }

    /// A simple per-op vnode syscall: check + site + state effect.
    fn vnode_op(
        &self,
        pid: Pid,
        path: &str,
        check_fn: &'static str,
        op: &'static str,
        site_key: &'static str,
        effect: impl FnOnce(&mut crate::state::State, VnodeId, &Ucred) -> KResult<i64>,
    ) -> KResult<i64> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let vp = self.state.lock().namei(path)?;
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                check_fn,
                op,
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.site(site_key, &[Value::from(vp)])?;
            let mut st = self.state.lock();
            effect(&mut st, vp, &cred)
        })
    }

    /// `stat(2)`.
    pub fn sys_stat(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_stat",
            "vnode_stat",
            "vnode/stat",
            |st, vp, _| Ok(st.vnode(vp).data.len() as i64),
        )
    }

    /// `lookup` as an explicit op (namei MAC check).
    pub fn sys_lookup(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_lookup",
            "vnode_lookup",
            "vnode/lookup",
            |_, vp, _| Ok(i64::from(vp.0)),
        )
    }

    /// `unlink(2)`.
    pub fn sys_unlink(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let (parent, name) = {
                let st = self.state.lock();
                let (p, n) = st.namei_parent(path)?;
                (p, n.to_string())
            };
            let vp = self.state.lock().namei(path)?;
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_unlink",
                "vnode_unlink",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.site("vnode/unlink", &[Value::from(vp)])?;
            let mut st = self.state.lock();
            st.vnode_mut(parent).children.retain(|(n, _)| *n != name);
            st.vnode_mut(vp).nlink = st.vnode(vp).nlink.saturating_sub(1);
            Ok(0)
        })
    }

    /// `rename(2)` — checked on both ends.
    pub fn sys_rename(&self, pid: Pid, from: &str, to: &str) -> KResult<i64> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let vp = self.state.lock().namei(from)?;
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_rename_from",
                "vnode_rename_from",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.site("vnode/rename_from", &[Value::from(vp)])?;
            let (to_parent, to_name) = {
                let st = self.state.lock();
                let (p, n) = st.namei_parent(to)?;
                (p, n.to_string())
            };
            let to_label = self.state.lock().vnode(to_parent).label;
            self.mac_require(
                "mac_vnode_check_rename_to",
                "vnode_rename_to",
                &cred,
                Value::from(to_parent),
                &MacObject::Vnode { label: to_label },
                &[],
            )?;
            self.site("vnode/rename_to", &[Value::from(to_parent)])?;
            let (from_parent, from_name) = {
                let st = self.state.lock();
                let (p, n) = st.namei_parent(from)?;
                (p, n.to_string())
            };
            let mut st = self.state.lock();
            st.vnode_mut(from_parent)
                .children
                .retain(|(n, _)| *n != from_name);
            st.vnode_mut(to_parent).children.push((to_name, vp));
            Ok(0)
        })
    }

    /// `link(2)`.
    pub fn sys_link(&self, pid: Pid, existing: &str, newpath: &str) -> KResult<i64> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let vp = self.state.lock().namei(existing)?;
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_link",
                "vnode_link",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.site("vnode/link", &[Value::from(vp)])?;
            let (parent, name) = {
                let st = self.state.lock();
                let (p, n) = st.namei_parent(newpath)?;
                (p, n.to_string())
            };
            let mut st = self.state.lock();
            st.vnode_mut(parent).children.push((name, vp));
            st.vnode_mut(vp).nlink += 1;
            Ok(0)
        })
    }

    /// `chmod(2)`.
    pub fn sys_setmode(&self, pid: Pid, path: &str, mode: u32) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_setmode",
            "vnode_setmode",
            "vnode/setmode",
            move |st, vp, _| {
                st.vnode_mut(vp).mode = mode;
                Ok(0)
            },
        )
    }

    /// `chown(2)`.
    pub fn sys_setowner(&self, pid: Pid, path: &str, uid: u32) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_setowner",
            "vnode_setowner",
            "vnode/setowner",
            move |st, vp, _| {
                st.vnode_mut(vp).uid = uid;
                Ok(0)
            },
        )
    }

    /// `utimes(2)`.
    pub fn sys_setutimes(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_setutimes",
            "vnode_setutimes",
            "vnode/setutimes",
            |_, _, _| Ok(0),
        )
    }

    /// `revoke(2)`.
    pub fn sys_revoke(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_revoke",
            "vnode_revoke",
            "vnode/revoke",
            |_, _, _| Ok(0),
        )
    }

    /// `mmap(2)` of a file.
    pub fn sys_mmap(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_mmap",
            "vnode_mmap",
            "vnode/mmap",
            |st, vp, _| Ok(st.vnode(vp).data.len() as i64),
        )
    }

    /// `mprotect(2)`-style remap check.
    pub fn sys_mprotect(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_mprotect",
            "vnode_mprotect",
            "vnode/mprotect",
            |_, _, _| Ok(0),
        )
    }

    /// `extattr_get_file(2)`.
    pub fn sys_extattr_get(&self, pid: Pid, path: &str, name: &str) -> KResult<Vec<u8>> {
        let name = name.to_string();
        let r = self.vnode_op(
            pid,
            path,
            "mac_vnode_check_getextattr",
            "vnode_getextattr",
            "vnode/getextattr",
            |_, vp, _| Ok(i64::from(vp.0)),
        )?;
        let vp = VnodeId(r as u32);
        // UFS reads the attribute through internal file I/O.
        self.ufs_extattr_read(vp, &name)
    }

    /// `extattr_set_file(2)`.
    pub fn sys_extattr_set(&self, pid: Pid, path: &str, name: &str, val: &[u8]) -> KResult<i64> {
        let name = name.to_string();
        let val = val.to_vec();
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_setextattr",
            "vnode_setextattr",
            "vnode/setextattr",
            move |st, vp, _| {
                st.vnode_mut(vp).extattrs.insert(name, val);
                Ok(0)
            },
        )
    }

    /// `extattr_delete_file(2)`.
    pub fn sys_extattr_delete(&self, pid: Pid, path: &str, name: &str) -> KResult<i64> {
        let name = name.to_string();
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_deleteextattr",
            "vnode_deleteextattr",
            "vnode/deleteextattr",
            move |st, vp, _| {
                st.vnode_mut(vp).extattrs.remove(&name);
                Ok(0)
            },
        )
    }

    /// `extattr_list_file(2)`.
    pub fn sys_extattr_list(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_listextattr",
            "vnode_listextattr",
            "vnode/listextattr",
            |st, vp, _| Ok(st.vnode(vp).extattrs.len() as i64),
        )
    }

    /// `__acl_get_file(2)` — UFS implements ACLs *in* extended
    /// attributes, read via `vn_rdwr(IO_NOMACCHECK)` (fig. 7's third
    /// path into `ffs_read`).
    pub fn sys_acl_get(&self, pid: Pid, path: &str) -> KResult<Vec<u8>> {
        let r = self.vnode_op(
            pid,
            path,
            "mac_vnode_check_getacl",
            "vnode_getacl",
            "vnode/getacl",
            |_, vp, _| Ok(i64::from(vp.0)),
        )?;
        let vp = VnodeId(r as u32);
        self.ufs_extattr_read(vp, "posix1e.acl_access")
    }

    /// `__acl_set_file(2)`.
    pub fn sys_acl_set(&self, pid: Pid, path: &str, acl: &[u8]) -> KResult<i64> {
        let acl = acl.to_vec();
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_setacl",
            "vnode_setacl",
            "vnode/setacl",
            move |st, vp, _| {
                st.vnode_mut(vp)
                    .extattrs
                    .insert("posix1e.acl_access".into(), acl);
                Ok(0)
            },
        )
    }

    /// `__acl_delete_file(2)`.
    pub fn sys_acl_delete(&self, pid: Pid, path: &str) -> KResult<i64> {
        self.vnode_op(
            pid,
            path,
            "mac_vnode_check_deleteacl",
            "vnode_deleteacl",
            "vnode/deleteacl",
            |st, vp, _| {
                st.vnode_mut(vp).extattrs.remove("posix1e.acl_access");
                Ok(0)
            },
        )
    }

    /// A page fault on a mapped file: file-system I/O initiated from
    /// `trap_pfault`, not from a syscall (§3.5.2). The read check and
    /// the `ffs_read` site both happen under the pfault bound.
    pub fn fault_in_page(&self, pid: Pid, vp: VnodeId, offset: usize) -> KResult<Vec<u8>> {
        self.with_pfault(pid, || {
            let cred = self.cred_of(pid)?;
            let label = self.state.lock().vnode(vp).label;
            self.mac_require(
                "mac_vnode_check_read",
                "vnode_read",
                &cred,
                Value::from(vp),
                &MacObject::Vnode { label },
                &[],
            )?;
            self.ffs_read(vp, offset, 4096)
        })
    }

    // ----------------------------------------------------------------
    // UFS implementation layer: assertion sites live here.
    // ----------------------------------------------------------------

    /// `ufs_open`: the fig. 7 assertion — reached from three syscalls
    /// with three different authorising checks.
    pub(crate) fn ufs_open(&self, _cred: &Ucred, vp: VnodeId, _via: OpenVia) -> KResult<()> {
        self.site("vnode/open", &[Value::from(vp)])?;
        Ok(())
    }

    /// `ffs_read`: the fig. 7 read assertion site, reached from
    /// `read(2)`, from `ufs_readdir` internally, from
    /// `vn_rdwr(IO_NOMACCHECK)`, and from page faults.
    pub(crate) fn ffs_read(&self, vp: VnodeId, offset: usize, len: usize) -> KResult<Vec<u8>> {
        self.site("vnode/read", &[Value::from(vp)])?;
        let st = self.state.lock();
        let v = st.vnode(vp);
        if v.kind != VKind::Reg {
            // Directory blocks read as raw entries for readdir.
            return Ok(v.children.iter().flat_map(|(n, _)| n.bytes()).collect());
        }
        let start = offset.min(v.data.len());
        let end = (offset + len).min(v.data.len());
        Ok(v.data[start..end].to_vec())
    }

    /// `ffs_write`: write site.
    pub(crate) fn ffs_write(&self, vp: VnodeId, data: &[u8]) -> KResult<usize> {
        self.site("vnode/write", &[Value::from(vp)])?;
        let mut st = self.state.lock();
        st.vnode_mut(vp).data.extend_from_slice(data);
        Ok(data.len())
    }

    /// `ufs_readdir`: reads directory blocks through `ffs_read`
    /// *without* a fresh MAC check — the `incallstack(ufs_readdir)`
    /// branch of fig. 7 authorises those inner reads.
    pub(crate) fn ufs_readdir(&self, vp: VnodeId) -> KResult<Vec<String>> {
        self.hook_ufs_readdir(Value::from(vp), || {
            self.site("vnode/readdir", &[Value::from(vp)])?;
            // Internal read of the directory "blocks".
            let _raw = self.ffs_read(vp, 0, usize::MAX)?;
            let st = self.state.lock();
            Ok(st
                .vnode(vp)
                .children
                .iter()
                .map(|(n, _)| n.clone())
                .collect())
        })
    }

    /// UFS-internal extattr read: `vn_rdwr` with `IO_NOMACCHECK`
    /// feeding `ffs_read` (fig. 7's "checks should not be expected"
    /// path).
    pub(crate) fn ufs_extattr_read(&self, vp: VnodeId, name: &str) -> KResult<Vec<u8>> {
        self.hook_vn_rdwr(Value::from(vp), ioflags::IO_NOMACCHECK, || {
            let _block = self.ffs_read(vp, 0, 0)?;
            let st = self.state.lock();
            Ok(st.vnode(vp).extattrs.get(name).cloned().unwrap_or_default())
        })
    }

    /// Helper for tests/workloads: create a file with contents.
    pub fn mkfile(&self, path: &str, data: &[u8], label: i32, exec: bool) -> KResult<VnodeId> {
        let mut st = self.state.lock();
        let (parent, name) = st.namei_parent(path)?;
        let vp = st.mknod(parent, name, false, label, 0)?;
        let v = st.vnode_mut(vp);
        v.data = data.to_vec();
        v.is_exec = exec;
        Ok(vp)
    }

    /// Helper: create a directory.
    pub fn mkdir_p(&self, path: &str, label: i32) -> KResult<VnodeId> {
        let mut st = self.state.lock();
        let mut cur = st.root;
        let comps: Vec<String> = path
            .split('/')
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        for c in comps {
            cur = match st.vnode(cur).children.iter().find(|(n, _)| *n == c) {
                Some((_, id)) => *id,
                None => st.mknod(cur, &c, true, label, 0)?,
            };
        }
        Ok(cur)
    }
}
